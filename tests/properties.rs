//! Property-based tests (proptest) over the core data structures and
//! invariants of the QPIAD pipeline.

use std::sync::Arc;

use proptest::prelude::*;

use qpiad::core::rank::{f_measure, order_rewrites, RankConfig};
use qpiad::core::rewrite::{generate_rewrites, RewrittenQuery};
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    AttrId, AttrType, PredOp, Predicate, Relation, Schema, SelectQuery, Tuple, TupleId, Value,
};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};
use qpiad::learn::nbc::NaiveBayes;
use qpiad::learn::partition::StrippedPartition;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A small categorical relation: two columns over bounded domains, with
/// nulls.
fn tiny_relation() -> impl Strategy<Value = Relation> {
    let cell = prop_oneof![
        3 => (0u8..4).prop_map(|v| Value::str(format!("x{v}"))),
        1 => Just(Value::Null),
    ];
    let row = (cell.clone(), cell);
    proptest::collection::vec(row, 1..60).prop_map(|rows| {
        let schema = Schema::of(
            "t",
            &[("a", AttrType::Categorical), ("b", AttrType::Categorical)],
        );
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| Tuple::new(TupleId(i as u32), vec![a, b]))
            .collect();
        Relation::new(schema, tuples)
    })
}

// ---------------------------------------------------------------------------
// Partition / g3 laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn g3_error_is_a_fraction(r in tiny_relation()) {
        let pa = StrippedPartition::from_column(&r, AttrId(0));
        let pb = StrippedPartition::from_column(&r, AttrId(1));
        let e = pa.g3_error(&pb.lookup());
        prop_assert!((0.0..=1.0).contains(&e));
        let ek = pa.g3_key_error();
        prop_assert!((0.0..=1.0).contains(&ek));
    }

    #[test]
    fn refinement_never_increases_g3(r in tiny_relation()) {
        // Π_{a,b} refines Π_a, so g3(ab → b) ≤ g3(a → b).
        let pa = StrippedPartition::from_column(&r, AttrId(0));
        let pb = StrippedPartition::from_column(&r, AttrId(1));
        let lkb = pb.lookup();
        let pab = pa.product(&lkb);
        prop_assert!(pab.g3_error(&lkb) <= pa.g3_error(&lkb) + 1e-12);
    }

    #[test]
    fn product_classes_are_within_operand_classes(r in tiny_relation()) {
        let pa = StrippedPartition::from_column(&r, AttrId(0));
        let pb = StrippedPartition::from_column(&r, AttrId(1));
        let lka = pa.lookup();
        let lkb = pb.lookup();
        let pab = pa.product(&lkb);
        for class in pab.classes() {
            let a0 = lka[class[0] as usize];
            let b0 = lkb[class[0] as usize];
            for row in class {
                prop_assert_eq!(lka[*row as usize], a0);
                prop_assert_eq!(lkb[*row as usize], b0);
            }
        }
    }

    #[test]
    fn partition_covers_each_row_at_most_once(r in tiny_relation()) {
        let pa = StrippedPartition::from_column(&r, AttrId(0));
        let mut seen = vec![false; r.len()];
        for class in pa.classes() {
            prop_assert!(class.len() >= 2);
            for row in class {
                prop_assert!(!seen[*row as usize]);
                seen[*row as usize] = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Naïve Bayes laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn nbc_distribution_is_a_distribution(r in tiny_relation(), probe in 0u8..5) {
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 1.0);
        let t = Tuple::new(TupleId(999), vec![Value::str(format!("x{probe}")), Value::Null]);
        let d = nbc.distribution(&t);
        if !d.is_empty() {
            let sum: f64 = d.iter().map(|(_, p)| p).sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sums to {sum}");
            prop_assert!(d.iter().all(|(_, p)| (0.0..=1.0 + 1e-9).contains(p)));
        }
    }

    #[test]
    fn nbc_prob_matching_eq_sums_to_one(r in tiny_relation()) {
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 1.0);
        let t = Tuple::new(TupleId(999), vec![Value::str("x0"), Value::Null]);
        if !nbc.classes().is_empty() {
            let total: f64 = nbc
                .classes()
                .to_vec()
                .iter()
                .map(|c| nbc.prob_matching(&t, &PredOp::Eq(c.clone())))
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
    }
}

// ---------------------------------------------------------------------------
// F-measure & ordering laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn f_measure_bounded_by_max_component(p in 0.0f64..=1.0, r in 0.0f64..=1.0, alpha in 0.0f64..=4.0) {
        let f = f_measure(p, r, alpha);
        prop_assert!(f >= -1e-12);
        prop_assert!(f <= p.max(r) + 1e-9, "F {f} exceeds max({p},{r})");
    }

    #[test]
    fn alpha_zero_reduces_to_precision(p in 0.01f64..=1.0, r in 0.01f64..=1.0) {
        prop_assert!((f_measure(p, r, 0.0) - p).abs() < 1e-9);
    }

    #[test]
    fn ordering_returns_at_most_k_in_precision_order(
        precisions in proptest::collection::vec((0.0f64..=1.0, 0.0f64..=100.0), 0..25),
        alpha in 0.0f64..=2.0,
        k in 1usize..10,
    ) {
        let rewrites: Vec<RewrittenQuery> = precisions
            .iter()
            .enumerate()
            .map(|(i, (p, s))| RewrittenQuery {
                query: SelectQuery::new(vec![Predicate::eq(AttrId(0), i as i64)]),
                target_attr: AttrId(1),
                precision: *p,
                est_selectivity: *s,
                afd: None,
            })
            .collect();
        let n = rewrites.len();
        let ordered = order_rewrites(rewrites, &RankConfig { alpha, k });
        prop_assert!(ordered.len() <= k.min(n));
        for w in ordered.windows(2) {
            prop_assert!(w[0].rewrite.precision >= w[1].rewrite.precision - 1e-12);
        }
    }
}

// ---------------------------------------------------------------------------
// Rewriting soundness on the real pipeline (bounded cases)
// ---------------------------------------------------------------------------

fn cars_stats() -> (Relation, SourceStats) {
    let ground = CarsConfig::default().with_rows(4_000).generate(99);
    let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
    let sample = uniform_sample(&ed, 0.15, 1);
    let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
    (ed, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rewrites_never_constrain_their_target(style_idx in 0usize..8) {
        static STYLES: [&str; 8] = [
            "Sedan", "Coupe", "Convt", "SUV", "Hatchback", "Truck", "Van", "Wagon",
        ];
        let (ed, stats) = cars_stats();
        let body = ed.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, STYLES[style_idx])]);
        let base = ed.select(&q);
        for rq in generate_rewrites(&q, &base, &stats) {
            prop_assert!(rq.query.predicate_on(rq.target_attr).is_none());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&rq.precision));
            prop_assert!(rq.est_selectivity >= 0.0);
            // Every rewritten query derives from a base-set tuple: some
            // certain answer satisfies all its Eq predicates on the
            // determining set.
            let derivable = base.iter().any(|t| {
                rq.query.predicates().iter().all(|p| match &p.op {
                    PredOp::Eq(v) => t.value(p.attr) == v,
                    _ => true,
                })
            });
            prop_assert!(derivable, "rewrite not grounded in the base set");
        }
    }
}

// ---------------------------------------------------------------------------
// Mediator invariants over randomized queries
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary single-attribute equality queries over the cars world:
    /// the answer set partitions cleanly and every piece obeys its
    /// definition.
    #[test]
    fn mediator_invariants_hold_on_random_queries(
        attr_idx in 0usize..7,
        value_idx in 0usize..200,
        k in 1usize..20,
        alpha in 0.0f64..2.0,
    ) {
        use qpiad::core::mediator::{Qpiad, QpiadConfig};
        use qpiad::db::WebSource;
        let (ed, stats) = cars_stats();
        let attr = AttrId(attr_idx);
        let domain = ed.active_domain(attr);
        let value = domain[value_idx % domain.len()].clone();
        let q = SelectQuery::new(vec![Predicate::eq(attr, value)]);

        let source = WebSource::new("cars", ed.clone());
        let qpiad = Qpiad::new(
            stats.clone(),
            QpiadConfig::default().with_alpha(alpha).with_k(k).with_confidence_threshold(0.0),
        );
        let answers = qpiad.answer(&source, &q).unwrap();

        // Certain answers are exactly the source's certain answers.
        prop_assert_eq!(&answers.certain, &ed.select(&q));
        // Possible answers: one null on the constrained attr, no
        // contradiction, never duplicated, confidence in range.
        let mut seen = std::collections::HashSet::new();
        for a in &answers.possible {
            prop_assert!(a.tuple.value(attr).is_null());
            prop_assert!(q.possibly_matches(&a.tuple));
            prop_assert!(seen.insert(a.tuple.id()));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&a.confidence));
            prop_assert!(a.query_index < answers.issued.len());
        }
        // Budget respected, precision order preserved.
        prop_assert!(answers.issued.len() <= k);
        for w in answers.issued.windows(2) {
            prop_assert!(w[0].precision >= w[1].precision - 1e-12);
        }
    }
}

// ---------------------------------------------------------------------------
// Corruption provenance round-trip
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn corruption_provenance_is_exact(fraction in 0.01f64..0.5, seed in 0u64..1000) {
        let ground = CarsConfig::default().with_rows(500).generate(5);
        let (ed, prov) = corrupt(
            &ground,
            &CorruptionConfig { fraction, attrs: None, seed },
        );
        // Null count equals provenance size; restoring every value yields GD.
        let nulls: usize = ed.tuples().iter().map(|t| t.null_attrs().count()).sum();
        prop_assert_eq!(nulls, prov.len());
        let mut restored = ed.clone();
        for (id, attr, truth) in prov.iter() {
            let idx = restored
                .tuples()
                .iter()
                .position(|t| t.id() == id)
                .expect("tuple exists");
            let t = restored.tuples()[idx].with_value(attr, truth.clone());
            restored.tuples_mut()[idx] = t;
        }
        prop_assert_eq!(restored.tuples(), ground.tuples());
    }
}

// ---------------------------------------------------------------------------
// Query semantics laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn certain_and_possible_are_disjoint(r in tiny_relation(), v in 0u8..4) {
        let q = SelectQuery::new(vec![Predicate::eq(AttrId(1), Value::str(format!("x{v}")))]);
        for t in r.tuples() {
            prop_assert!(!(q.matches(t) && q.possibly_matches(t)));
        }
    }

    #[test]
    fn schema_projection_preserves_ids(r in tiny_relation()) {
        let p = r.project_to("p", &[AttrId(1)]);
        prop_assert_eq!(p.len(), r.len());
        for (a, b) in r.tuples().iter().zip(p.tuples()) {
            prop_assert_eq!(a.id(), b.id());
            prop_assert_eq!(a.value(AttrId(1)), b.value(AttrId(0)));
        }
    }
}

// ---------------------------------------------------------------------------
// Index-backed selection equals scan semantics
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn selection_engine_equals_scan(r in tiny_relation(), a in 0u8..4, b in 0u8..4) {
        let engine = qpiad::db::SelectionEngine::new();
        let queries = [
            SelectQuery::new(vec![Predicate::eq(AttrId(0), Value::str(format!("x{a}")))]),
            SelectQuery::new(vec![
                Predicate::eq(AttrId(0), Value::str(format!("x{a}"))),
                Predicate::eq(AttrId(1), Value::str(format!("x{b}"))),
            ]),
            SelectQuery::new(vec![Predicate::is_null(AttrId(1))]),
            SelectQuery::all(),
        ];
        for q in &queries {
            prop_assert_eq!(engine.select(&r, q), r.select(q));
            prop_assert_eq!(engine.count(&r, q), r.count(q));
        }
    }
}

/// A two-column relation mixing a categorical and a numeric column, with
/// nulls in both — the shape `Between` and conjunctive predicates see.
fn mixed_relation() -> impl Strategy<Value = Relation> {
    let cat = prop_oneof![
        3 => (0u8..4).prop_map(|v| Value::str(format!("x{v}"))),
        1 => Just(Value::Null),
    ];
    let num = prop_oneof![
        3 => (0i64..40).prop_map(Value::int),
        1 => Just(Value::Null),
    ];
    proptest::collection::vec((cat, num), 1..60).prop_map(|rows| {
        let schema = Schema::of(
            "m",
            &[("cat", AttrType::Categorical), ("num", AttrType::Integer)],
        );
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| Tuple::new(TupleId(i as u32), vec![a, b]))
            .collect();
        Relation::new(schema, tuples)
    })
}

proptest! {
    /// Posting-list retrieval over the interned columns must agree with the
    /// naive tuple scan for every operator the planner emits — ranges and
    /// conjunctions included, across the dense-bitset/gallop/merge regimes
    /// the list sizes happen to select.
    #[test]
    fn selection_engine_equals_scan_with_ranges(
        r in mixed_relation(),
        a in 0u8..4,
        lo in 0i64..40,
        width in 0i64..20,
    ) {
        let engine = qpiad::db::SelectionEngine::new();
        let queries = [
            SelectQuery::new(vec![Predicate::between(AttrId(1), lo, lo + width)]),
            SelectQuery::new(vec![
                Predicate::eq(AttrId(0), Value::str(format!("x{a}"))),
                Predicate::between(AttrId(1), lo, lo + width),
            ]),
            SelectQuery::new(vec![
                Predicate::is_null(AttrId(0)),
                Predicate::between(AttrId(1), lo, lo + width),
            ]),
        ];
        for q in &queries {
            prop_assert_eq!(engine.select(&r, q), r.select(q));
            prop_assert_eq!(engine.count(&r, q), r.count(q));
        }
    }
}

// ---------------------------------------------------------------------------
// Dictionary interning laws
// ---------------------------------------------------------------------------

proptest! {
    /// Interning any value sequence round-trips through `resolve`, nulls
    /// always land on the reserved id 0, equal values share one id, and a
    /// relation's columnar image agrees cell-for-cell with its tuples.
    #[test]
    fn dictionary_intern_resolve_round_trips(
        values in proptest::collection::vec(arb_value(), 0..80)
    ) {
        use qpiad::db::{Dictionary, ValueId};
        let mut dict = Dictionary::new();
        let ids: Vec<ValueId> = values.iter().map(|v| dict.intern(v)).collect();
        let mut first_id: std::collections::HashMap<&Value, ValueId> =
            std::collections::HashMap::new();
        for (v, id) in values.iter().zip(&ids) {
            prop_assert_eq!(dict.resolve(*id), v);
            prop_assert_eq!(id.is_null(), v.is_null());
            if v.is_null() {
                prop_assert_eq!(*id, ValueId::NULL);
            }
            // One id per distinct value, stable across re-interning.
            prop_assert_eq!(*first_id.entry(v).or_insert(*id), *id);
            prop_assert_eq!(dict.lookup(v), Some(*id));
        }
    }

    /// The columnar image built at relation construction resolves back to
    /// exactly the row-major tuple values.
    #[test]
    fn columnar_image_matches_tuples(r in mixed_relation()) {
        let columnar = r.columnar();
        prop_assert_eq!(columnar.n_rows(), r.len());
        prop_assert_eq!(columnar.arity(), r.schema().arity());
        for (row, t) in r.tuples().iter().enumerate() {
            for a in 0..r.schema().arity() {
                let vid = columnar.vid_at(row, AttrId(a));
                prop_assert_eq!(columnar.dict().resolve(vid), t.value(AttrId(a)));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CSV round-trips arbitrary relations
// ---------------------------------------------------------------------------

fn csv_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        2 => any::<i64>().prop_map(Value::int),
        // Hostile strings: commas, quotes, newlines, unicode. The empty
        // string and the null token cannot round-trip (they ARE the null
        // encodings), so exclude them.
        3 => "[a-z0-9,\"\n é]{1,12}"
            .prop_filter("null encodings", |s| !s.trim().is_empty()
                && !s.trim().eq_ignore_ascii_case("null")
                && s.trim() == s
                && s.parse::<i64>().is_err())
            .prop_map(Value::str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_round_trips_hostile_relations(
        rows in proptest::collection::vec((csv_cell(), csv_cell()), 1..20)
    ) {
        use qpiad::data::io::{relation_from_csv, relation_to_csv, CsvOptions};
        let schema = Schema::of(
            "t",
            &[("alpha", AttrType::Categorical), ("beta", AttrType::Categorical)],
        );
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| Tuple::new(TupleId(i as u32), vec![a, b]))
            .collect();
        let original = Relation::new(schema, tuples);
        let text = relation_to_csv(&original);
        let back = relation_from_csv(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.len(), original.len());
        for (x, y) in original.tuples().iter().zip(back.tuples()) {
            for (a, b) in x.values().iter().zip(y.values()) {
                // Integers may come back as ints or (if the column was
                // mixed) as their decimal string — value text must agree.
                match (a, b) {
                    (Value::Null, Value::Null) => {}
                    (a, b) => prop_assert_eq!(a.to_string(), b.to_string()),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Value ordering is total and consistent (hand-rolled Ord)
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::int),
        "[a-z]{0,6}".prop_map(Value::str),
    ]
}

proptest! {
    #[test]
    fn value_ord_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (on this triple).
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert!(a.cmp(&c) != Ordering::Greater);
        }
        // Consistency with Eq.
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }
}

// ---------------------------------------------------------------------------
// Knowledge lifecycle invariants: random snapshot corruption never panics,
// the drift statistic is partition- and thread-count invariant, and a
// save → load → refresh cycle preserves answers byte-identically.
// ---------------------------------------------------------------------------

use qpiad::core::network::{MediatorNetwork, NetworkAnswer};
use qpiad::core::{par, QpiadConfig};
use qpiad::db::WebSource;
use qpiad::learn::drift::{DriftConfig, DriftDetector, DriftRegistry};
use qpiad::learn::persist::StatsSnapshot;
use qpiad::learn::store::{decode_snapshot, encode_snapshot, KnowledgeStore};

/// A mined world plus its encoded snapshot, built once — mining is far too
/// expensive to redo per proptest case.
fn lifecycle_world() -> &'static (Relation, SourceStats, MiningConfig, String) {
    static WORLD: std::sync::OnceLock<(Relation, SourceStats, MiningConfig, String)> =
        std::sync::OnceLock::new();
    WORLD.get_or_init(|| {
        let ground = CarsConfig::default().with_rows(2_000).generate(41);
        let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
        let config = MiningConfig::default();
        let stats = SourceStats::mine(&uniform_sample(&ed, 0.15, 4), ed.len(), &config);
        let encoded = encode_snapshot(&StatsSnapshot::capture(&stats, &config));
        (ed, stats, config, encoded)
    })
}

/// Everything rank- and float-sensitive about a network answer, bit-exact.
fn net_signature(answer: &NetworkAnswer) -> Vec<String> {
    answer
        .per_source
        .iter()
        .flat_map(|part| {
            std::iter::once(format!("source {} outcome={:?}", part.source, part.outcome))
                .chain(part.certain.iter().map(|t| format!("certain {:?}", t.id())))
                .chain(part.possible.iter().map(|r| {
                    format!(
                        "possible {:?} conf={:016x} prec={:016x} q={}",
                        r.tuple.id(),
                        r.confidence.to_bits(),
                        r.query_precision.to_bits(),
                        r.query_index
                    )
                }))
                .collect::<Vec<_>>()
        })
        .chain(answer.drift_verdicts.iter().map(|v| {
            format!("verdict {} stat={:016x}", v.source, v.statistic.to_bits())
        }))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary byte edits and truncations of an encoded snapshot must
    /// never panic the decoder: every mutation either still decodes (and
    /// then restores to working statistics) or classifies as one of the
    /// documented failure kinds.
    #[test]
    fn snapshot_corruption_never_panics(
        edits in proptest::collection::vec((any::<usize>(), any::<u8>()), 0..6),
        cut in any::<usize>(),
        truncate in any::<bool>(),
    ) {
        let (_, _, _, encoded) = lifecycle_world();
        let mut bytes = encoded.clone().into_bytes();
        if truncate {
            let keep = cut % (bytes.len() + 1);
            bytes.truncate(keep);
        }
        for (at, b) in &edits {
            if !bytes.is_empty() {
                let i = at % bytes.len();
                bytes[i] = *b;
            }
        }
        // Mutations may produce invalid UTF-8; a real reader would see the
        // lossy text (or an IO error, which the store classifies itself).
        let text = String::from_utf8_lossy(&bytes);
        match decode_snapshot(&text) {
            // Edits that cancel out (or only touch checksummed-but-ignored
            // bytes) can still decode; the snapshot must then be usable.
            Ok(snapshot) => {
                let restored = snapshot.restore();
                prop_assert!(restored.schema().arity() > 0);
            }
            Err(e) => prop_assert!(
                ["missing", "version-mismatch", "corrupt", "schema-mismatch", "malformed", "io"]
                    .contains(&e.kind()),
                "unclassified failure: {e}"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The drift statistic is a function of the absorbed counts only: how
    /// the paired observations are chunked into probes, and in what order
    /// the probes are absorbed, must not move a single bit.
    #[test]
    fn drift_statistic_ignores_observation_partitioning(
        chunk in 5usize..80,
        live_offset in 1usize..500,
    ) {
        let (ed, stats, _, _) = lifecycle_world();
        let tuples = ed.tuples();
        // Pair each reference chunk with a rotated live chunk so the two
        // sides genuinely differ.
        let pairs: Vec<(&[Tuple], &[Tuple])> = tuples
            .chunks(chunk)
            .zip(tuples[live_offset % tuples.len()..].chunks(chunk))
            .collect();

        let one_probe = {
            let mut d = DriftDetector::new("s", stats, DriftConfig::default());
            let mut p = d.probe();
            for (reference, live) in &pairs {
                p.observe(reference, live);
            }
            d.absorb(p);
            d.statistic()
        };
        let many_probes_reversed = {
            let mut d = DriftDetector::new("s", stats, DriftConfig::default());
            for (reference, live) in pairs.iter().rev() {
                let mut p = d.probe();
                p.observe(reference, live);
                d.absorb(p);
            }
            d.statistic()
        };
        prop_assert_eq!(one_probe.statistic.to_bits(), many_probes_reversed.statistic.to_bits());
        prop_assert_eq!(
            one_probe.value_divergence.to_bits(),
            many_probes_reversed.value_divergence.to_bits()
        );
        prop_assert_eq!(
            one_probe.afd_divergence.to_bits(),
            many_probes_reversed.afd_divergence.to_bits()
        );
    }
}

/// Resets the global worker-pool override when dropped, even on assert
/// failure.
struct PoolReset;
impl Drop for PoolReset {
    fn drop(&mut self) {
        par::set_thread_override(None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A drift-watched network pass produces bit-identical answers and
    /// drift statistics at QPIAD_THREADS=1 and at a larger pool size.
    #[test]
    fn drift_statistic_is_deterministic_across_thread_counts(
        threads in 2usize..9,
        style_idx in 0usize..8,
    ) {
        static STYLES: [&str; 8] = [
            "Sedan", "Coupe", "Convt", "SUV", "Hatchback", "Truck", "Van", "Wagon",
        ];
        let (ed, stats, _, _) = lifecycle_world();
        let global = ed.schema().clone();
        let q = SelectQuery::new(vec![Predicate::eq(
            global.expect_attr("body_style"),
            STYLES[style_idx],
        )]);

        let _reset = PoolReset;
        let pass = |n: usize| {
            par::set_thread_override(Some(n));
            let cars = WebSource::new("cars.com", ed.clone());
            let auctions = WebSource::new("auctions", ed.clone());
            let registry = Arc::new(DriftRegistry::new(
                DriftConfig::default().with_min_observations(10),
            ));
            let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6))
                .with_drift(registry.clone())
                .add_supporting(&cars, stats.clone())
                .add_supporting(&auctions, stats.clone());
            let sig = net_signature(&network.answer(&q).unwrap());
            let stat = registry.statistic("cars.com").unwrap();
            (sig, stat.statistic.to_bits(), registry.observed_rows("cars.com"))
        };
        let sequential = pass(1);
        let parallel = pass(threads);
        prop_assert_eq!(sequential, parallel);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Persisting mined knowledge, loading it back through the store, and
    /// atomically refreshing it with an identical re-mine are all
    /// answer-preserving, bit for bit.
    #[test]
    fn save_load_refresh_preserves_answers(style_idx in 0usize..8, k in 1usize..12) {
        static STYLES: [&str; 8] = [
            "Sedan", "Coupe", "Convt", "SUV", "Hatchback", "Truck", "Van", "Wagon",
        ];
        let (ed, stats, config, _) = lifecycle_world();
        let global = ed.schema().clone();
        let q = SelectQuery::new(vec![Predicate::eq(
            global.expect_attr("body_style"),
            STYLES[style_idx],
        )]);
        let cars = WebSource::new("cars.com", ed.clone());

        let live = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(k))
            .add_supporting(&cars, stats.clone());
        let from_live = net_signature(&live.answer(&q).unwrap());

        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("target/test-properties-store");
        let store = KnowledgeStore::open(dir).unwrap();
        store.save("cars.com", &StatsSnapshot::capture(stats, config)).unwrap();
        let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(k))
            .add_supporting_from_store(&cars, &store);
        prop_assert!(network.knowledge_failures().is_empty());
        let from_store = net_signature(&network.answer(&q).unwrap());

        network
            .refresh_member("cars.com", |_| Ok(stats.clone()), Some((&store, config)))
            .unwrap();
        let from_refresh = net_signature(&network.answer(&q).unwrap());

        prop_assert_eq!(&from_live, &from_store);
        prop_assert_eq!(&from_store, &from_refresh);
        prop_assert!(store.load_for("cars.com", ed.schema()).is_ok());
    }
}

// ---------------------------------------------------------------------------
// Overload ladder monotonicity under chaos
// ---------------------------------------------------------------------------

use qpiad::db::{
    ChaosConfig, ChaosSchedule, ChaosSource, PassCell, PressureLevel, QueryBudget, TupleId as Tid,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The degradation ladder clamps a rank-ordered *prefix* of the rewrite
    /// plan, so the answer lattice is monotone in pressure: for any chaos
    /// schedule and any two rungs p1 ≤ p2, the possible answers served at
    /// p2 are a subset of those at p1 (same tuples, found by the same
    /// ranked rewrites), and the certain answers are identical — overload
    /// trades recall, never soundness.
    #[test]
    fn overload_ladder_is_monotone_under_chaos(
        seed in 0u64..1_000,
        pass in 0u64..64,
        style_idx in 0usize..8,
        a in 0usize..4,
        b in 0usize..4,
    ) {
        static STYLES: [&str; 8] = [
            "Sedan", "Coupe", "Convt", "SUV", "Hatchback", "Truck", "Van", "Wagon",
        ];
        const RUNGS: [PressureLevel; 4] = [
            PressureLevel::Normal,
            PressureLevel::Elevated,
            PressureLevel::High,
            PressureLevel::Critical,
        ];
        let (p1, p2) = (RUNGS[a.min(b)], RUNGS[a.max(b)]);
        let (ed, stats) = cars_stats();
        let global = ed.schema().clone();
        let q = SelectQuery::new(vec![Predicate::eq(
            global.expect_attr("body_style"),
            STYLES[style_idx],
        )]);

        // One mediation pass at `pressure` under an arbitrary chaos
        // schedule pinned to an arbitrary pass number; both runs see the
        // exact same chaos because the schedule is a pure function of
        // (seed, member, pass).
        let run = |pressure: PressureLevel| -> (Vec<Tid>, Vec<(Tid, usize)>) {
            let schedule = Arc::new(ChaosSchedule::new(
                ChaosConfig::calm(1)
                    .with_seed(seed)
                    .with_outage_rate(0.15)
                    .with_skew_rate(0.3),
            ));
            let cell = PassCell::new();
            cell.set(pass);
            let source = ChaosSource::new(
                WebSource::new("cars.com", ed.clone()),
                0,
                schedule,
                cell,
            );
            let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
                .add_supporting(&source, stats.clone());
            let answer = network
                .answer_under(&q, QueryBudget::unlimited(), pressure)
                .expect("a single-member pass never fails outright");
            let certain = answer
                .per_source
                .iter()
                .flat_map(|s| s.certain.iter().map(|t| t.id()))
                .collect();
            let possible = answer
                .per_source
                .iter()
                .flat_map(|s| s.possible.iter().map(|r| (r.tuple.id(), r.query_index)))
                .collect();
            (certain, possible)
        };

        let (certain_lo, possible_lo) = run(p1);
        let (certain_hi, possible_hi) = run(p2);

        prop_assert_eq!(&certain_lo, &certain_hi, "certain answers must not move with pressure");
        let lo_set: std::collections::HashSet<_> = possible_lo.iter().collect();
        for entry in &possible_hi {
            prop_assert!(
                lo_set.contains(entry),
                "possible answer {entry:?} served at {p2:?} but not at {p1:?}"
            );
        }
        if p2 == PressureLevel::Critical {
            prop_assert!(possible_hi.is_empty(), "Critical serves certain answers only");
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental knowledge folds
// ---------------------------------------------------------------------------

use qpiad::learn::knowledge::FoldOutcome;

/// A fresh probe over the same two-column shape: row ids overlap the
/// retained sample's (replacements) and extend past it (appends), with the
/// same null rate as [`tiny_relation`]. Ids are deduplicated so the probe
/// is a well-formed relation.
fn probe_rows() -> impl Strategy<Value = Vec<(u32, Value, Value)>> {
    let cell = prop_oneof![
        3 => (0u8..4).prop_map(|v| Value::str(format!("x{v}"))),
        1 => Just(Value::Null),
    ];
    proptest::collection::vec((0u32..80, cell.clone(), cell), 0..30)
}

fn probe_relation(rows: &[(u32, Value, Value)]) -> Relation {
    let mut by_id = std::collections::BTreeMap::new();
    for (id, a, b) in rows {
        by_id.insert(*id, (a.clone(), b.clone()));
    }
    let schema = Schema::of(
        "t",
        &[("a", AttrType::Categorical), ("b", AttrType::Categorical)],
    );
    let tuples = by_id
        .into_iter()
        .map(|(id, (a, b))| Tuple::new(TupleId(id), vec![a, b]))
        .collect();
    Relation::new(schema, tuples)
}

fn fold_stats(stats: &SourceStats, fresh: &Relation, config: &MiningConfig) -> SourceStats {
    match stats.fold(fresh, config, 2.0).expect("same-arity probe") {
        FoldOutcome::Folded { stats, .. } => stats,
        // Confidences live in [0, 1], so no delta can cross a bound of 2.
        FoldOutcome::RemineRequired { .. } => unreachable!("bound 2.0 always folds"),
    }
}

/// Everything the fold maintains, bit-exact: AFD and AKey confidences and
/// every classifier posterior the predictor can produce over the probe
/// domain. Two stats with equal fingerprints are observably identical.
fn fold_fingerprint(stats: &SourceStats) -> Vec<String> {
    let mut out = Vec::new();
    // `AfdSet::iter` walks a per-rhs hash map, so sort the lines: the
    // *set* must be identical, its iteration order carries no meaning.
    let mut afds: Vec<String> = stats
        .afds()
        .iter()
        .map(|afd| format!("afd {:?} -> {:?} {}", afd.lhs, afd.rhs, afd.confidence.to_bits()))
        .collect();
    afds.sort();
    out.extend(afds);
    for key in stats.akeys() {
        out.push(format!("akey {:?} {}", key.attrs, key.confidence.to_bits()));
    }
    for attr in [AttrId(0), AttrId(1)] {
        out.push(format!("dtr {:?} {:?}", attr, stats.determining_set(attr)));
        for v in 0u8..4 {
            let known = Value::str(format!("x{v}"));
            let cells = if attr == AttrId(0) {
                vec![Value::Null, known]
            } else {
                vec![known, Value::Null]
            };
            let t = Tuple::new(TupleId(9_000 + u32::from(v)), cells);
            for (value, p) in stats.predictor().distribution(attr, &t) {
                out.push(format!("nbc {:?} x{v} {:?} {}", attr, value, p.to_bits()));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental fold tracks the batch path exactly: every AFD/AKey
    /// present in both the folded bundle and a full `refresh` over the
    /// same probe carries a bit-identical g3 confidence over the merged
    /// sample, and every attribute whose feature choice survived the fold
    /// classifies bit-identically to its from-scratch retrained peer.
    #[test]
    fn fold_matches_batch_remine_over_the_merged_sample(
        old in tiny_relation(),
        probe in probe_rows(),
    ) {
        let config = MiningConfig::default();
        let stats = SourceStats::mine(&old, old.len() * 10, &config);
        let fresh = probe_relation(&probe);
        let folded = fold_stats(&stats, &fresh, &config);
        let remined = stats
            .refresh(
                &fresh,
                stats.selectivity().smpl_ratio(),
                stats.selectivity().per_inc(),
                &config,
            )
            .expect("same-arity probe");

        for afd in folded.afds().iter() {
            if let Some(batch) =
                remined.afds().iter().find(|b| b.lhs == afd.lhs && b.rhs == afd.rhs)
            {
                prop_assert_eq!(
                    afd.confidence.to_bits(),
                    batch.confidence.to_bits(),
                    "folded AFD {:?}->{:?} confidence {} != batch {}",
                    afd.lhs, afd.rhs, afd.confidence, batch.confidence
                );
            }
        }
        for key in folded.akeys() {
            if let Some(batch) = remined.akeys().iter().find(|b| b.attrs == key.attrs) {
                prop_assert_eq!(
                    key.confidence.to_bits(),
                    batch.confidence.to_bits(),
                    "folded AKey {:?} confidence {} != batch {}",
                    key.attrs, key.confidence, batch.confidence
                );
            }
        }
        for attr in [AttrId(0), AttrId(1)] {
            if folded.determining_set(attr) != remined.determining_set(attr) {
                // A confidence shift re-ranked the AFDs; the fold retrained
                // this classifier over a different feature set by design.
                continue;
            }
            for v in 0u8..4 {
                let known = Value::str(format!("x{v}"));
                let cells = if attr == AttrId(0) {
                    vec![Value::Null, known]
                } else {
                    vec![known, Value::Null]
                };
                let t = Tuple::new(TupleId(9_000 + u32::from(v)), cells);
                let a = folded.predictor().distribution(attr, &t);
                let b = remined.predictor().distribution(attr, &t);
                prop_assert_eq!(a.len(), b.len());
                for ((va, pa), (vb, pb)) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(va, vb);
                    prop_assert_eq!(
                        pa.to_bits(),
                        pb.to_bits(),
                        "posterior for {:?}=x{} diverged: folded {} batch {}",
                        attr, v, pa, pb
                    );
                }
            }
        }
    }

    /// A fold is byte-identical at any worker-pool width: its shard merge
    /// and per-attribute rebuild are deterministic, so running under 1
    /// thread and 8 threads produces observably identical bundles.
    #[test]
    fn fold_is_byte_identical_across_thread_counts(
        old in tiny_relation(),
        probe in probe_rows(),
    ) {
        let config = MiningConfig::default();
        let fresh = probe_relation(&probe);
        let run = |threads: usize| {
            par::set_thread_override(Some(threads));
            let stats = SourceStats::mine(&old, old.len() * 10, &config);
            let folded = fold_stats(&stats, &fresh, &config);
            par::set_thread_override(None);
            fold_fingerprint(&folded)
        };
        prop_assert_eq!(run(1), run(8));
    }
}

// Silence the unused warning for Arc (used via Schema construction above).
#[allow(dead_code)]
fn _touch(_: Arc<Schema>) {}
