//! Plan-cache lifecycle and EXPLAIN guarantees.
//!
//! The mediation-plan cache memoizes each source's candidate rewrite list
//! per (query template, knowledge version). These tests pin down its
//! contract end to end:
//!
//! 1. **Hit** — a repeated query template against unchanged knowledge is
//!    served from the cache (counted on the source's meter) and produces
//!    the same answer as the cold pass.
//! 2. **Invalidation on re-mine** — [`MediatorNetwork::refresh_member`]
//!    bumps the member's knowledge version, silently orphaning its cached
//!    plans.
//! 3. **Invalidation on drift** — a [`DriftVerdict`] demotes the member's
//!    knowledge, which must also orphan cached plans: they were ranked
//!    with precision estimates the verdict just discredited.
//! 4. **EXPLAIN is free** — rendering the network's plan issues zero
//!    source queries while still enumerating every admitted and skipped
//!    rewrite.

use std::sync::Arc;

use qpiad::core::network::MediatorNetwork;
use qpiad::core::{AnswerSet, PlanCache, Qpiad, QpiadConfig};
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    AutonomousSource, Predicate, Relation, SelectQuery, SkewInjector, SkewPlan, Value, WebSource,
};
use qpiad::learn::drift::{DriftConfig, DriftRegistry};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};

fn fixture() -> (Relation, SourceStats) {
    let ground = CarsConfig::default().with_rows(5_000).generate(91);
    let (ed, _) = corrupt(&ground, &CorruptionConfig::default().with_seed(1));
    let stats =
        SourceStats::mine(&uniform_sample(&ed, 0.10, 2), ed.len(), &MiningConfig::default());
    (ed, stats)
}

/// Everything rank-order-sensitive about an answer set, bit-exact.
fn signature(a: &AnswerSet) -> Vec<String> {
    a.certain
        .iter()
        .map(|t| format!("certain {:?}", t.id()))
        .chain(a.possible.iter().map(|r| {
            format!(
                "possible {:?} conf={:016x} prec={:016x} q={}",
                r.tuple.id(),
                r.confidence.to_bits(),
                r.query_precision.to_bits(),
                r.query_index
            )
        }))
        .chain(a.issued.iter().map(|rq| format!("issued {:?}", rq.query)))
        .collect()
}

#[test]
fn repeated_templates_hit_the_cache_and_answer_identically() {
    let (ed, stats) = fixture();
    let body = ed.schema().expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    let source = WebSource::new("cars.com", ed.clone());
    let cache = Arc::new(PlanCache::new());
    let qpiad = Qpiad::new(stats, QpiadConfig::default().with_k(8))
        .with_plan_cache(Arc::clone(&cache), 0);

    let cold = qpiad.answer(&source, &q).unwrap();
    assert!(!cold.possible.is_empty(), "fixture must exercise rewriting");
    assert_eq!(source.meter().plan_cache_misses, 1);
    assert_eq!(source.meter().plan_cache_hits, 0);
    assert_eq!(cache.len(), 1);

    let warm = qpiad.answer(&source, &q).unwrap();
    assert_eq!(source.meter().plan_cache_misses, 1);
    assert_eq!(source.meter().plan_cache_hits, 1);
    assert_eq!(signature(&cold), signature(&warm), "a cached plan must not change the answer");

    // A different template is its own cache entry.
    let q2 = SelectQuery::new(vec![Predicate::eq(body, "SUV")]);
    qpiad.answer(&source, &q2).unwrap();
    assert_eq!(source.meter().plan_cache_misses, 2);
    assert_eq!(cache.len(), 2);
}

#[test]
fn refresh_member_invalidates_cached_plans() {
    let (ed, stats) = fixture();
    let global = ed.schema().clone();
    let cars = WebSource::new("cars.com", ed.clone());
    let cache = Arc::new(PlanCache::new());
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_plan_cache(Arc::clone(&cache))
        .add_supporting(&cars, stats.clone());
    let v0 = network.member_knowledge_version("cars.com");

    let body = global.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    network.answer(&q).unwrap();
    network.answer(&q).unwrap();
    assert_eq!(cars.meter().plan_cache_misses, 1);
    assert_eq!(cars.meter().plan_cache_hits, 1);

    network.refresh_member("cars.com", |_| Ok(stats.clone()), None).unwrap();
    assert!(network.member_knowledge_version("cars.com") > v0);

    network.answer(&q).unwrap();
    assert_eq!(
        cars.meter().plan_cache_misses,
        2,
        "a refresh must orphan plans built on the old knowledge"
    );
    network.answer(&q).unwrap();
    assert_eq!(cars.meter().plan_cache_hits, 2, "the re-planned template caches again");
}

#[test]
fn a_drift_verdict_invalidates_cached_plans() {
    let (ed, stats) = fixture();
    let global = ed.schema().clone();
    let make = global.expect_attr("make");
    let body = global.expect_attr("body_style");

    // Content-keyed skew: ~90% of returned tuples report make=Monopoly,
    // a value the mined sample never saw — the first pass's responses
    // alone cross the drift threshold.
    let cars = SkewInjector::new(
        WebSource::new("cars.com", ed.clone()),
        SkewPlan::new(make, Value::str("Monopoly"), 0.9, 77),
    );
    let registry = Arc::new(DriftRegistry::new(
        DriftConfig::default().with_min_observations(20).with_threshold(0.35),
    ));
    let cache = Arc::new(PlanCache::new());
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_drift(registry.clone())
        .with_plan_cache(Arc::clone(&cache))
        .add_supporting(&cars, stats);
    let v0 = network.member_knowledge_version("cars.com");

    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    let first = network.answer(&q).unwrap();
    assert_eq!(first.drift_verdicts.len(), 1, "the skewed pass must fire a verdict");
    assert_eq!(cars.meter().plan_cache_misses, 1);

    // The verdict demoted the member's knowledge: its version moved, so
    // the next pass re-plans instead of serving the discredited ranking.
    assert!(network.member_knowledge_version("cars.com") > v0);
    network.answer(&q).unwrap();
    assert_eq!(
        cars.meter().plan_cache_misses,
        2,
        "a drift demotion must orphan the cached plan"
    );
    assert_eq!(cars.meter().plan_cache_hits, 0);
}

#[test]
fn explain_issues_zero_source_queries() {
    let (ed, stats) = fixture();
    let global = ed.schema().clone();
    let cars = WebSource::new("cars.com", ed.clone());

    // A deficient member too, so the correlated plan renders as well.
    let keep: Vec<_> = global
        .attr_ids()
        .filter(|a| global.attr(*a).name() != "body_style")
        .collect();
    let yahoo_local =
        CarsConfig::default().with_rows(5_000).generate(92).project_to("yahoo_autos", &keep);
    let yahoo = WebSource::new("yahoo_autos", yahoo_local);

    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .add_supporting(&cars, stats)
        .add_deficient(&yahoo);
    let body = global.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    let text = network.explain(&q);
    assert!(text.contains("plan for source `cars.com`"), "{text}");
    assert!(text.contains("rewrites (rank order):"), "{text}");
    assert!(text.contains("ADMIT"), "{text}");
    assert!(text.contains("F="), "{text}");
    assert!(text.contains("cannot bind the query"), "{text}");

    let cars_meter = cars.meter();
    let yahoo_meter = yahoo.meter();
    assert_eq!(cars_meter.queries, 0, "EXPLAIN must not query any source");
    assert_eq!(cars_meter.failures, 0);
    assert_eq!(yahoo_meter.queries, 0);
    assert_eq!(yahoo_meter.failures, 0);
}
