//! Integration tests for the multi-source features: the global catalog,
//! correlated-source retrieval, joins, and aggregates.

use qpiad::core::aggregate::{answer_aggregate, AggregateConfig};
use qpiad::core::correlated::{answer_from_correlated, is_correlated_source_usable};
use qpiad::core::join::{answer_join, JoinConfig, JoinSide};
use qpiad::core::rank::RankConfig;
use qpiad::data::cars::CarsConfig;
use qpiad::data::complaints::ComplaintsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    AggregateQuery, AutonomousSource, GlobalCatalog, JoinQuery, Predicate, Relation, SelectQuery,
    SourceBinding, Value, WebSource,
};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};

fn mine(ed: &Relation, seed: u64) -> SourceStats {
    let sample = uniform_sample(ed, 0.10, seed);
    SourceStats::mine(&sample, ed.len(), &MiningConfig::default())
}

#[test]
fn catalog_routes_queries_between_global_and_local_schemas() {
    let cars = CarsConfig::default().with_rows(1_000).generate(1);
    let global = cars.schema().clone();
    let keep: Vec<_> = global
        .attr_ids()
        .filter(|a| global.attr(*a).name() != "body_style")
        .collect();
    let yahoo_local = cars.project_to("yahoo", &keep);

    let catalog = GlobalCatalog::new(global.clone())
        .with_source("cars.com", &global)
        .with_source("yahoo", yahoo_local.schema());

    let body = global.expect_attr("body_style");
    assert_eq!(catalog.sources_supporting(body).len(), 1);
    assert_eq!(catalog.sources_lacking(body).len(), 1);

    // Queries on supported attributes translate; on missing ones they fail.
    let binding = catalog.binding("yahoo").unwrap();
    let q = SelectQuery::new(vec![Predicate::eq(global.expect_attr("model"), "Civic")]);
    let local_q = binding.translate_query(&q).unwrap();
    assert_eq!(yahoo_local.select(&local_q).len(), {
        // Same result as filtering the full relation.
        cars.select(&q).len()
    });
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    assert!(binding.translate_query(&q).is_err());
}

#[test]
fn correlated_source_pipeline_end_to_end() {
    // Statistics from cars.com, retrieval from a body_style-less source.
    let cars_gd = CarsConfig::default().with_rows(8_000).generate(2);
    let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
    let stats = mine(&cars_ed, 7);
    let cars = WebSource::new("cars.com", cars_ed);

    let other_gd = CarsConfig::default().with_rows(8_000).generate(3);
    let schema = other_gd.schema().clone();
    let keep: Vec<_> = schema
        .attr_ids()
        .filter(|a| schema.attr(*a).name() != "body_style")
        .collect();
    let local = other_gd.project_to("carsdirect", &keep);
    let binding = SourceBinding::by_name("carsdirect", &schema, local.schema());
    let target = WebSource::new("carsdirect", local);

    let body = schema.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Truck")]);
    assert!(is_correlated_source_usable(&stats, &binding, &q));

    let answers = answer_from_correlated(
        &cars,
        &stats,
        &target,
        &binding,
        &q,
        &RankConfig { alpha: 0.0, k: 10 },
        &qpiad::db::RetryPolicy::default(),
        &mut qpiad::core::QueryContext::unbounded(),
    )
    .unwrap();
    assert!(!answers.degraded.is_degraded());
    let answers = answers.possible;
    assert!(!answers.is_empty());
    // Precision against the hidden truth is far above the truck base rate.
    let hits = answers
        .iter()
        .filter(|a| {
            other_gd
                .by_id(a.tuple.id())
                .map(|t| t.value(body) == &Value::str("Truck"))
                .unwrap_or(false)
        })
        .count();
    let precision = hits as f64 / answers.len() as f64;
    let base_rate = other_gd
        .tuples()
        .iter()
        .filter(|t| t.value(body) == &Value::str("Truck"))
        .count() as f64
        / other_gd.len() as f64;
    assert!(
        precision > base_rate + 0.2,
        "precision {precision:.3} vs base rate {base_rate:.3}"
    );
}

#[test]
fn join_pipeline_recovers_ground_truth_pairs() {
    let cars_gd = CarsConfig::default().with_rows(6_000).generate(4);
    let comp_gd = ComplaintsConfig { rows: 9_000 }.generate(5);
    let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(6));
    let (comp_ed, _) = corrupt(&comp_gd, &CorruptionConfig::default().with_seed(7));
    let cars_stats = mine(&cars_ed, 8);
    let comp_stats = mine(&comp_ed, 9);
    let cars = WebSource::new("cars", cars_ed);
    let comps = WebSource::new("complaints", comp_ed);

    let model_l = cars.schema().expect_attr("model");
    let model_r = comps.schema().expect_attr("model");
    let gc = comps.schema().expect_attr("general_component");
    let jq = JoinQuery {
        left: SelectQuery::new(vec![Predicate::eq(model_l, "F150")]),
        right: SelectQuery::new(vec![Predicate::eq(gc, "Electrical System")]),
        left_attr: model_l,
        right_attr: model_r,
    };
    let ans = answer_join(
        &JoinSide { source: &cars, stats: &cars_stats },
        &JoinSide { source: &comps, stats: &comp_stats },
        &JoinConfig { alpha: 0.5, k_pairs: 10 },
        &jq,
    )
    .unwrap();
    assert!(!ans.results.is_empty());

    // Every certain joined tuple is a true pair.
    for j in ans.results.iter().filter(|j| j.is_certain()) {
        let lt = cars_gd.by_id(j.left.id()).unwrap();
        let rt = comp_gd.by_id(j.right.id()).unwrap();
        assert!(jq.left.matches(lt));
        assert!(jq.right.matches(rt));
        assert_eq!(lt.value(jq.left_attr), rt.value(jq.right_attr));
    }
}

#[test]
fn aggregates_improve_with_prediction_across_styles() {
    let ground = CarsConfig::default().with_rows(10_000).generate(10);
    let (ed, _) = corrupt(&ground, &CorruptionConfig::default().with_seed(11));
    let stats = mine(&ed, 12);
    let source = WebSource::new("cars", ed);
    let body = ground.schema().expect_attr("body_style");

    let mut improved = 0usize;
    let mut total = 0usize;
    for style in ["Sedan", "SUV", "Truck", "Convt", "Coupe", "Van"] {
        let select = SelectQuery::new(vec![Predicate::eq(body, style)]);
        let truth = ground.count(&select) as f64;
        if truth == 0.0 {
            continue;
        }
        let aq = AggregateQuery::count(select);
        let ans = answer_aggregate(&stats, &AggregateConfig::default(), &source, &aq).unwrap();
        total += 1;
        let err_certain = (ans.certain - truth).abs();
        let err_pred = (ans.with_prediction - truth).abs();
        if err_pred <= err_certain {
            improved += 1;
        }
    }
    assert!(
        improved * 2 > total,
        "prediction helped only {improved}/{total} aggregates"
    );
}
