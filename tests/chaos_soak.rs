//! Deterministic chaos soak over the serving stack.
//!
//! A seeded [`ChaosSchedule`] composes every failure mode the repo models
//! — source outages, semantic skew, knowledge-snapshot corruption,
//! breaker trips, and tenant floods — over hundreds of logical-clock
//! passes against a live [`QpiadServer`]. Two suites split the work along
//! what can honestly be asserted:
//!
//! * [`chaos_soak_replays_byte_identically_and_stays_sound`] issues the
//!   pass workload serially (the `QPIAD_THREADS` override only toggles
//!   *internal* mediation parallelism) and checks, after **every** pass:
//!   certain answers are a subset of the unchaosed run, metrics conserve,
//!   no flight is left wedged — and that the full per-pass answer digest
//!   is byte-identical between worker pools of 1 and 8. Every ~16th pass
//!   it additionally re-runs the query one ladder rung higher on an
//!   isolated twin and checks lattice monotonicity.
//! * [`chaos_floods_conserve_and_never_wedge`] storms the same world with
//!   genuinely concurrent multi-tenant traffic and scheduled batch
//!   floods; thread timing makes answers race-dependent, so it asserts
//!   the robustness invariants that must survive any interleaving:
//!   typed sheds only, interactive work never shed, certain answers
//!   sound, conservation exact at every quiescent point, zero wedged
//!   waiters.
//! * [`refresh_soak_heals_drift_and_replays_byte_identically`] adds the
//!   knowledge lifecycle to the serial soak: scheduled skew drives drift
//!   verdicts, a sequential [`QpiadServer::maintain_at`] between passes
//!   drains the refresh queue against a real [`KnowledgeStore`] with
//!   scheduled persist faults, and the per-pass digest — answers,
//!   maintenance outcomes, epochs — must be byte-identical between 1 and
//!   8 mediation workers.
//! * [`refresh_under_flood_heals_and_never_refuses`] races maintenance
//!   against the concurrent flood: epoch swaps and persist failures land
//!   mid-storm, and no interleaving may invent a certain answer, refuse
//!   interactive work, break conservation, or leave the store unloadable.
//!
//! The chaos seed is `QPIAD_CHAOS_SEED` (default 42); CI soaks two fixed
//! seeds so a regression cannot hide behind one lucky schedule.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use qpiad::core::mediator::QpiadConfig;
use qpiad::core::network::{MediatorNetwork, NetworkAnswer};
use qpiad::core::par;
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    BreakerConfig, ChaosConfig, ChaosSchedule, ChaosSource, HealthRegistry, MediationClock,
    Observation, PassCell, Predicate, PressureLevel, QueryBudget, Relation, Schema, SelectQuery,
    TupleId, Value, WebSource,
};
use qpiad::learn::drift::{DriftConfig, DriftRegistry};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};
use qpiad::learn::persist::StatsSnapshot;
use qpiad::learn::store::{decode_snapshot, encode_snapshot, KnowledgeStore, PersistFault};
use qpiad::serve::{QpiadServer, ServeConfig, ServeError, Tenant};

/// The thread override is process-global; the two byte-identity suites
/// serialize on this lock so their pinned pool sizes cannot interleave.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

const PASSES: u64 = 220;
const MEMBERS: [&str; 2] = ["cars.com", "auctions"];
const STYLES: [&str; 8] = [
    "Sedan", "Coupe", "Convt", "SUV", "Hatchback", "Truck", "Van", "Wagon",
];
const RUNGS: [PressureLevel; 4] = [
    PressureLevel::Normal,
    PressureLevel::Elevated,
    PressureLevel::High,
    PressureLevel::Critical,
];

fn chaos_seed() -> u64 {
    std::env::var("QPIAD_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn schedule() -> Arc<ChaosSchedule> {
    Arc::new(ChaosSchedule::new(
        ChaosConfig::calm(MEMBERS.len())
            .with_seed(chaos_seed())
            .with_outage_rate(0.12)
            .with_skew_rate(0.12)
            .with_corrupt_rate(0.06)
            .with_trip_rate(0.05)
            .with_flood(0.5, 6),
    ))
}

/// One member's incomplete relation and mined statistics: every member is
/// a differently-corrupted view of the *same* ground relation (the QPIAD
/// multi-source setting), fully determined by the member index, so every
/// run reconstructs the same world.
fn member_world(member: usize) -> (Relation, SourceStats) {
    let ground = CarsConfig::default().with_rows(3_000).generate(71);
    let (incomplete, _) = corrupt(
        &ground,
        &CorruptionConfig::default().with_seed(1 + member as u64),
    );
    let stats = SourceStats::mine(
        &uniform_sample(&incomplete, 0.10, 2),
        incomplete.len(),
        &MiningConfig::default(),
    );
    (incomplete, stats)
}

fn soak_query(global: &Arc<Schema>, pass: u64) -> SelectQuery {
    SelectQuery::new(vec![Predicate::eq(
        global.expect_attr("body_style"),
        STYLES[(pass as usize) % STYLES.len()],
    )])
}

/// Certain-answer tuple ids from an unchaosed serial run, one federation
/// union per query template — the soundness reference every chaosed pass
/// is checked against. The union (not per-member sets) is the sound bound
/// because hedging may legitimately re-attribute a recovering member's
/// retrieval to its partner source.
fn unchaosed_reference(
    worlds: &[(Relation, SourceStats)],
    global: &Arc<Schema>,
) -> Vec<HashSet<TupleId>> {
    let sources: Vec<WebSource> = worlds
        .iter()
        .zip(MEMBERS)
        .map(|((relation, _), name)| WebSource::new(name, relation.clone()))
        .collect();
    let mut network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6))
        .with_clock(MediationClock::logical());
    for (source, (_, stats)) in sources.iter().zip(worlds) {
        network = network.add_supporting(source, stats.clone());
    }
    (0..STYLES.len() as u64)
        .map(|pass| {
            let answer = network.answer(&soak_query(global, pass)).unwrap();
            answer
                .per_source
                .iter()
                .flat_map(|s| s.certain.iter().map(|t| t.id()))
                .collect()
        })
        .collect()
}

/// Bit-exact digest of everything rank- and float-sensitive in an answer.
fn digest(pass: u64, pressure: PressureLevel, answer: &NetworkAnswer) -> String {
    use std::fmt::Write;
    let mut line = format!("pass={pass} rung={}", pressure.label());
    for s in &answer.per_source {
        let outcome = match &s.outcome {
            qpiad::core::network::SourceOutcome::Healthy => "healthy".to_string(),
            qpiad::core::network::SourceOutcome::Degraded(d) => format!(
                "degraded(sheds={} mass={:016x})",
                d.overload_sheds,
                d.dropped_fmeasure.to_bits()
            ),
            qpiad::core::network::SourceOutcome::Failed(e) => format!("failed({e})"),
        };
        write!(line, " | {} {outcome} certain=[", s.source).unwrap();
        for t in &s.certain {
            write!(line, "{:?},", t.id()).unwrap();
        }
        write!(line, "] possible=[").unwrap();
        for r in &s.possible {
            write!(
                line,
                "({:?},q{},c{:016x}),",
                r.tuple.id(),
                r.query_index,
                r.confidence.to_bits()
            )
            .unwrap();
        }
        write!(line, "]").unwrap();
    }
    line
}

/// Runs the serial soak with `threads` mediation workers and returns the
/// per-pass digest log. Panics on any violated invariant.
fn run_soak(threads: usize) -> Vec<String> {
    struct PoolReset;
    impl Drop for PoolReset {
        fn drop(&mut self) {
            par::set_thread_override(None);
        }
    }
    let _reset = PoolReset;
    par::set_thread_override(Some(threads));

    let schedule = schedule();
    let worlds: Vec<(Relation, SourceStats)> = (0..MEMBERS.len()).map(member_world).collect();
    let global = worlds[0].0.schema().clone();
    let reference = unchaosed_reference(&worlds, &global);
    let model = global.expect_attr("model");

    let cell = PassCell::new();
    let chaotic: Vec<ChaosSource<WebSource>> = worlds
        .iter()
        .zip(MEMBERS)
        .enumerate()
        .map(|(m, ((relation, _), name))| {
            ChaosSource::new(WebSource::new(name, relation.clone()), m, Arc::clone(&schedule), Arc::clone(&cell))
                .with_skew(model, Value::str("Drifted"))
        })
        .collect();
    let health = Arc::new(HealthRegistry::new(BreakerConfig::default()));
    let mut network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6))
        .with_clock(MediationClock::logical())
        .with_health(Arc::clone(&health));
    for (source, (_, stats)) in chaotic.iter().zip(&worlds) {
        network = network.add_supporting(source, stats.clone());
    }
    let server = QpiadServer::new(network);
    server.register(Tenant::interactive("web"));

    // A healthy snapshot whose corrupted variants the corruption events
    // feed to the decoder — it must always fail closed, never panic.
    let snapshot = encode_snapshot(&StatsSnapshot::capture(&worlds[0].1, &MiningConfig::default()));

    let mut log = Vec::with_capacity(PASSES as usize);
    for pass in 0..PASSES {
        cell.set(pass);
        let chaos = schedule.pass(pass);

        // Harness-level chaos: scheduled breaker trips and knowledge
        // corruption land before the pass's serve traffic.
        for &member in &chaos.tripped {
            health.absorb(MEMBERS[member], &[Observation::Failure; 3]);
        }
        for &member in &chaos.corrupted {
            let mut bytes = snapshot.clone().into_bytes();
            let at = (pass as usize * 131 + member * 17) % bytes.len();
            bytes[at] ^= 0x5a;
            match decode_snapshot(&String::from_utf8_lossy(&bytes)) {
                Ok(restored) => assert!(restored.restore().schema().arity() > 0),
                Err(e) => assert!(!e.kind().is_empty(), "corruption must classify, not panic"),
            }
        }

        let pressure = RUNGS[(pass % 4) as usize];
        let query = soak_query(&global, pass);
        let answer = server
            .query_under("web", &query, pressure)
            .expect("a soak pass never aborts: members fail, the network degrades");

        // Soundness: chaos may *lose* certain answers (outages, open
        // breakers) and hedging may re-attribute them between members,
        // but the federation can never invent one.
        let expected = &reference[(pass as usize) % STYLES.len()];
        for s in &answer.per_source {
            for t in &s.certain {
                assert!(
                    expected.contains(&t.id()),
                    "pass {pass}: chaos invented certain answer {:?} on {}",
                    t.id(),
                    s.source
                );
            }
        }

        // Lattice monotonicity spot-check: one rung higher on an isolated
        // twin (same chaos pass, fresh breakers) must answer with a
        // subset of the possible answers and identical certain answers.
        if pass % 16 == 0 && pressure < PressureLevel::Critical {
            let higher = RUNGS[(pass % 4) as usize + 1];
            // Hedging off in the twins: it is a separate rescue axis (the
            // ladder disables it at High) that can legitimately move
            // certain answers between rungs; the lattice law being pinned
            // here is the rank-prefix plan clamp.
            let twin = |rung: PressureLevel| -> NetworkAnswer {
                let mut net =
                    MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6))
                        .with_clock(MediationClock::logical())
                        .with_hedging(false);
                for (source, (_, stats)) in chaotic.iter().zip(&worlds) {
                    net = net.add_supporting(source, stats.clone());
                }
                net.answer_under(&query, QueryBudget::unlimited(), rung).unwrap()
            };
            let lo = twin(pressure);
            let hi = twin(higher);
            let lo_certain: Vec<TupleId> = lo
                .per_source
                .iter()
                .flat_map(|s| s.certain.iter().map(|t| t.id()))
                .collect();
            let hi_certain: Vec<TupleId> = hi
                .per_source
                .iter()
                .flat_map(|s| s.certain.iter().map(|t| t.id()))
                .collect();
            assert_eq!(lo_certain, hi_certain, "pass {pass}: certain answers moved with pressure");
            let lo_possible: HashSet<(TupleId, usize)> = lo
                .per_source
                .iter()
                .flat_map(|s| s.possible.iter().map(|r| (r.tuple.id(), r.query_index)))
                .collect();
            for s in &hi.per_source {
                for r in &s.possible {
                    assert!(
                        lo_possible.contains(&(r.tuple.id(), r.query_index)),
                        "pass {pass}: answer at {higher:?} not served at {pressure:?}"
                    );
                }
            }
        }

        // Accounting: exact conservation and zero wedged flights after
        // every pass.
        let m = server.metrics();
        assert!(
            m.conserves(),
            "pass {pass}: admitted {} != completed {} + shed {} + refused {} + errors {}",
            m.admitted,
            m.completed,
            m.shed,
            m.deadline_refused,
            m.errors
        );
        assert_eq!(m.in_flight, 0, "pass {pass}: request left in flight");
        assert_eq!(server.inflight(), 0, "pass {pass}: wedged singleflight entry");

        log.push(digest(pass, pressure, &answer));
    }
    log
}

#[test]
fn chaos_soak_replays_byte_identically_and_stays_sound() {
    let _lock = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = run_soak(1);
    assert_eq!(serial.len(), PASSES as usize);
    let parallel = run_soak(8);
    for (pass, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "pass {pass} diverged between 1 and 8 mediation workers");
    }
}

#[test]
fn chaos_floods_conserve_and_never_wedge() {
    const FLOOD_PASSES: u64 = 48;

    let schedule = schedule();
    let worlds: Vec<(Relation, SourceStats)> = (0..MEMBERS.len()).map(member_world).collect();
    let global = worlds[0].0.schema().clone();
    let reference = unchaosed_reference(&worlds, &global);

    let cell = PassCell::new();
    let chaotic: Vec<ChaosSource<WebSource>> = worlds
        .iter()
        .zip(MEMBERS)
        .enumerate()
        .map(|(m, ((relation, _), name))| {
            ChaosSource::new(
                WebSource::new(name, relation.clone()),
                m,
                Arc::clone(&schedule),
                Arc::clone(&cell),
            )
        })
        .collect();
    let health = Arc::new(HealthRegistry::new(BreakerConfig::default()));
    let mut network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6))
        .with_clock(MediationClock::logical())
        .with_health(Arc::clone(&health));
    for (source, (_, stats)) in chaotic.iter().zip(&worlds) {
        network = network.add_supporting(source, stats.clone());
    }
    let server = QpiadServer::new(network).with_config(
        ServeConfig::default()
            .with_batch_concurrency(1)
            .with_batch_queue_limit(2)
            .with_pressure_capacity(4),
    );
    server.register(Tenant::interactive("web"));
    server.register(Tenant::batch("nightly"));

    // `template_pass` is the pass value the caller derived its query
    // from — flood callers fan out over neighbouring templates.
    let check_sound = |answer: &Arc<NetworkAnswer>, template_pass: u64| {
        let expected = &reference[(template_pass as usize) % STYLES.len()];
        for s in &answer.per_source {
            for t in &s.certain {
                assert!(expected.contains(&t.id()), "flood invented a certain answer");
            }
        }
    };

    for pass in 0..FLOOD_PASSES {
        cell.set(pass);
        let chaos = schedule.pass(pass);
        for &member in &chaos.tripped {
            health.absorb(MEMBERS[member], &[Observation::Failure; 3]);
        }

        // Concurrent multi-tenant traffic: two interactive callers plus a
        // batch wave whose size the schedule storms up to a flood.
        let batch_callers = 2 + chaos.flood;
        std::thread::scope(|scope| {
            let interactive: Vec<_> = (0..2u64)
                .map(|i| {
                    let query = soak_query(&global, pass + i);
                    let server = &server;
                    (pass + i, scope.spawn(move || server.query("web", &query)))
                })
                .collect();
            let batch: Vec<_> = (0..batch_callers as u64)
                .map(|i| {
                    let query = soak_query(&global, pass + i);
                    let server = &server;
                    (pass + i, scope.spawn(move || server.query("nightly", &query)))
                })
                .collect();

            for (template_pass, h) in interactive {
                // Interactive work is never shed — it degrades instead.
                match h.join().expect("interactive caller must not panic") {
                    Ok(answer) => check_sound(&answer, template_pass),
                    Err(ServeError::Shed { .. }) => panic!("interactive request was shed"),
                    Err(ServeError::Source(_)) => {}
                    Err(other) => panic!("unexpected admission failure: {other}"),
                }
            }
            for (template_pass, h) in batch {
                match h.join().expect("batch caller must not panic") {
                    Ok(answer) => check_sound(&answer, template_pass),
                    // Overload sheds are typed and carry the observed load.
                    Err(ServeError::Shed { in_flight, limit }) => {
                        assert!(in_flight > limit, "shed must report load above the limit");
                        assert_eq!(limit, 2);
                    }
                    Err(ServeError::Source(_)) => {}
                    Err(other) => panic!("unexpected admission failure: {other}"),
                }
            }
        });

        // Quiescent after every wave: exact conservation, nothing wedged.
        let m = server.metrics();
        assert!(m.conserves(), "pass {pass}: conservation violated: {m:?}");
        assert_eq!(m.in_flight, 0, "pass {pass}: request left in flight");
        assert_eq!(m.coalesce_waiters, 0, "pass {pass}: waiter left parked");
        assert_eq!(server.inflight(), 0, "pass {pass}: wedged singleflight entry");
    }

    let m = server.metrics();
    assert_eq!(
        m.admitted,
        m.completed + m.shed + m.deadline_refused + m.errors,
        "final conservation must be exact"
    );
    assert!(m.completed > 0, "the flood must not have starved all work");
}

// ---------------------------------------------------------------------------
// Knowledge lifecycle under chaos: drift → maintain() → heal cycles, with
// scheduled persist faults against a real store.
// ---------------------------------------------------------------------------

/// A fresh scratch store under `target/` (never outside the repo).
fn scratch_store(name: &str) -> KnowledgeStore {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/test-chaos-soak")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    KnowledgeStore::open(dir).unwrap()
}

/// The refresh soak's schedule: skew heavy enough that drift verdicts
/// keep firing (driving repeated refresh cycles), plus scheduled
/// persist failures against the maintenance passes.
fn refresh_schedule() -> Arc<ChaosSchedule> {
    Arc::new(ChaosSchedule::new(
        ChaosConfig::calm(MEMBERS.len())
            .with_seed(chaos_seed())
            .with_skew_rate(0.45)
            .with_trip_rate(0.05)
            .with_persist_fail_rate(0.2),
    ))
}

/// Re-mines a member's statistics from its true incomplete relation —
/// a pure function of the member, so every run (and both worker-pool
/// sizes) publishes identical refreshed generations.
fn remine(worlds: &[(Relation, SourceStats)], name: &str) -> SourceStats {
    let m = MEMBERS.iter().position(|&n| n == name).expect("mine called for unknown member");
    let (relation, _) = &worlds[m];
    SourceStats::mine(
        &uniform_sample(relation, 0.10, 5 + m as u64),
        relation.len(),
        &MiningConfig::default(),
    )
}

/// Arms this pass's scheduled persist faults. Alternating the fault kind
/// by pass parity walks both cleanup rungs: `Refused`/`DiskFull` leave
/// zero debris, `CrashBeforeRename` leaves journal + temp for the next
/// recovery sweep — either way the prior snapshot must stay loadable.
fn arm_persist_faults(store: &KnowledgeStore, persist_failing: &[usize], pass: u64) {
    for &member in persist_failing {
        let fault = if pass.is_multiple_of(2) {
            PersistFault::Refused
        } else {
            PersistFault::CrashBeforeRename
        };
        store.inject_persist_fault(MEMBERS[member], fault);
    }
}

/// Runs the refresh soak with `threads` mediation workers and returns the
/// per-pass digest log — answers, maintenance outcomes, and epochs.
fn run_refresh_soak(threads: usize) -> Vec<String> {
    use std::fmt::Write;

    struct PoolReset;
    impl Drop for PoolReset {
        fn drop(&mut self) {
            par::set_thread_override(None);
        }
    }
    let _reset = PoolReset;
    par::set_thread_override(Some(threads));

    const REFRESH_PASSES: u64 = 160;

    let schedule = refresh_schedule();
    let worlds: Vec<(Relation, SourceStats)> = (0..MEMBERS.len()).map(member_world).collect();
    let global = worlds[0].0.schema().clone();
    let reference = unchaosed_reference(&worlds, &global);
    let model = global.expect_attr("model");

    let cell = PassCell::new();
    let chaotic: Vec<ChaosSource<WebSource>> = worlds
        .iter()
        .zip(MEMBERS)
        .enumerate()
        .map(|(m, ((relation, _), name))| {
            ChaosSource::new(
                WebSource::new(name, relation.clone()),
                m,
                Arc::clone(&schedule),
                Arc::clone(&cell),
            )
            .with_skew(model, Value::str("Drifted"))
        })
        .collect();
    let health = Arc::new(HealthRegistry::new(BreakerConfig::default()));
    let drift = Arc::new(DriftRegistry::new(
        DriftConfig::default().with_threshold(0.25).with_min_observations(40),
    ));
    let store = scratch_store(&format!("refresh-soak-{threads}"));
    let mut network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6))
        .with_clock(MediationClock::logical())
        .with_health(Arc::clone(&health))
        .with_drift(Arc::clone(&drift));
    for (source, (_, stats)) in chaotic.iter().zip(&worlds) {
        network = network.add_supporting(source, stats.clone());
    }
    // The harness keeps its own store handle: clones share the root and
    // the armed fault set with the server's copy.
    // A single attempt per pass: an armed persist fault fails the whole
    // refresh (the in-pass retry rung is the flood suite's job), so the
    // soak walks the cross-pass ladder — failure, backoff, deferral, heal.
    let server = QpiadServer::new(network)
        .with_config(ServeConfig::default().with_refresh_retries(1).with_refresh_backoff_base(2))
        .with_knowledge_store(store.clone(), MiningConfig::default());
    server.register(Tenant::interactive("web"));

    let mut log = Vec::with_capacity(REFRESH_PASSES as usize);
    for pass in 0..REFRESH_PASSES {
        cell.set(pass);
        let chaos = schedule.pass(pass);
        for &member in &chaos.tripped {
            health.absorb(MEMBERS[member], &[Observation::Failure; 3]);
        }

        let pressure = RUNGS[(pass % 4) as usize];
        let query = soak_query(&global, pass);
        let answer = server
            .query_under("web", &query, pressure)
            .expect("a refresh-soak pass never aborts: members fail, the network degrades");

        // Soundness across every swap: a refreshed generation changes
        // ranking, never invents certain answers.
        let expected = &reference[(pass as usize) % STYLES.len()];
        for s in &answer.per_source {
            for t in &s.certain {
                assert!(
                    expected.contains(&t.id()),
                    "pass {pass}: refresh soak invented certain answer {:?} on {}",
                    t.id(),
                    s.source
                );
            }
        }

        // Scheduled persist faults land, then maintenance drains the
        // refresh queue sequentially between passes — the same protocol
        // slot as the breaker/drift sequential absorb.
        arm_persist_faults(&store, &chaos.persist_failing, pass);
        let report = server.maintain_at(pass + 1, |name, _| Ok(remine(&worlds, name)));

        let m = server.metrics();
        assert!(m.conserves(), "pass {pass}: conservation violated: {m:?}");
        assert_eq!(m.in_flight, 0, "pass {pass}: request left in flight");
        assert_eq!(server.inflight(), 0, "pass {pass}: wedged singleflight entry");
        let epochs = server.network().member_epochs();
        assert_eq!(
            epochs.iter().map(|(_, e)| *e as usize).sum::<usize>(),
            m.refresh_success,
            "pass {pass}: every successful refresh bumps exactly one epoch"
        );

        // Digest: the answer plus everything the maintenance pass decided.
        let mut line = digest(pass, pressure, &answer);
        write!(line, " || maint refreshed={:?} failed=[", report.refreshed).unwrap();
        for (name, _) in &report.failed {
            write!(line, "{name},").unwrap();
        }
        write!(
            line,
            "] deferred={:?} retries={} epochs={epochs:?} pending={}",
            report.deferred, report.retries, m.pending_refresh
        )
        .unwrap();
        log.push(line);
    }

    // The lifecycle must have actually cycled: drift fired, refreshes
    // published, scheduled persist faults failed some of them.
    let m = server.metrics();
    assert!(m.refresh_success > 0, "the soak never published a refresh");
    assert!(m.refresh_failure > 0, "the scheduled persist faults never landed");
    // Whatever the fault schedule did, every persisted snapshot must load.
    for name in MEMBERS {
        if store.contains(name) {
            store
                .load_for(name, &global)
                .unwrap_or_else(|e| panic!("store unloadable for `{name}` after soak: {e}"));
        }
    }
    log
}

#[test]
fn refresh_soak_heals_drift_and_replays_byte_identically() {
    let _lock = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = run_refresh_soak(1);
    let parallel = run_refresh_soak(8);
    for (pass, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "pass {pass} diverged between 1 and 8 mediation workers");
    }
}

#[test]
fn refresh_under_flood_heals_and_never_refuses() {
    const FLOOD_PASSES: u64 = 48;

    let schedule = Arc::new(ChaosSchedule::new(
        ChaosConfig::calm(MEMBERS.len())
            .with_seed(chaos_seed())
            .with_skew_rate(0.6)
            .with_trip_rate(0.05)
            .with_persist_fail_rate(0.2)
            .with_flood(0.5, 6),
    ));
    let worlds: Vec<(Relation, SourceStats)> = (0..MEMBERS.len()).map(member_world).collect();
    let global = worlds[0].0.schema().clone();
    let reference = unchaosed_reference(&worlds, &global);
    let model = global.expect_attr("model");

    let cell = PassCell::new();
    let chaotic: Vec<ChaosSource<WebSource>> = worlds
        .iter()
        .zip(MEMBERS)
        .enumerate()
        .map(|(m, ((relation, _), name))| {
            ChaosSource::new(
                WebSource::new(name, relation.clone()),
                m,
                Arc::clone(&schedule),
                Arc::clone(&cell),
            )
            .with_skew(model, Value::str("Drifted"))
        })
        .collect();
    let health = Arc::new(HealthRegistry::new(BreakerConfig::default()));
    let drift = Arc::new(DriftRegistry::new(
        DriftConfig::default().with_threshold(0.25).with_min_observations(40),
    ));
    let store = scratch_store("refresh-flood");
    let mut network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6))
        .with_clock(MediationClock::logical())
        .with_health(Arc::clone(&health))
        .with_drift(Arc::clone(&drift));
    for (source, (_, stats)) in chaotic.iter().zip(&worlds) {
        network = network.add_supporting(source, stats.clone());
    }
    let server = QpiadServer::new(network)
        .with_config(
            ServeConfig::default()
                .with_batch_concurrency(1)
                .with_batch_queue_limit(2)
                .with_pressure_capacity(4)
                .with_refresh_retries(2),
        )
        .with_knowledge_store(store.clone(), MiningConfig::default());
    server.register(Tenant::interactive("web"));
    server.register(Tenant::batch("nightly"));

    let check_sound = |answer: &Arc<NetworkAnswer>, template_pass: u64| {
        let expected = &reference[(template_pass as usize) % STYLES.len()];
        for s in &answer.per_source {
            for t in &s.certain {
                assert!(
                    expected.contains(&t.id()),
                    "refresh flood invented a certain answer"
                );
            }
        }
    };

    for pass in 0..FLOOD_PASSES {
        cell.set(pass);
        let chaos = schedule.pass(pass);
        for &member in &chaos.tripped {
            health.absorb(MEMBERS[member], &[Observation::Failure; 3]);
        }
        arm_persist_faults(&store, &chaos.persist_failing, pass);

        // Maintenance races the storm: epoch swaps and persist failures
        // land while interactive and batch callers are mid-pass.
        let batch_callers = 2 + chaos.flood;
        std::thread::scope(|scope| {
            let interactive: Vec<_> = (0..2u64)
                .map(|i| {
                    let query = soak_query(&global, pass + i);
                    let server = &server;
                    (pass + i, scope.spawn(move || server.query("web", &query)))
                })
                .collect();
            let batch: Vec<_> = (0..batch_callers as u64)
                .map(|i| {
                    let query = soak_query(&global, pass + i);
                    let server = &server;
                    (pass + i, scope.spawn(move || server.query("nightly", &query)))
                })
                .collect();
            let maintainer = scope.spawn(|| {
                server.maintain_at(pass + 1, |name, _| Ok(remine(&worlds, name)))
            });

            for (template_pass, h) in interactive {
                match h.join().expect("interactive caller must not panic") {
                    Ok(answer) => check_sound(&answer, template_pass),
                    Err(ServeError::Shed { .. }) => panic!("interactive request was shed"),
                    Err(ServeError::Source(_)) => {}
                    Err(other) => panic!("unexpected admission failure: {other}"),
                }
            }
            for (template_pass, h) in batch {
                match h.join().expect("batch caller must not panic") {
                    Ok(answer) => check_sound(&answer, template_pass),
                    Err(ServeError::Shed { in_flight, limit }) => {
                        assert!(in_flight > limit, "shed must report load above the limit");
                        assert_eq!(limit, 2);
                    }
                    Err(ServeError::Source(_)) => {}
                    Err(other) => panic!("unexpected admission failure: {other}"),
                }
            }
            maintainer.join().expect("maintenance must not panic under flood");
        });

        // Quiescent after every wave: exact conservation, nothing wedged,
        // epoch accounting intact.
        let m = server.metrics();
        assert!(m.conserves(), "pass {pass}: conservation violated: {m:?}");
        assert_eq!(m.in_flight, 0, "pass {pass}: request left in flight");
        assert_eq!(m.coalesce_waiters, 0, "pass {pass}: waiter left parked");
        assert_eq!(server.inflight(), 0, "pass {pass}: wedged singleflight entry");
        assert_eq!(
            m.knowledge_epochs.iter().map(|(_, e)| *e as usize).sum::<usize>(),
            m.refresh_success,
            "pass {pass}: every successful refresh bumps exactly one epoch"
        );
    }

    let m = server.metrics();
    assert!(m.conserves(), "final conservation must be exact");
    assert!(m.completed > 0, "the flood must not have starved all work");
    assert!(m.refresh_success > 0, "drift-triggered maintenance never healed a member");
    for name in MEMBERS {
        if store.contains(name) {
            store
                .load_for(name, &global)
                .unwrap_or_else(|e| panic!("store unloadable for `{name}` after flood: {e}"));
        }
    }
}
