//! End-to-end integration tests: the full QPIAD pipeline over generated
//! incomplete databases, checked against the ground-truth oracle.

use qpiad::core::baselines::{all_ranked, all_returned};
use qpiad::core::mediator::{flatten_answers, Qpiad, QpiadConfig};
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    DirectSource, Predicate, Relation, SelectQuery, TupleId, Value, WebSource,
};
use qpiad::eval::Oracle;
use qpiad::learn::knowledge::{MiningConfig, SourceStats};

struct Fixture {
    ground: Relation,
    ed: Relation,
    stats: SourceStats,
}

fn fixture(seed: u64) -> Fixture {
    let ground = CarsConfig::default().with_rows(10_000).generate(seed);
    let (ed, _) = corrupt(&ground, &CorruptionConfig::default().with_seed(seed + 1));
    let sample = uniform_sample(&ed, 0.10, seed + 2);
    let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
    Fixture { ground, ed, stats }
}

fn convt_query(ed: &Relation) -> SelectQuery {
    let body = ed.schema().expect_attr("body_style");
    SelectQuery::new(vec![Predicate::eq(body, "Convt")])
}

#[test]
fn answer_sets_partition_cleanly() {
    let f = fixture(1);
    let source = WebSource::new("cars", f.ed.clone());
    let qpiad = Qpiad::new(f.stats.clone(), QpiadConfig::default().with_k(20).with_alpha(1.0));
    let q = convt_query(&f.ed);
    let answers = qpiad.answer(&source, &q).unwrap();

    // Certain answers match; possible answers have exactly one null among
    // constrained attrs and contradict nothing; no tuple appears twice.
    assert!(!answers.certain.is_empty());
    assert!(!answers.possible.is_empty());
    assert!(answers.certain.iter().all(|t| q.matches(t)));
    for a in &answers.possible {
        assert!(q.possibly_matches(&a.tuple));
        assert!(!q.matches(&a.tuple));
    }
    let mut ids: Vec<TupleId> = flatten_answers(&answers).iter().map(|t| t.id()).collect();
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n);
}

#[test]
fn qpiad_beats_all_returned_on_precision() {
    let f = fixture(2);
    let source = WebSource::new("cars", f.ed.clone());
    let direct = DirectSource::new("oracle-access", f.ed.clone());
    let q = convt_query(&f.ed);
    let oracle = Oracle::new(&f.ground, &f.ed);
    let relevant = oracle.relevant_possible(&q);

    let qpiad = Qpiad::new(f.stats.clone(), QpiadConfig::default().with_k(15).with_alpha(1.0));
    let answers = qpiad.answer(&source, &q).unwrap();
    let qpiad_hits = answers
        .possible
        .iter()
        .filter(|a| relevant.contains(&a.tuple.id()))
        .count();
    let qpiad_precision = qpiad_hits as f64 / answers.possible.len().max(1) as f64;

    let returned = all_returned(&direct, &q).unwrap();
    let base_hits = returned
        .iter()
        .filter(|t| relevant.contains(&t.id()))
        .count();
    let base_precision = base_hits as f64 / returned.len().max(1) as f64;

    assert!(
        qpiad_precision > base_precision + 0.2,
        "QPIAD {qpiad_precision:.3} vs AllReturned {base_precision:.3}"
    );
}

#[test]
fn qpiad_matches_all_ranked_quality_at_lower_cost() {
    let f = fixture(3);
    let source = WebSource::new("cars", f.ed.clone());
    let direct = DirectSource::new("oracle-access", f.ed.clone());
    let q = convt_query(&f.ed);
    let oracle = Oracle::new(&f.ground, &f.ed);
    let relevant = oracle.relevant_possible(&q);

    let qpiad = Qpiad::new(f.stats.clone(), QpiadConfig::default().with_k(15).with_alpha(0.0));
    let answers = qpiad.answer(&source, &q).unwrap();
    let k = answers.possible.len().clamp(1, 20);
    let qpiad_top: f64 = answers.possible[..k]
        .iter()
        .filter(|a| relevant.contains(&a.tuple.id()))
        .count() as f64
        / k as f64;

    let ranked = all_ranked(&direct, &q, &f.stats).unwrap();
    let ranked_top: f64 = ranked[..k.min(ranked.len())]
        .iter()
        .filter(|a| relevant.contains(&a.tuple.id()))
        .count() as f64
        / k.min(ranked.len()).max(1) as f64;

    // Quality parity (QPIAD uses the same classifiers)...
    assert!(
        (qpiad_top - ranked_top).abs() < 0.4,
        "top-k precision drifted: QPIAD {qpiad_top:.2} vs AllRanked {ranked_top:.2}"
    );
    // ...but AllRanked needed every null-body tuple transferred.
    let body = f.ed.schema().expect_attr("body_style");
    let null_body = f.ed.tuples().iter().filter(|t| t.value(body).is_null()).count();
    assert_eq!(
        ranked.len(),
        null_body,
        "AllRanked must transfer all null-valued candidates"
    );
}

#[test]
fn certain_answers_never_depend_on_statistics() {
    // Whatever the mining produced, the base set is exactly the source's
    // certain answers.
    let f = fixture(4);
    let source = WebSource::new("cars", f.ed.clone());
    let q = convt_query(&f.ed);
    let qpiad = Qpiad::new(f.stats.clone(), QpiadConfig::default());
    let answers = qpiad.answer(&source, &q).unwrap();
    assert_eq!(answers.certain, f.ed.select(&q));
}

#[test]
fn ranked_confidences_track_ground_truth_frequencies() {
    // Average relevance of high-confidence answers exceeds that of
    // low-confidence ones — the property Figure 9 plots.
    let f = fixture(5);
    let source = WebSource::new("cars", f.ed.clone());
    let q = convt_query(&f.ed);
    let oracle = Oracle::new(&f.ground, &f.ed);
    let relevant = oracle.relevant_possible(&q);
    let qpiad = Qpiad::new(f.stats.clone(), QpiadConfig::default().with_k(40).with_alpha(1.0));
    let answers = qpiad.answer(&source, &q).unwrap();

    let (mut hi_hit, mut hi_n, mut lo_hit, mut lo_n) = (0usize, 0usize, 0usize, 0usize);
    for a in &answers.possible {
        let rel = relevant.contains(&a.tuple.id()) as usize;
        if a.confidence >= 0.75 {
            hi_hit += rel;
            hi_n += 1;
        } else {
            lo_hit += rel;
            lo_n += 1;
        }
    }
    if hi_n >= 5 && lo_n >= 5 {
        let hi = hi_hit as f64 / hi_n as f64;
        let lo = lo_hit as f64 / lo_n as f64;
        assert!(hi >= lo, "high-confidence {hi:.2} < low-confidence {lo:.2}");
    }
}

#[test]
fn mediator_works_on_multi_attribute_range_queries() {
    let f = fixture(6);
    let source = WebSource::new("cars", f.ed.clone());
    let schema = f.ed.schema().clone();
    let q = SelectQuery::new(vec![
        Predicate::eq(schema.expect_attr("body_style"), "Sedan"),
        Predicate::between(schema.expect_attr("price"), 12_000i64, 18_000i64),
    ]);
    let qpiad = Qpiad::new(f.stats.clone(), QpiadConfig::default().with_k(20).with_alpha(1.0));
    let answers = qpiad.answer(&source, &q).unwrap();
    assert!(!answers.certain.is_empty());
    // All ranked possible answers are sound.
    for a in &answers.possible {
        assert!(q.possibly_matches(&a.tuple));
    }
    // At least one possible answer chases a missing price and one a missing
    // body style across the run (both attributes have AFDs).
    let body = schema.expect_attr("body_style");
    let have_body_null = answers.possible.iter().any(|a| a.tuple.value(body).is_null());
    assert!(
        have_body_null || answers.possible.is_empty(),
        "expected body-style possible answers"
    );
}

#[test]
fn empty_result_queries_are_graceful() {
    let f = fixture(7);
    let source = WebSource::new("cars", f.ed.clone());
    let model = f.ed.schema().expect_attr("model");
    let q = SelectQuery::new(vec![Predicate::eq(model, Value::str("DeLorean"))]);
    let qpiad = Qpiad::new(f.stats.clone(), QpiadConfig::default());
    let answers = qpiad.answer(&source, &q).unwrap();
    assert!(answers.certain.is_empty());
    assert!(answers.possible.is_empty());
    assert!(answers.issued.is_empty());
}
