//! The parallel answer path must be invisible: any thread count produces
//! byte-identical answer sequences and identical mined statistics.
//!
//! Each test runs the same computation with the worker pool pinned to 1
//! thread and to 8 threads and compares full result signatures (tuple ids in
//! order, confidence bit patterns, rewritten-query order, AFD sets). The
//! thread override is process-global, so the tests serialize on a mutex and
//! always restore the default before releasing it.

use std::sync::{Arc, Mutex, MutexGuard};

use qpiad::core::network::MediatorNetwork;
use qpiad::core::{par, AnswerSet, PlanCache, Qpiad, QpiadConfig};
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{AutonomousSource, Predicate, Relation, SelectQuery, WebSource};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};
use qpiad::learn::tane::{discover, TaneConfig};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Holds the override lock and resets the pool size when dropped.
struct PinnedPool<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl PinnedPool<'_> {
    fn acquire() -> Self {
        PinnedPool(OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for PinnedPool<'_> {
    fn drop(&mut self) {
        par::set_thread_override(None);
    }
}

fn mined(ed: &Relation, seed: u64) -> SourceStats {
    let sample = uniform_sample(ed, 0.10, seed);
    SourceStats::mine(&sample, ed.len(), &MiningConfig::default())
}

fn cars_fixture() -> (Relation, SourceStats) {
    let ground = CarsConfig::default().with_rows(6_000).generate(61);
    let (ed, _) = corrupt(&ground, &CorruptionConfig::default().with_seed(1));
    let stats = mined(&ed, 2);
    (ed, stats)
}

/// Everything rank-order-sensitive about an answer set, with float bits
/// compared exactly.
fn answer_signature(a: &AnswerSet) -> Vec<String> {
    let mut sig: Vec<String> = Vec::new();
    for t in &a.certain {
        sig.push(format!("certain {:?}", t.id()));
    }
    for r in &a.possible {
        sig.push(format!(
            "possible {:?} conf={:016x} prec={:016x} q={}",
            r.tuple.id(),
            r.confidence.to_bits(),
            r.query_precision.to_bits(),
            r.query_index
        ));
    }
    for t in &a.deferred {
        sig.push(format!("deferred {:?}", t.id()));
    }
    for rq in &a.issued {
        sig.push(format!("issued {:?}", rq.query));
    }
    sig
}

#[test]
fn mediator_answers_identically_at_any_thread_count() {
    let _pin = PinnedPool::acquire();
    let (ed, stats) = cars_fixture();
    let body = ed.schema().expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let source = WebSource::new("cars.com", ed.clone());
        let qpiad = Qpiad::new(stats.clone(), QpiadConfig::default().with_k(10));
        let answer = qpiad.answer(&source, &query).expect("source accepts rewrites");
        assert!(!answer.possible.is_empty(), "fixture must exercise rewriting");
        signatures.push(answer_signature(&answer));
    }
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn cached_plans_replay_identically_at_any_thread_count() {
    let _pin = PinnedPool::acquire();
    let (ed, stats) = cars_fixture();
    let body = ed.schema().expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let source = WebSource::new("cars.com", ed.clone());
        let cache = Arc::new(PlanCache::new());
        let qpiad = Qpiad::new(stats.clone(), QpiadConfig::default().with_k(10))
            .with_plan_cache(Arc::clone(&cache), 0);
        let cold = qpiad.answer(&source, &query).expect("source accepts rewrites");
        let warm = qpiad.answer(&source, &query).expect("source accepts rewrites");
        assert_eq!(source.meter().plan_cache_misses, 1);
        assert_eq!(source.meter().plan_cache_hits, 1);
        assert!(!warm.possible.is_empty(), "fixture must exercise rewriting");
        // Serving from the cache must not change the answer …
        assert_eq!(answer_signature(&cold), answer_signature(&warm));
        signatures.push(answer_signature(&warm));
    }
    // … and a cached-plan run replays byte-identically across thread counts.
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn network_answers_identically_at_any_thread_count() {
    let _pin = PinnedPool::acquire();
    let (ed, stats) = cars_fixture();
    let global = ed.schema().clone();
    let keep: Vec<_> = global
        .attr_ids()
        .filter(|a| global.attr(*a).name() != "body_style")
        .collect();
    let yahoo_local = CarsConfig::default()
        .with_rows(6_000)
        .generate(62)
        .project_to("yahoo_autos", &keep);

    let body = global.expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let cars = WebSource::new("cars.com", ed.clone());
        let yahoo = WebSource::new("yahoo_autos", yahoo_local.clone());
        let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting(&cars, stats.clone())
            .add_deficient(&yahoo);
        let answer = network.answer(&query).expect("network answers");
        assert_eq!(answer.per_source.len(), 2);
        assert!(answer.possible_count() > 0);
        let sig: Vec<String> = answer
            .per_source
            .iter()
            .flat_map(|part| {
                std::iter::once(format!(
                    "source {} via={:?}",
                    part.source, part.via_correlated
                ))
                .chain(part.certain.iter().map(|t| format!("certain {:?}", t.id())))
                .chain(part.possible.iter().map(|r| {
                    format!(
                        "possible {:?} conf={:016x} prec={:016x}",
                        r.tuple.id(),
                        r.confidence.to_bits(),
                        r.query_precision.to_bits()
                    )
                }))
            })
            .collect();
        signatures.push(sig);
    }
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn interned_retrieval_replays_identically_at_any_thread_count() {
    // A query mix that drives every posting-list regime of the interned
    // storage engine: a selective equality (sparse lists — gallop), a broad
    // equality (dense lists — bitset), a range over the numeric dictionary,
    // and a conjunction that intersects across regimes. Answers must replay
    // byte-identically whatever the worker-pool size.
    let _pin = PinnedPool::acquire();
    let (ed, stats) = cars_fixture();
    let schema = ed.schema();
    let body = schema.expect_attr("body_style");
    let model = schema.expect_attr("model");
    let year = schema.expect_attr("year");
    let price = schema.expect_attr("price");
    let queries = [
        SelectQuery::new(vec![Predicate::eq(model, "Solara")]),
        SelectQuery::new(vec![Predicate::eq(body, "Sedan")]),
        SelectQuery::new(vec![Predicate::between(price, 10_000i64, 25_000i64)]),
        SelectQuery::new(vec![
            Predicate::eq(body, "Coupe"),
            Predicate::between(year, 2000i64, 2004i64),
        ]),
    ];

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let source = WebSource::new("cars.com", ed.clone());
        let qpiad = Qpiad::new(stats.clone(), QpiadConfig::default().with_k(10));
        let mut sig: Vec<String> = Vec::new();
        for query in &queries {
            let answer = qpiad.answer(&source, query).expect("source accepts rewrites");
            sig.push(format!("{query:?}"));
            sig.extend(answer_signature(&answer));
        }
        assert!(
            sig.iter().any(|s| s.starts_with("possible")),
            "fixture must exercise rewriting"
        );
        signatures.push(sig);
    }
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn tane_discovers_identical_afds_at_any_thread_count() {
    let _pin = PinnedPool::acquire();
    let ground = CarsConfig::default().with_rows(4_000).generate(61);
    let (ed, _) = corrupt(&ground, &CorruptionConfig::default().with_seed(1));
    let sample = uniform_sample(&ed, 0.20, 2);

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let result = discover(&sample, &TaneConfig::default());
        assert!(!result.afds.is_empty());
        // akey_conf is a HashMap: project it to sorted order before
        // comparing, its Debug iteration order is not meaningful.
        let mut akey_conf: Vec<(Vec<qpiad::db::AttrId>, u64)> = result
            .akey_conf
            .iter()
            .map(|(k, v)| (k.clone(), v.to_bits()))
            .collect();
        akey_conf.sort();
        signatures.push(format!("{:?} {:?} {:?}", result.afds, result.akeys, akey_conf));
    }
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn mining_is_identical_at_any_thread_count() {
    let _pin = PinnedPool::acquire();
    let ground = CarsConfig::default().with_rows(4_000).generate(61);
    let (ed, _) = corrupt(&ground, &CorruptionConfig::default().with_seed(1));
    let sample = uniform_sample(&ed, 0.20, 2);

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
        // AfdSet is keyed by a HashMap internally: read it out per attribute
        // in schema order so the signature is iteration-order independent.
        let per_attr: Vec<String> = sample
            .schema()
            .attr_ids()
            .map(|a| format!("{a:?}: {:?}", stats.afds().for_attr(a)))
            .collect();
        signatures.push(format!("{per_attr:?} {:?}", stats.akeys()));
    }
    assert_eq!(signatures[0], signatures[1]);
}
