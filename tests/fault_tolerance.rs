//! Fault-tolerant mediation: flaky autonomous sources must not poison the
//! network answer.
//!
//! Each scenario wraps sources in [`FaultInjector`]s with seeded,
//! content-keyed fault plans and checks three properties:
//!
//! 1. **Convergence** — transient failures that resolve within the retry
//!    budget leave the answer byte-identical to a healthy run.
//! 2. **Isolation** — a permanently-down member contributes a recorded
//!    [`SourceOutcome::Failed`] while every other member's contribution is
//!    byte-identical to the healthy run (the pre-fault-tolerance mediator
//!    aborted the whole `answer` call here).
//! 3. **Determinism** — fault decisions are keyed on query content, not
//!    call order, so every scenario replays identically at 1 and 8 worker
//!    threads (the same discipline `QPIAD_THREADS` enforces elsewhere).
//!
//! On top sits the **availability layer**: per-source circuit breakers
//! (`HealthRegistry`), deadline/attempt budgets (`QueryBudget`), hedged
//! queries, and response quarantine. Those scenarios check a fourth
//! property:
//!
//! 4. **Bounded damage** — a permanently-down source costs at most
//!    `failure_threshold` probe attempts across an entire multi-rewrite
//!    query, and every breaker/hedge/quarantine decision replays
//!    byte-identically at 1 and 8 worker threads.
//!
//! The thread override is process-global; tests serialize on a mutex and
//! restore the default on drop, mirroring `parallel_determinism.rs`.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use qpiad::core::network::{MediatorNetwork, NetworkAnswer, SourceOutcome};
use qpiad::core::{par, QpiadConfig};
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    health, AttrId, AutonomousSource, BreakerConfig, BreakerState, FaultInjector, FaultPlan,
    HealthRegistry, Predicate, QueryBudget, Relation, RetryPolicy, Schema, SelectQuery,
    SourceError, SourceMeter, Tuple, WebSource,
};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};
use qpiad::learn::persist::StatsSnapshot;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Holds the override lock and resets the pool size when dropped.
struct PinnedPool<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl PinnedPool<'_> {
    fn acquire() -> Self {
        PinnedPool(OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for PinnedPool<'_> {
    fn drop(&mut self) {
        par::set_thread_override(None);
    }
}

struct Fixture {
    /// cars.com-like: full schema, incomplete, mined statistics.
    cars_ed: Relation,
    cars_stats: SourceStats,
    /// yahoo_autos-like: local schema without body_style.
    yahoo_local: Relation,
    /// auctions-like: full schema, no statistics (certain answers only).
    auctions_ed: Relation,
}

fn fixture() -> Fixture {
    let cars_gd = CarsConfig::default().with_rows(5_000).generate(91);
    let global = cars_gd.schema().clone();
    let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
    let cars_stats = SourceStats::mine(
        &uniform_sample(&cars_ed, 0.10, 2),
        cars_ed.len(),
        &MiningConfig::default(),
    );

    let keep: Vec<_> = global
        .attr_ids()
        .filter(|a| global.attr(*a).name() != "body_style")
        .collect();
    let yahoo_local = CarsConfig::default()
        .with_rows(5_000)
        .generate(92)
        .project_to("yahoo_autos", &keep);

    let auctions_gd = CarsConfig::default().with_rows(5_000).generate(93);
    let (auctions_ed, _) = corrupt(&auctions_gd, &CorruptionConfig::default().with_seed(3));
    let auctions_ed = auctions_ed.project_to("auctions", &global.attr_ids().collect::<Vec<_>>());

    Fixture { cars_ed, cars_stats, yahoo_local, auctions_ed }
}

/// Everything order- and rank-sensitive about a network answer, with float
/// bits compared exactly, one signature per member. Outcomes (including
/// degradation accounting) are part of the signature.
fn per_part(answer: &NetworkAnswer) -> Vec<Vec<String>> {
    answer
        .per_source
        .iter()
        .map(|part| {
            std::iter::once(format!(
                "source {} via={:?} outcome={:?}",
                part.source, part.via_correlated, part.outcome
            ))
            .chain(part.certain.iter().map(|t| format!("certain {:?}", t.id())))
            .chain(part.possible.iter().map(|r| {
                format!(
                    "possible {:?} conf={:016x} prec={:016x} q={}",
                    r.tuple.id(),
                    r.confidence.to_bits(),
                    r.query_precision.to_bits(),
                    r.query_index
                )
            }))
            .collect()
        })
        .collect()
}

fn signature(answer: &NetworkAnswer) -> Vec<String> {
    per_part(answer).into_iter().flatten().collect()
}

/// Answers `query` over (cars + yahoo + auctions), with each source first
/// passed through `wrap` (identity plans make a healthy network).
fn run_network(
    f: &Fixture,
    query: &SelectQuery,
    retry: RetryPolicy,
    plans: [FaultPlan; 3],
) -> (NetworkAnswer, [qpiad::db::SourceMeter; 3]) {
    let global = f.cars_ed.schema().clone();
    let cars = FaultInjector::new(WebSource::new("cars.com", f.cars_ed.clone()), plans[0]);
    let yahoo = FaultInjector::new(WebSource::new("yahoo_autos", f.yahoo_local.clone()), plans[1]);
    let auctions = FaultInjector::new(WebSource::new("auctions", f.auctions_ed.clone()), plans[2]);
    let network = MediatorNetwork::new(
        global,
        QpiadConfig::default().with_k(8).with_retry(retry),
    )
    .add_supporting(&cars, f.cars_stats.clone())
    .add_deficient(&yahoo)
    .add_deficient(&auctions);
    let answer = network.answer(query).expect("mediation never aborts");
    (answer, [cars.meter(), yahoo.meter(), auctions.meter()])
}

#[test]
fn transient_failures_with_retries_converge_to_the_healthy_answer() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let body = f.cars_ed.schema().expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // Every distinct query fails its first two attempts on every source; a
    // three-attempt policy absorbs all of it.
    let flaky = FaultPlan::healthy().with_fail_first_attempts(2);
    let retry = RetryPolicy::default().with_max_attempts(3);

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let (healthy, healthy_meters) =
            run_network(&f, &query, RetryPolicy::none(), [FaultPlan::healthy(); 3]);
        assert!(healthy.fully_healthy());
        assert_eq!(healthy_meters[0].retries, 0);

        let (faulted, meters) = run_network(&f, &query, retry, [flaky; 3]);
        assert!(
            faulted.fully_healthy(),
            "retries must absorb the transient outages: {:?}",
            faulted.failed_sources()
        );
        assert_eq!(signature(&healthy), signature(&faulted));
        // Every member was retried and every failed attempt was metered.
        for m in &meters {
            assert!(m.retries > 0, "retries went unmetered: {m:?}");
            assert_eq!(m.failures, m.retries, "each absorbed failure costs one retry");
            assert_eq!(m.degraded, 0);
        }
        signatures.push(signature(&faulted));
    }
    assert_eq!(signatures[0], signatures[1], "fault decisions must be content-keyed");
}

#[test]
fn permanent_outage_is_isolated_to_the_failed_member() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    // Query on an attribute every source supports: each member answers
    // directly, so the downed member's base retrieval fails outright. This
    // is the scenario the pre-fault-tolerance mediator turned into an `Err`
    // for the *whole* network.
    let model = f.cars_ed.schema().expect_attr("model");
    let query = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);

    let down = FaultPlan::healthy().with_permanent_outage();

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let (healthy, _) =
            run_network(&f, &query, RetryPolicy::none(), [FaultPlan::healthy(); 3]);
        assert!(healthy.fully_healthy());
        assert!(healthy.certain_count() > 0);

        let (faulted, meters) = run_network(
            &f,
            &query,
            RetryPolicy::default().with_max_attempts(3),
            [FaultPlan::healthy(), FaultPlan::healthy(), down],
        );

        // The network still answers, with the outage recorded...
        let failed = faulted.failed_sources();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, "auctions");
        assert!(matches!(failed[0].1, SourceError::Unavailable { retryable: false }));
        assert!(faulted.per_source[2].outcome.is_failed());
        assert!(faulted.per_source[2].certain.is_empty());

        // ...and the healthy members' contributions are byte-identical to
        // the healthy run's.
        assert_eq!(per_part(&healthy)[..2], per_part(&faulted)[..2]);
        for part in &faulted.per_source[..2] {
            assert!(part.outcome.is_healthy());
        }
        assert_eq!(
            faulted.certain_count(),
            healthy.certain_count() - healthy.per_source[2].certain.len()
        );

        // A non-retryable outage is metered as one failure, zero retries.
        assert_eq!(meters[2].failures, 1);
        assert_eq!(meters[2].retries, 0);
        assert_eq!(meters[2].degraded, 1);
        signatures.push(signature(&faulted));
    }
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn failed_rewrites_degrade_the_member_and_keep_its_certain_answers() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let schema = f.cars_ed.schema().clone();
    let body = schema.expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // Knock out every rewritten query that constrains the determining-set
    // attribute while the base query (on body_style) still succeeds.
    let dtr = f
        .cars_stats
        .determining_set(body)
        .expect("body_style has an AFD")
        .to_vec();
    let target = dtr[0];

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let (healthy, _) =
            run_network(&f, &query, RetryPolicy::none(), [FaultPlan::healthy(); 3]);
        let (faulted, meters) = run_network(
            &f,
            &query,
            RetryPolicy::default().with_max_attempts(2),
            [FaultPlan::healthy().with_fail_on_attr(target), FaultPlan::healthy(), FaultPlan::healthy()],
        );

        // cars.com is degraded, not failed: its certain answers are intact
        // and the dropped F-measure mass is accounted.
        assert!(!healthy.per_source[0].possible.is_empty());
        let part = &faulted.per_source[0];
        let SourceOutcome::Degraded(d) = &part.outcome else {
            panic!("expected a degraded outcome, got {:?}", part.outcome);
        };
        assert!(d.dropped_rewrites > 0);
        assert!(d.dropped_fmeasure > 0.0);
        assert!(matches!(d.last_error, Some(SourceError::Unavailable { retryable: true })));
        assert_eq!(
            part.certain.iter().map(|t| t.id()).collect::<Vec<_>>(),
            healthy.per_source[0].certain.iter().map(|t| t.id()).collect::<Vec<_>>(),
        );
        assert!(part.possible.len() < healthy.per_source[0].possible.len());
        assert_eq!(faulted.degraded_count(), 1);
        assert!(!faulted.fully_healthy());
        assert!(faulted.failed_sources().is_empty());

        // The degradation and the exhausted retries are metered.
        assert_eq!(meters[0].degraded, 1);
        assert!(meters[0].failures > 0);
        assert!(meters[0].retries > 0, "retryable faults must be retried before dropping");

        // The other members are untouched.
        assert_eq!(per_part(&healthy)[1..], per_part(&faulted)[1..]);
        signatures.push(signature(&faulted));
    }
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn retry_exhaustion_fails_the_member_rather_than_the_network() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let model = f.cars_ed.schema().expect_attr("model");
    let query = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);

    // Five consecutive outages against a two-attempt policy: the member
    // fails; the same plan under a six-attempt policy converges.
    let flaky = FaultPlan::healthy().with_fail_first_attempts(5);

    let (exhausted, _) = run_network(
        &f,
        &query,
        RetryPolicy::default().with_max_attempts(2),
        [FaultPlan::healthy(), FaultPlan::healthy(), flaky],
    );
    assert!(exhausted.per_source[2].outcome.is_failed());
    assert!(exhausted.per_source[0].outcome.is_healthy());

    let (recovered, meters) = run_network(
        &f,
        &query,
        RetryPolicy::default().with_max_attempts(6),
        [FaultPlan::healthy(), FaultPlan::healthy(), flaky],
    );
    assert!(recovered.fully_healthy());
    assert_eq!(meters[2].retries, 5);
    assert!(!recovered.per_source[2].certain.is_empty());
}

#[test]
fn hashed_fault_decisions_replay_identically_across_thread_counts() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let body = f.cars_ed.schema().expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "SUV")]);

    // Random-rate faults: whatever mixture of recoveries, degradations and
    // failures the seed produces must replay identically at any thread
    // count, because decisions hash (seed, query content, attempt) rather
    // than call order. cars.com stays healthy so the one query two members
    // legitimately share (the correlated base retrieval) cannot split its
    // injected-failure budget across callers in interleaving-dependent ways.
    let noisy = FaultPlan::healthy().with_seed(0xfau64).with_transient_rate(0.35);
    let retry = RetryPolicy::default().with_max_attempts(3).with_jitter_seed(7);

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let (answer, meters) =
            run_network(&f, &query, retry, [FaultPlan::healthy(), noisy, noisy]);
        signatures.push((signature(&answer), meters.map(|m| (m.retries, m.failures, m.degraded))));
    }
    assert_eq!(signatures[0], signatures[1]);
}

// ---------------------------------------------------------------------------
// Availability layer: breakers, budgets, hedging, quarantine.
// ---------------------------------------------------------------------------

/// The acceptance property of the breaker: a permanently-down target costs
/// at most `failure_threshold` probe attempts across an *entire*
/// multi-rewrite correlated plan (k = 8 here), the remaining rewrites are
/// charged to [`Degradation::breaker_skips`], and the very next pass skips
/// the member before a single query is built.
#[test]
fn breaker_caps_probe_attempts_against_a_downed_target() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let body = global.expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    let mut runs = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let registry =
            Arc::new(HealthRegistry::new(BreakerConfig::default().with_failure_threshold(3)));
        let cars =
            FaultInjector::new(WebSource::new("cars.com", f.cars_ed.clone()), FaultPlan::healthy());
        let yahoo = FaultInjector::new(
            WebSource::new("yahoo_autos", f.yahoo_local.clone()),
            FaultPlan::healthy().with_permanent_outage(),
        );
        let network = MediatorNetwork::new(
            global.clone(),
            QpiadConfig::default()
                .with_k(8)
                .with_retry(RetryPolicy::default().with_max_attempts(3)),
        )
        .with_health(registry.clone())
        .add_supporting(&cars, f.cars_stats.clone())
        .add_deficient(&yahoo);

        let first = network.answer(&query).expect("mediation never aborts");

        // Yahoo is served through the correlated plan: 8 ranked rewrites
        // were headed its way, but the breaker admitted exactly 3 probes.
        assert_eq!(yahoo.meter().failures, 3, "breaker must cap probes at failure_threshold");
        assert_eq!(yahoo.meter().retries, 0, "a non-retryable outage is never retried");
        let SourceOutcome::Degraded(d) = &first.per_source[1].outcome else {
            panic!("expected a degraded outcome, got {:?}", first.per_source[1].outcome);
        };
        assert_eq!(d.dropped_rewrites, 3, "each admitted probe is a recorded drop");
        assert!(d.breaker_skips > 0, "the rest of the plan must be breaker-skipped");
        assert!(d.dropped_fmeasure > 0.0);
        assert_eq!(registry.state("yahoo_autos"), BreakerState::Open);
        // The healthy member is untouched.
        assert!(first.per_source[0].outcome.is_healthy());
        assert!(!first.per_source[0].possible.is_empty());

        // Second pass: the Open member is skipped up front — no probe, no
        // new failures, one metered breaker skip.
        let second = network.answer(&query).expect("mediation never aborts");
        assert_eq!(yahoo.meter().failures, 3);
        assert_eq!(yahoo.meter().breaker_skips, 1);
        let SourceOutcome::Degraded(d2) = &second.per_source[1].outcome else {
            panic!("expected a degraded outcome, got {:?}", second.per_source[1].outcome);
        };
        assert_eq!(d2.breaker_skips, 1);
        assert!(matches!(d2.last_error, Some(SourceError::CircuitOpen)));
        runs.push((signature(&first), signature(&second)));
    }
    assert_eq!(runs[0], runs[1], "breaker decisions must replay across thread counts");
}

/// The full breaker life cycle over repeated passes: trip on the first
/// failure (threshold 1), sit out the cooldown with up-front skips, fail a
/// half-open probe (re-open), sit out another cooldown, then recover
/// through a clean probe.
#[test]
fn open_breaker_skips_up_front_and_recovers_through_half_open_probes() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let model = global.expect_attr("model");
    let query = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);

    let mut per_thread = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let registry =
            Arc::new(HealthRegistry::new(BreakerConfig::default().with_failure_threshold(1)));
        let cars =
            FaultInjector::new(WebSource::new("cars.com", f.cars_ed.clone()), FaultPlan::healthy());
        // Certain-answers-only member whose first two attempts at the query
        // fail; pass-level probing (not wall time) drives recovery.
        let auctions = FaultInjector::new(
            WebSource::new("auctions", f.auctions_ed.clone()),
            FaultPlan::healthy().with_fail_first_attempts(2),
        );
        let network = MediatorNetwork::new(
            global.clone(),
            QpiadConfig::default().with_k(8).with_retry(RetryPolicy::none()),
        )
        .with_health(registry.clone())
        .add_supporting(&cars, f.cars_stats.clone())
        .add_deficient(&auctions);

        let mut passes = Vec::new();
        for _ in 0..7 {
            passes.push(network.answer(&query).expect("mediation never aborts"));
        }
        let outcomes: Vec<_> = passes.iter().map(|p| &p.per_source[1].outcome).collect();
        // Pass 1: the probe fails, the breaker opens.
        assert!(outcomes[0].is_failed());
        // Passes 2-3: cooldown; skipped before any query is built.
        for p in [1, 2] {
            let SourceOutcome::Degraded(d) = outcomes[p] else {
                panic!("pass {p} should be breaker-skipped, got {:?}", outcomes[p]);
            };
            assert_eq!(d.breaker_skips, 1);
        }
        // Pass 4: half-open probe fails (second injected failure) — re-open.
        assert!(outcomes[3].is_failed());
        // Passes 5-6: second cooldown.
        assert!(outcomes[4].is_degraded() && outcomes[5].is_degraded());
        // Pass 7: the probe finally succeeds and the member serves again.
        assert!(outcomes[6].is_healthy(), "got {:?}", outcomes[6]);
        assert!(!passes[6].per_source[1].certain.is_empty());
        assert_eq!(registry.state("auctions"), BreakerState::Closed);

        let meter = auctions.meter();
        assert_eq!(meter.failures, 2, "exactly the two injected failures reached the source");
        assert_eq!(meter.breaker_skips, 4, "both cooldowns cost two skipped passes each");
        per_thread.push(passes.iter().map(signature).collect::<Vec<_>>());
    }
    assert_eq!(per_thread[0], per_thread[1]);
}

/// Hedged queries: once a member's metered latency puts it in the slowest
/// decile, its queries are doubled to the best schema-aligned supporting
/// partner, and a failing primary is covered by the partner's response.
#[test]
fn slow_member_hedges_rewrites_to_an_aligned_partner() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let body = global.expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // A second full-schema supporting source with its own statistics; its
    // schema aligns positionally with cars.com's, making it hedgeable.
    let carsdirect_gd = CarsConfig::default().with_rows(5_000).generate(94);
    let (carsdirect_ed, _) = corrupt(&carsdirect_gd, &CorruptionConfig::default().with_seed(4));
    let carsdirect_stats = SourceStats::mine(
        &uniform_sample(&carsdirect_ed, 0.10, 5),
        carsdirect_ed.len(),
        &MiningConfig::default(),
    );
    // cars.com is slow (injected latency) AND fails every rewrite that
    // constrains body_style's first determining attribute.
    let dtr = f.cars_stats.determining_set(body).expect("body_style has an AFD")[0];

    let mut per_thread = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let cars = FaultInjector::new(
            WebSource::new("cars.com", f.cars_ed.clone()),
            FaultPlan::healthy().with_latency(Duration::from_millis(2)).with_fail_on_attr(dtr),
        );
        let carsdirect = FaultInjector::new(
            WebSource::new("carsdirect", carsdirect_ed.clone()),
            FaultPlan::healthy(),
        );
        let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting(&cars, f.cars_stats.clone())
            .add_supporting(&carsdirect, carsdirect_stats.clone());

        // Pass 1: no latency history yet, so no hedging — the targeted
        // rewrites are dropped and the member degrades.
        let first = network.answer(&query).expect("mediation never aborts");
        assert_eq!(cars.meter().hedges, 0);
        let SourceOutcome::Degraded(d) = &first.per_source[0].outcome else {
            panic!("expected a degraded first pass, got {:?}", first.per_source[0].outcome);
        };
        assert!(d.dropped_rewrites > 0);

        // Pass 2: cars.com's metered latency marks it slow; its queries are
        // hedged to carsdirect and the injected failures are covered.
        let second = network.answer(&query).expect("mediation never aborts");
        assert!(cars.meter().hedges > 0, "failing primary must be covered by the partner");
        let part = &second.per_source[0];
        let dropped = match &part.outcome {
            SourceOutcome::Degraded(d) => d.dropped_rewrites,
            SourceOutcome::Healthy => 0,
            other => panic!("unexpected outcome {other:?}"),
        };
        assert_eq!(dropped, 0, "every failing rewrite is served by the hedge partner");
        assert!(!part.possible.is_empty());
        per_thread.push((signature(&first), signature(&second), cars.meter().hedges));
    }
    assert_eq!(per_thread[0], per_thread[1], "hedge decisions must replay across thread counts");
}

/// A source whose responses drift from its advertised contract: it appends
/// tuples that do not satisfy the issued query (think a result page that
/// ignores a form field). The validator must quarantine them — and repeated
/// dirty responses must trip the breaker like failures do.
struct DriftSource {
    inner: WebSource,
    noise: Vec<Tuple>,
}

impl AutonomousSource for DriftSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn supports(&self, attr: AttrId) -> bool {
        self.inner.supports(attr)
    }

    fn allows_null_binding(&self) -> bool {
        self.inner.allows_null_binding()
    }

    fn query(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError> {
        let mut tuples = self.inner.query(q)?;
        tuples.extend(self.noise.iter().cloned());
        Ok(tuples)
    }

    fn meter(&self) -> SourceMeter {
        self.inner.meter()
    }

    fn reset_meter(&self) {
        self.inner.reset_meter();
    }

    fn note_quarantined(&self, n: usize) {
        self.inner.note_quarantined(n);
    }

    fn note_breaker_skip(&self) {
        self.inner.note_breaker_skip();
    }

    fn note_degraded(&self) {
        self.inner.note_degraded();
    }
}

#[test]
fn drifting_responses_are_quarantined_and_trip_the_breaker() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let model = global.expect_attr("model");
    let query = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);

    // Two tuples that cannot satisfy `model = Civic`.
    let noise: Vec<Tuple> = f
        .auctions_ed
        .tuples()
        .iter()
        .filter(|t| t.value(model) != &qpiad::db::Value::str("Civic"))
        .take(2)
        .cloned()
        .collect();
    assert_eq!(noise.len(), 2);

    let mut per_thread = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let registry =
            Arc::new(HealthRegistry::new(BreakerConfig::default().with_failure_threshold(1)));
        let drifty = DriftSource {
            inner: WebSource::new("auctions", f.auctions_ed.clone()),
            noise: noise.clone(),
        };
        let network = MediatorNetwork::new(global.clone(), QpiadConfig::default())
            .with_health(registry.clone())
            .add_deficient(&drifty);

        // Pass 1: the clean answers are kept, the drifted tuples are
        // quarantined, and the dirty response counts as a breaker failure.
        let first = network.answer(&query).expect("mediation never aborts");
        let SourceOutcome::Degraded(d) = &first.per_source[0].outcome else {
            panic!("expected a degraded outcome, got {:?}", first.per_source[0].outcome);
        };
        assert_eq!(d.quarantined, 2);
        assert!(!first.per_source[0].certain.is_empty(), "clean tuples must be kept");
        for t in &first.per_source[0].certain {
            assert_eq!(t.value(model), &qpiad::db::Value::str("Civic"));
        }
        assert_eq!(drifty.meter().quarantined, 2);
        assert_eq!(registry.state("auctions"), BreakerState::Open);

        // Pass 2: the member is skipped before the drift can recur.
        let second = network.answer(&query).expect("mediation never aborts");
        let SourceOutcome::Degraded(d2) = &second.per_source[0].outcome else {
            panic!("expected a breaker skip, got {:?}", second.per_source[0].outcome);
        };
        assert_eq!(d2.breaker_skips, 1);
        assert_eq!(drifty.meter().quarantined, 2, "no new tuples reached validation");
        per_thread.push((signature(&first), signature(&second)));
    }
    assert_eq!(per_thread[0], per_thread[1]);
}

/// A query budget truncates the rewrite plan deterministically: the base
/// query and the best-ranked rewrites run, the rest are budget-skipped, and
/// certain answers are never sacrificed.
#[test]
fn query_budget_truncates_the_plan_and_degrades_gracefully() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let body = global.expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    let mut per_thread = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let cars =
            FaultInjector::new(WebSource::new("cars.com", f.cars_ed.clone()), FaultPlan::healthy());
        let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting(&cars, f.cars_stats.clone());

        let full = network.answer(&query).expect("mediation never aborts");
        assert!(full.fully_healthy());

        // Four single-attempt admissions: the base query plus the top three
        // rewrites; everything below the cut is budget-skipped.
        let capped = network
            .answer_budgeted(&query, QueryBudget::unlimited().with_max_attempts(4))
            .expect("mediation never aborts");
        let part = &capped.per_source[0];
        let SourceOutcome::Degraded(d) = &part.outcome else {
            panic!("expected a degraded outcome, got {:?}", part.outcome);
        };
        assert!(d.budget_skips > 0, "the plan must be truncated: {d:?}");
        assert!(d.dropped_fmeasure > 0.0);
        assert_eq!(d.dropped_rewrites, 0, "nothing failed — skipped is not dropped");
        assert!(matches!(d.last_error, Some(SourceError::BudgetExhausted)));
        // Certain answers always survive the budget; possible answers are a
        // subset of the unbudgeted run's.
        assert_eq!(
            part.certain.iter().map(|t| t.id()).collect::<Vec<_>>(),
            full.per_source[0].certain.iter().map(|t| t.id()).collect::<Vec<_>>(),
        );
        assert!(part.possible.len() < full.per_source[0].possible.len());
        let full_ids: std::collections::HashSet<_> =
            full.per_source[0].possible.iter().map(|r| r.tuple.id()).collect();
        assert!(part.possible.iter().all(|r| full_ids.contains(&r.tuple.id())));
        per_thread.push((signature(&full), signature(&capped)));
    }
    assert_eq!(per_thread[0], per_thread[1]);
}

/// Stale-knowledge fallback: when a supporting source cannot be mined
/// (down at mining time, or its breaker is already open), a persisted
/// snapshot serves instead and every answer is tagged `stale_knowledge`.
#[test]
fn snapshot_statistics_serve_when_mining_is_blocked() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let body = global.expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    let snapshot = StatsSnapshot::capture(&f.cars_stats, &MiningConfig::default());

    let registry =
        Arc::new(HealthRegistry::new(BreakerConfig::default().with_failure_threshold(1)));
    let cars = WebSource::new("cars.com", f.cars_ed.clone());

    // Mining fails outright: the failure is recorded against the breaker
    // and the snapshot steps in.
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_health(registry.clone())
        .add_supporting_or_stale(
            &cars,
            |_| Err(SourceError::Unavailable { retryable: false }),
            Some(&snapshot),
        )
        .expect("snapshot fallback must engage");
    assert_eq!(registry.state("cars.com"), BreakerState::Open);

    // The member still answers (restored statistics drive the rewrites) but
    // every outcome is tagged stale. Its breaker being open does NOT gate
    // retrieval here: knowledge mining and live queries are separate
    // concerns, and the registry was told only about the mining failure —
    // after the cooldown the next pass half-opens it.
    registry.begin_pass();
    registry.begin_pass();
    registry.begin_pass();
    let answer = network.answer(&query).expect("mediation never aborts");
    let part = &answer.per_source[0];
    let SourceOutcome::Degraded(d) = &part.outcome else {
        panic!("expected a stale-tagged outcome, got {:?}", part.outcome);
    };
    assert!(d.stale_knowledge);
    assert!(!part.certain.is_empty());
    assert!(!part.possible.is_empty());

    // Without a snapshot the mining failure propagates.
    let err = MediatorNetwork::new(global.clone(), QpiadConfig::default())
        .add_supporting_or_stale(
            &cars,
            |_| Err(SourceError::Unavailable { retryable: false }),
            None,
        )
        .err()
        .expect("no fallback, no member");
    assert!(matches!(err, SourceError::Unavailable { retryable: false }));

    // A breaker already open at registration skips mining entirely.
    let registry2 =
        Arc::new(HealthRegistry::new(BreakerConfig::default().with_failure_threshold(1)));
    registry2.begin_pass();
    registry2.absorb("cars.com", &[qpiad::db::Observation::Failure]);
    assert_eq!(registry2.state("cars.com"), BreakerState::Open);
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default())
        .with_health(registry2)
        .add_supporting_or_stale(
            &cars,
            |_| panic!("mining must not be attempted against an open breaker"),
            Some(&snapshot),
        )
        .expect("snapshot fallback must engage");
    assert_eq!(network.len(), 1);
}

/// Retry backoff and injected latency ride the logical clock when it is
/// enabled: a plan whose cumulative backoff would block for many wall-clock
/// seconds completes almost instantly, with the wait accounted on the
/// logical counter instead.
#[test]
fn retry_backoff_rides_the_logical_clock() {
    let _pin = PinnedPool::acquire();
    /// Re-arms real time even if an assertion fails.
    struct WallClock;
    impl Drop for WallClock {
        fn drop(&mut self) {
            health::set_logical_time(false);
        }
    }
    let _wall = WallClock;
    health::set_logical_time(true);

    let f = fixture();
    let body = f.cars_ed.schema().expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // Every query fails twice; each recovery costs two backoffs of 250ms+
    // (capped at 1s). Dozens of queries cross the network, so real sleeping
    // would take >10s of wall time.
    let flaky = FaultPlan::healthy().with_fail_first_attempts(2);
    let retry = RetryPolicy::default()
        .with_max_attempts(3)
        .with_backoff(Duration::from_millis(250), Duration::from_secs(1));

    let started = Instant::now();
    let (answer, meters) = run_network(&f, &query, retry, [flaky; 3]);
    let wall = started.elapsed();
    let logical = Duration::from_nanos(health::logical_nanos());

    assert!(answer.fully_healthy(), "retries must absorb the flakiness");
    assert!(meters.iter().all(|m| m.retries > 0));
    assert!(
        logical >= Duration::from_millis(500),
        "backoff must be charged to the logical clock, got {logical:?}"
    );
    assert!(
        wall < logical,
        "the mediator must not sleep for real: wall {wall:?} vs logical {logical:?}"
    );
}
