//! Fault-tolerant mediation: flaky autonomous sources must not poison the
//! network answer.
//!
//! Each scenario wraps sources in [`FaultInjector`]s with seeded,
//! content-keyed fault plans and checks three properties:
//!
//! 1. **Convergence** — transient failures that resolve within the retry
//!    budget leave the answer byte-identical to a healthy run.
//! 2. **Isolation** — a permanently-down member contributes a recorded
//!    [`SourceOutcome::Failed`] while every other member's contribution is
//!    byte-identical to the healthy run (the pre-fault-tolerance mediator
//!    aborted the whole `answer` call here).
//! 3. **Determinism** — fault decisions are keyed on query content, not
//!    call order, so every scenario replays identically at 1 and 8 worker
//!    threads (the same discipline `QPIAD_THREADS` enforces elsewhere).
//!
//! The thread override is process-global; tests serialize on a mutex and
//! restore the default on drop, mirroring `parallel_determinism.rs`.

use std::sync::{Mutex, MutexGuard};

use qpiad::core::network::{MediatorNetwork, NetworkAnswer, SourceOutcome};
use qpiad::core::{par, QpiadConfig};
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    AutonomousSource, FaultInjector, FaultPlan, Predicate, Relation, RetryPolicy, SelectQuery,
    SourceError, WebSource,
};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Holds the override lock and resets the pool size when dropped.
struct PinnedPool<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl PinnedPool<'_> {
    fn acquire() -> Self {
        PinnedPool(OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for PinnedPool<'_> {
    fn drop(&mut self) {
        par::set_thread_override(None);
    }
}

struct Fixture {
    /// cars.com-like: full schema, incomplete, mined statistics.
    cars_ed: Relation,
    cars_stats: SourceStats,
    /// yahoo_autos-like: local schema without body_style.
    yahoo_local: Relation,
    /// auctions-like: full schema, no statistics (certain answers only).
    auctions_ed: Relation,
}

fn fixture() -> Fixture {
    let cars_gd = CarsConfig::default().with_rows(5_000).generate(91);
    let global = cars_gd.schema().clone();
    let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
    let cars_stats = SourceStats::mine(
        &uniform_sample(&cars_ed, 0.10, 2),
        cars_ed.len(),
        &MiningConfig::default(),
    );

    let keep: Vec<_> = global
        .attr_ids()
        .filter(|a| global.attr(*a).name() != "body_style")
        .collect();
    let yahoo_local = CarsConfig::default()
        .with_rows(5_000)
        .generate(92)
        .project_to("yahoo_autos", &keep);

    let auctions_gd = CarsConfig::default().with_rows(5_000).generate(93);
    let (auctions_ed, _) = corrupt(&auctions_gd, &CorruptionConfig::default().with_seed(3));
    let auctions_ed = auctions_ed.project_to("auctions", &global.attr_ids().collect::<Vec<_>>());

    Fixture { cars_ed, cars_stats, yahoo_local, auctions_ed }
}

/// Everything order- and rank-sensitive about a network answer, with float
/// bits compared exactly, one signature per member. Outcomes (including
/// degradation accounting) are part of the signature.
fn per_part(answer: &NetworkAnswer) -> Vec<Vec<String>> {
    answer
        .per_source
        .iter()
        .map(|part| {
            std::iter::once(format!(
                "source {} via={:?} outcome={:?}",
                part.source, part.via_correlated, part.outcome
            ))
            .chain(part.certain.iter().map(|t| format!("certain {:?}", t.id())))
            .chain(part.possible.iter().map(|r| {
                format!(
                    "possible {:?} conf={:016x} prec={:016x} q={}",
                    r.tuple.id(),
                    r.confidence.to_bits(),
                    r.query_precision.to_bits(),
                    r.query_index
                )
            }))
            .collect()
        })
        .collect()
}

fn signature(answer: &NetworkAnswer) -> Vec<String> {
    per_part(answer).into_iter().flatten().collect()
}

/// Answers `query` over (cars + yahoo + auctions), with each source first
/// passed through `wrap` (identity plans make a healthy network).
fn run_network(
    f: &Fixture,
    query: &SelectQuery,
    retry: RetryPolicy,
    plans: [FaultPlan; 3],
) -> (NetworkAnswer, [qpiad::db::SourceMeter; 3]) {
    let global = f.cars_ed.schema().clone();
    let cars = FaultInjector::new(WebSource::new("cars.com", f.cars_ed.clone()), plans[0]);
    let yahoo = FaultInjector::new(WebSource::new("yahoo_autos", f.yahoo_local.clone()), plans[1]);
    let auctions = FaultInjector::new(WebSource::new("auctions", f.auctions_ed.clone()), plans[2]);
    let network = MediatorNetwork::new(
        global,
        QpiadConfig::default().with_k(8).with_retry(retry),
    )
    .add_supporting(&cars, f.cars_stats.clone())
    .add_deficient(&yahoo)
    .add_deficient(&auctions);
    let answer = network.answer(query).expect("mediation never aborts");
    (answer, [cars.meter(), yahoo.meter(), auctions.meter()])
}

#[test]
fn transient_failures_with_retries_converge_to_the_healthy_answer() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let body = f.cars_ed.schema().expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // Every distinct query fails its first two attempts on every source; a
    // three-attempt policy absorbs all of it.
    let flaky = FaultPlan::healthy().with_fail_first_attempts(2);
    let retry = RetryPolicy::default().with_max_attempts(3);

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let (healthy, healthy_meters) =
            run_network(&f, &query, RetryPolicy::none(), [FaultPlan::healthy(); 3]);
        assert!(healthy.fully_healthy());
        assert_eq!(healthy_meters[0].retries, 0);

        let (faulted, meters) = run_network(&f, &query, retry, [flaky; 3]);
        assert!(
            faulted.fully_healthy(),
            "retries must absorb the transient outages: {:?}",
            faulted.failed_sources()
        );
        assert_eq!(signature(&healthy), signature(&faulted));
        // Every member was retried and every failed attempt was metered.
        for m in &meters {
            assert!(m.retries > 0, "retries went unmetered: {m:?}");
            assert_eq!(m.failures, m.retries, "each absorbed failure costs one retry");
            assert_eq!(m.degraded, 0);
        }
        signatures.push(signature(&faulted));
    }
    assert_eq!(signatures[0], signatures[1], "fault decisions must be content-keyed");
}

#[test]
fn permanent_outage_is_isolated_to_the_failed_member() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    // Query on an attribute every source supports: each member answers
    // directly, so the downed member's base retrieval fails outright. This
    // is the scenario the pre-fault-tolerance mediator turned into an `Err`
    // for the *whole* network.
    let model = f.cars_ed.schema().expect_attr("model");
    let query = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);

    let down = FaultPlan::healthy().with_permanent_outage();

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let (healthy, _) =
            run_network(&f, &query, RetryPolicy::none(), [FaultPlan::healthy(); 3]);
        assert!(healthy.fully_healthy());
        assert!(healthy.certain_count() > 0);

        let (faulted, meters) = run_network(
            &f,
            &query,
            RetryPolicy::default().with_max_attempts(3),
            [FaultPlan::healthy(), FaultPlan::healthy(), down],
        );

        // The network still answers, with the outage recorded...
        let failed = faulted.failed_sources();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, "auctions");
        assert!(matches!(failed[0].1, SourceError::Unavailable { retryable: false }));
        assert!(faulted.per_source[2].outcome.is_failed());
        assert!(faulted.per_source[2].certain.is_empty());

        // ...and the healthy members' contributions are byte-identical to
        // the healthy run's.
        assert_eq!(per_part(&healthy)[..2], per_part(&faulted)[..2]);
        for part in &faulted.per_source[..2] {
            assert!(part.outcome.is_healthy());
        }
        assert_eq!(
            faulted.certain_count(),
            healthy.certain_count() - healthy.per_source[2].certain.len()
        );

        // A non-retryable outage is metered as one failure, zero retries.
        assert_eq!(meters[2].failures, 1);
        assert_eq!(meters[2].retries, 0);
        assert_eq!(meters[2].degraded, 1);
        signatures.push(signature(&faulted));
    }
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn failed_rewrites_degrade_the_member_and_keep_its_certain_answers() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let schema = f.cars_ed.schema().clone();
    let body = schema.expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // Knock out every rewritten query that constrains the determining-set
    // attribute while the base query (on body_style) still succeeds.
    let dtr = f
        .cars_stats
        .determining_set(body)
        .expect("body_style has an AFD")
        .to_vec();
    let target = dtr[0];

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let (healthy, _) =
            run_network(&f, &query, RetryPolicy::none(), [FaultPlan::healthy(); 3]);
        let (faulted, meters) = run_network(
            &f,
            &query,
            RetryPolicy::default().with_max_attempts(2),
            [FaultPlan::healthy().with_fail_on_attr(target), FaultPlan::healthy(), FaultPlan::healthy()],
        );

        // cars.com is degraded, not failed: its certain answers are intact
        // and the dropped F-measure mass is accounted.
        assert!(!healthy.per_source[0].possible.is_empty());
        let part = &faulted.per_source[0];
        let SourceOutcome::Degraded(d) = &part.outcome else {
            panic!("expected a degraded outcome, got {:?}", part.outcome);
        };
        assert!(d.dropped_rewrites > 0);
        assert!(d.dropped_fmeasure > 0.0);
        assert!(matches!(d.last_error, Some(SourceError::Unavailable { retryable: true })));
        assert_eq!(
            part.certain.iter().map(|t| t.id()).collect::<Vec<_>>(),
            healthy.per_source[0].certain.iter().map(|t| t.id()).collect::<Vec<_>>(),
        );
        assert!(part.possible.len() < healthy.per_source[0].possible.len());
        assert_eq!(faulted.degraded_count(), 1);
        assert!(!faulted.fully_healthy());
        assert!(faulted.failed_sources().is_empty());

        // The degradation and the exhausted retries are metered.
        assert_eq!(meters[0].degraded, 1);
        assert!(meters[0].failures > 0);
        assert!(meters[0].retries > 0, "retryable faults must be retried before dropping");

        // The other members are untouched.
        assert_eq!(per_part(&healthy)[1..], per_part(&faulted)[1..]);
        signatures.push(signature(&faulted));
    }
    assert_eq!(signatures[0], signatures[1]);
}

#[test]
fn retry_exhaustion_fails_the_member_rather_than_the_network() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let model = f.cars_ed.schema().expect_attr("model");
    let query = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);

    // Five consecutive outages against a two-attempt policy: the member
    // fails; the same plan under a six-attempt policy converges.
    let flaky = FaultPlan::healthy().with_fail_first_attempts(5);

    let (exhausted, _) = run_network(
        &f,
        &query,
        RetryPolicy::default().with_max_attempts(2),
        [FaultPlan::healthy(), FaultPlan::healthy(), flaky],
    );
    assert!(exhausted.per_source[2].outcome.is_failed());
    assert!(exhausted.per_source[0].outcome.is_healthy());

    let (recovered, meters) = run_network(
        &f,
        &query,
        RetryPolicy::default().with_max_attempts(6),
        [FaultPlan::healthy(), FaultPlan::healthy(), flaky],
    );
    assert!(recovered.fully_healthy());
    assert_eq!(meters[2].retries, 5);
    assert!(!recovered.per_source[2].certain.is_empty());
}

#[test]
fn hashed_fault_decisions_replay_identically_across_thread_counts() {
    let _pin = PinnedPool::acquire();
    let f = fixture();
    let body = f.cars_ed.schema().expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "SUV")]);

    // Random-rate faults: whatever mixture of recoveries, degradations and
    // failures the seed produces must replay identically at any thread
    // count, because decisions hash (seed, query content, attempt) rather
    // than call order. cars.com stays healthy so the one query two members
    // legitimately share (the correlated base retrieval) cannot split its
    // injected-failure budget across callers in interleaving-dependent ways.
    let noisy = FaultPlan::healthy().with_seed(0xfau64).with_transient_rate(0.35);
    let retry = RetryPolicy::default().with_max_attempts(3).with_jitter_seed(7);

    let mut signatures = Vec::new();
    for threads in [1usize, 8] {
        par::set_thread_override(Some(threads));
        let (answer, meters) =
            run_network(&f, &query, retry, [FaultPlan::healthy(), noisy, noisy]);
        signatures.push((signature(&answer), meters.map(|m| (m.retries, m.failures, m.degraded))));
    }
    assert_eq!(signatures[0], signatures[1]);
}
