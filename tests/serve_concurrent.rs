//! Concurrent-serving stress tests for `qpiad-serve`.
//!
//! Three properties of the serving layer are pinned here:
//!
//! * **byte-identity** — answers served concurrently are byte-identical
//!   (via `Debug` rendering) to the same queries executed serially on an
//!   identically constructed network;
//! * **coalescing** — N concurrent identical requests incur exactly one
//!   source fan-out, meter-verified against a serial twin;
//! * **non-starvation** — an interactive-class tenant completes while a
//!   batch-class flood holds every batch slot.
//!
//! Determinism is engineered, not assumed: a `GateSource` wrapper lets the
//! test hold a mediation pass in flight until the exact concurrent state
//! it wants to assert about (followers parked, batch slots saturated) is
//! observable through the server's metrics.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qpiad::core::mediator::QpiadConfig;
use qpiad::core::network::MediatorNetwork;
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    AttrId, AutonomousSource, Predicate, PressureLevel, QueryBudget, Relation, Schema, SelectQuery,
    SourceError, SourceMeter, Tuple, Value, WebSource,
};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};
use qpiad::serve::{QpiadServer, ServeConfig, ServeError, Tenant};

/// A source wrapper whose `query` blocks on selected queries until the
/// test opens the gate — turning "while a pass is in flight" from a race
/// into a deterministic, observable state.
struct GateSource<S> {
    inner: S,
    open: Mutex<bool>,
    opened: Condvar,
    /// Only queries containing one of these (attr, value) equality
    /// predicates block; everything else passes straight through.
    gated: Vec<(AttrId, Value)>,
}

impl<S> GateSource<S> {
    fn new(inner: S, gated: Vec<(AttrId, Value)>) -> Self {
        GateSource { inner, open: Mutex::new(false), opened: Condvar::new(), gated }
    }

    /// Gate every query.
    fn all(inner: S) -> Self {
        GateSource::new(inner, Vec::new())
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.opened.notify_all();
    }

    fn is_gated(&self, q: &SelectQuery) -> bool {
        self.gated.is_empty()
            || q.predicates().iter().any(|p| {
                self.gated.iter().any(|(attr, value)| {
                    p.attr == *attr && matches!(&p.op, qpiad::db::PredOp::Eq(v) if v == value)
                })
            })
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.opened.wait(open).unwrap();
        }
    }
}

impl<S: AutonomousSource> AutonomousSource for GateSource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }
    fn supports(&self, attr: AttrId) -> bool {
        self.inner.supports(attr)
    }
    fn allows_null_binding(&self) -> bool {
        self.inner.allows_null_binding()
    }
    fn has_query_budget(&self) -> bool {
        self.inner.has_query_budget()
    }
    fn query(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError> {
        if self.is_gated(q) {
            self.wait_open();
        }
        self.inner.query(q)
    }
    fn meter(&self) -> SourceMeter {
        self.inner.meter()
    }
    fn reset_meter(&self) {
        self.inner.reset_meter()
    }
    fn note_retries(&self, n: usize) {
        self.inner.note_retries(n)
    }
    fn note_failure(&self) {
        self.inner.note_failure()
    }
    fn note_degraded(&self) {
        self.inner.note_degraded()
    }
    fn note_quarantined(&self, n: usize) {
        self.inner.note_quarantined(n)
    }
    fn note_hedge(&self) {
        self.inner.note_hedge()
    }
    fn note_breaker_skip(&self) {
        self.inner.note_breaker_skip()
    }
    fn note_shed(&self, n: usize) {
        self.inner.note_shed(n)
    }
    fn note_deadline_refused(&self) {
        self.inner.note_deadline_refused()
    }
    fn note_knowledge_unavailable(&self) {
        self.inner.note_knowledge_unavailable()
    }
    fn note_drift(&self) {
        self.inner.note_drift()
    }
    fn note_latency(&self, d: Duration) {
        self.inner.note_latency(d)
    }
    fn note_plan_cache_hit(&self) {
        self.inner.note_plan_cache_hit()
    }
    fn note_plan_cache_miss(&self) {
        self.inner.note_plan_cache_miss()
    }
}

/// One incomplete cars source plus its mined statistics, identically
/// reconstructible: same seeds, same relation, same knowledge.
fn cars_source(name: &str) -> (WebSource, SourceStats, Arc<Schema>) {
    let ground = CarsConfig::default().with_rows(4_000).generate(71);
    let global = ground.schema().clone();
    let (incomplete, _) = corrupt(&ground, &CorruptionConfig::default().with_seed(1));
    let stats = mine(&incomplete);
    (WebSource::new(name, incomplete), stats, global)
}

fn mine(relation: &Relation) -> SourceStats {
    SourceStats::mine(&uniform_sample(relation, 0.10, 2), relation.len(), &MiningConfig::default())
}

/// Polls `probe` until it holds or ten seconds elapse (a clear failure
/// instead of a wedged test run).
fn await_state(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::yield_now();
    }
}

#[test]
fn coalesced_duplicates_share_one_fanout_and_one_answer() {
    const CALLERS: usize = 6;

    let (cars, stats, global) = cars_source("cars.com");
    let gated = GateSource::all(cars);
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6))
        .add_supporting(&gated, stats);
    let server = QpiadServer::new(network);
    server.register(Tenant::interactive("web"));

    let body = global.expect_attr("body_style");
    let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    let answers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| scope.spawn(|| server.query("web", &query)))
            .collect();
        // Deterministic overlap: the leader is held inside the gated
        // source until every other caller is parked on its flight.
        await_state("1 leader + N-1 parked followers", || {
            let m = server.metrics();
            m.leaders == 1 && m.coalesce_waiters == CALLERS - 1
        });
        gated.open();
        handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect()
    });

    // Every caller got the very same shared answer.
    for other in &answers[1..] {
        assert!(Arc::ptr_eq(&answers[0], other), "coalesced callers must share one Arc");
    }
    let m = server.metrics();
    assert_eq!(m.admitted, CALLERS);
    assert_eq!(m.leaders, 1);
    assert_eq!(m.coalesced, CALLERS - 1);
    assert_eq!(m.coalesce_waiters, 0);
    assert_eq!(m.in_flight, 0, "live gauge must drain to zero at quiescence");
    assert_eq!(m.errors, 0);
    assert!(m.conserves(), "admitted == completed + shed + deadline_refused + errors");

    // Meter-verified: N coalesced callers cost exactly the fan-out of ONE
    // pass on a serial twin, and the answer is byte-identical to it.
    let (twin, twin_stats, twin_global) = cars_source("cars.com");
    let twin_network = MediatorNetwork::new(twin_global, QpiadConfig::default().with_k(6))
        .add_supporting(&twin, twin_stats);
    let serial = twin_network.answer(&query).unwrap();
    assert_eq!(
        gated.meter().queries,
        twin.meter().queries,
        "coalesced group must charge one pass's source queries"
    );
    assert_eq!(format!("{:?}", *answers[0]), format!("{serial:?}"));
}

#[test]
fn concurrent_mixed_workload_matches_serial_execution_byte_for_byte() {
    let (cars, stats, global) = cars_source("cars.com");
    let network =
        MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6)).add_supporting(&cars, stats);
    let server = QpiadServer::new(network);
    server.register(Tenant::interactive("web"));

    let body = global.expect_attr("body_style");
    let model = global.expect_attr("model");
    let queries: Vec<SelectQuery> = vec![
        SelectQuery::new(vec![Predicate::eq(body, "Convt")]),
        SelectQuery::new(vec![Predicate::eq(body, "Truck")]),
        SelectQuery::new(vec![Predicate::eq(model, "Civic")]),
        SelectQuery::new(vec![Predicate::eq(model, "F150")]),
    ];

    // Serial reference on an identically constructed twin.
    let (twin, twin_stats, twin_global) = cars_source("cars.com");
    let twin_network = MediatorNetwork::new(twin_global, QpiadConfig::default().with_k(6))
        .add_supporting(&twin, twin_stats);
    let reference: Vec<String> =
        queries.iter().map(|q| format!("{:?}", twin_network.answer(q).unwrap())).collect();

    // Concurrent: every query issued from four threads at once (a mix of
    // identical and distinct in flight at any moment).
    let rendered: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    queries
                        .iter()
                        .map(|q| format!("{:?}", server.query("web", q).unwrap()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for per_thread in &rendered {
        assert_eq!(per_thread, &reference, "concurrent answers must be byte-identical to serial");
    }
    assert!(server.metrics().conserves());
}

#[test]
fn interactive_tenants_are_never_starved_by_batch_floods() {
    const BATCH_CALLERS: usize = 4;

    let (cars, stats, global) = cars_source("cars.com");
    let model = global.expect_attr("model");
    // Gate only the batch workload's model-equality queries; everything
    // else (the interactive query, rewrites) passes through.
    let batch_models = ["F150", "Ram", "Silvrdo", "Tacoma"];
    let gated = GateSource::new(
        cars,
        batch_models.iter().map(|m| (model, Value::str(*m))).collect(),
    );
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(4))
        .add_supporting(&gated, stats);
    let server = QpiadServer::new(network)
        .with_config(ServeConfig::default().with_batch_concurrency(1));
    server.register(Tenant::interactive("web"));
    server.register(Tenant::batch("nightly"));

    std::thread::scope(|scope| {
        let handles: Vec<_> = batch_models
            .iter()
            .map(|m| {
                scope.spawn(|| {
                    let q = SelectQuery::new(vec![Predicate::eq(model, *m)]);
                    server.query("nightly", &q)
                })
            })
            .collect();
        // Wait until the batch flood is fully admitted and one batch pass
        // is wedged inside the gated source (the other three queue on the
        // single batch slot).
        await_state("batch flood admitted and one pass in flight", || {
            let m = server.metrics();
            m.batch == BATCH_CALLERS && m.batch_in_flight_peak >= 1
        });

        // The interactive query must complete *while* the flood holds the
        // batch slot — if batch work could starve it, this call would hang
        // until the test times out.
        let q = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);
        let answer = server.query("web", &q).expect("interactive query must be served");
        assert!(answer.certain_count() > 0);

        gated.open();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    });

    let m = server.metrics();
    assert_eq!(m.batch, BATCH_CALLERS);
    assert_eq!(m.interactive, 1);
    assert_eq!(
        m.batch_in_flight_peak, 1,
        "batch concurrency cap must bound concurrent batch passes"
    );
    assert_eq!(m.in_flight, 0, "live gauge must drain to zero at quiescence");
    assert!(m.conserves());
}

#[test]
fn admission_rejects_unknown_tenants_and_malformed_queries_gracefully() {
    let (cars, stats, global) = cars_source("cars.com");
    let network =
        MediatorNetwork::new(global.clone(), QpiadConfig::default()).add_supporting(&cars, stats);
    let server = QpiadServer::new(network);
    server.register(Tenant::interactive("web"));

    let body = global.expect_attr("body_style");
    let good = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // Unknown tenant: refused, not served.
    assert!(matches!(
        server.query("nobody", &good),
        Err(ServeError::UnknownTenant { .. })
    ));

    // An attribute outside the global schema would index out of tuple
    // bounds deep inside predicate matching; admission validation turns
    // it into a graceful error instead of a panic.
    let malformed = SelectQuery::new(vec![Predicate::eq(AttrId(99), "Convt")]);
    assert!(matches!(
        server.query("web", &malformed),
        Err(ServeError::MalformedQuery { .. })
    ));
    assert!(matches!(server.explain(&malformed), Err(ServeError::MalformedQuery { .. })));

    // The server keeps serving after rejections.
    let answer = server.query("web", &good).unwrap();
    assert!(answer.certain_count() > 0);
    let m = server.metrics();
    assert_eq!(m.rejected, 2);
    assert_eq!(m.admitted, 1);
    assert!(m.conserves(), "rejected requests sit outside the conservation equation");
}

#[test]
fn batch_work_past_the_queue_limit_is_shed_before_any_fanout() {
    let (cars, stats, global) = cars_source("cars.com");
    let model = global.expect_attr("model");
    let gated = GateSource::new(cars, vec![(model, Value::str("F150"))]);
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(4))
        .add_supporting(&gated, stats);
    let server = QpiadServer::new(network).with_config(
        ServeConfig::default().with_batch_concurrency(1).with_batch_queue_limit(1),
    );
    server.register(Tenant::batch("nightly"));

    std::thread::scope(|scope| {
        let wedged = scope.spawn(|| {
            let q = SelectQuery::new(vec![Predicate::eq(model, "F150")]);
            server.query("nightly", &q)
        });
        await_state("one batch pass wedged in flight", || server.metrics().in_flight == 1);

        // The class is at its bound: the next batch request is refused
        // with a typed error before any source is contacted.
        let fanout_before = gated.meter().queries;
        let q = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);
        let refused = server.query("nightly", &q);
        assert!(
            matches!(refused, Err(ServeError::Shed { in_flight: 2, limit: 1 })),
            "expected a typed shed, got {refused:?}"
        );
        assert_eq!(gated.meter().queries, fanout_before, "shed must precede all source fan-out");

        gated.open();
        wedged.join().unwrap().expect("the admitted batch pass must still complete");
    });

    let m = server.metrics();
    assert_eq!(m.shed, 1);
    assert_eq!(m.completed, 1);
    assert_eq!(m.in_flight, 0);
    assert!(m.conserves());
}

#[test]
fn unfundable_deadlines_are_refused_at_the_cheapest_layer() {
    let (cars, stats, global) = cars_source("cars.com");
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(4))
        .add_supporting(&cars, stats);
    let server = QpiadServer::new(network)
        .with_config(ServeConfig::default().with_deadline(Duration::from_millis(5)));
    server.register(Tenant::interactive("web"));
    server.register(Tenant::interactive("slow").with_budget(
        QueryBudget::unlimited().with_query_cost(Duration::from_millis(50)),
    ));

    let body = global.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // A pass modeled at 50ms per source query cannot finish inside the
    // 5ms server-wide deadline: refused at admission, zero source cost.
    let fanout_before = cars.meter().queries;
    assert!(matches!(server.query("slow", &q), Err(ServeError::DeadlineRefused)));
    assert_eq!(cars.meter().queries, fanout_before, "refusal must not touch any source");

    // A tenant whose stamped budget still funds an attempt is served.
    assert!(server.query("web", &q).is_ok());

    let m = server.metrics();
    assert_eq!(m.deadline_refused, 1);
    assert_eq!(m.completed, 1);
    assert!(m.conserves());
}

#[test]
fn the_ladder_degrades_interactive_work_instead_of_refusing_it() {
    let (cars, stats, global) = cars_source("cars.com");
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(6))
        .add_supporting(&cars, stats);
    let server = QpiadServer::new(network);
    server.register(Tenant::interactive("web"));

    let body = global.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    let normal = server.query_under("web", &q, PressureLevel::Normal).unwrap();
    let critical = server.query_under("web", &q, PressureLevel::Critical).unwrap();

    // The top rung keeps every certain answer and sheds every rewrite —
    // degraded recall, never a refusal.
    assert_eq!(critical.certain_count(), normal.certain_count());
    assert!(normal.possible_count() > 0, "fixture must produce possible answers at Normal");
    assert_eq!(critical.possible_count(), 0, "Critical serves certain answers only");
    // The recall cost is declared, not silent: the member reports itself
    // degraded and its meter carries the shed rewrites.
    assert_eq!(critical.degraded_count(), 1);
    assert!(cars.meter().shed > 0, "shed rewrites must be charged to the source meter");

    let m = server.metrics();
    assert_eq!(m.completed, 2);
    assert!(m.conserves());
}

#[test]
fn pressure_derives_from_the_live_in_flight_gauge() {
    const CALLERS: usize = 4;

    let (cars, stats, global) = cars_source("cars.com");
    let gated = GateSource::all(cars);
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(4))
        .add_supporting(&gated, stats);
    let server = QpiadServer::new(network)
        .with_config(ServeConfig::default().with_pressure_capacity(CALLERS));
    server.register(Tenant::interactive("web"));

    let body = global.expect_attr("body_style");
    assert_eq!(server.pressure(), PressureLevel::Normal, "an idle server is at Normal");

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                scope.spawn(|| {
                    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
                    server.query("web", &q)
                })
            })
            .collect();
        // With every pass wedged inside the gated source, the live load
        // equals the configured capacity: the ladder reads Critical.
        await_state("all callers in flight", || server.metrics().in_flight == CALLERS);
        assert_eq!(server.pressure(), PressureLevel::Critical);
        gated.open();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    });

    assert_eq!(server.pressure(), PressureLevel::Normal, "pressure releases with the load");
    let m = server.metrics();
    assert_eq!(m.in_flight, 0);
    assert!(m.conserves());
}
