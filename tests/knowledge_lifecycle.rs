//! Knowledge lifecycle robustness: durable snapshots, drift detection,
//! and safe re-mining.
//!
//! The mined knowledge a QPIAD mediator runs on is itself a failure
//! domain: snapshot files rot on disk, and live sources evolve away from
//! the sample they were mined from. These scenarios check three
//! properties end to end:
//!
//! 1. **Containment** — a snapshot that fails to load (missing, corrupt,
//!    truncated, version-mismatched, or mined against another schema)
//!    degrades that member to certain-answers-only, charged to
//!    `Degradation::knowledge_unavailable`, instead of failing the
//!    network.
//! 2. **Detection** — a seeded, content-keyed skew of a source's live
//!    responses ([`SkewInjector`]) drives the drift statistic over the
//!    threshold and emits exactly one [`DriftVerdict`]; later passes
//!    demote the drifted member's possible answers until it is re-mined.
//! 3. **Determinism** — drift observation follows the same sequential
//!    snapshot → pass-local probe → sequential absorb protocol as breaker
//!    health, so verdicts, demotions, and post-refresh answers replay
//!    byte-identically at 1 and 8 worker threads.
//! 4. **Maintenance under traffic** — a refresh killed mid-persist
//!    (fault-injected crash between temp write and rename) leaves the
//!    store loadable at the prior version and the old epoch serving;
//!    `QpiadServer::maintain` heals a drifted member while concurrent
//!    queries flow (no refused or torn answer, exact conservation); a
//!    failed refresh backs off across passes and keeps the old
//!    generation serving byte-identically until it heals.
//!
//! The thread override is process-global; tests serialize on a mutex and
//! restore the default on drop, mirroring `fault_tolerance.rs`.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use qpiad::core::network::{MediatorNetwork, MemberFold, NetworkAnswer, SourceOutcome};
use qpiad::core::{par, QpiadConfig};
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    AutonomousSource, Predicate, Relation, SelectQuery, SkewInjector, SkewPlan, Value, WebSource,
};
use qpiad::learn::drift::{DriftConfig, DriftRegistry, DriftVerdict};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};
use qpiad::learn::persist::StatsSnapshot;
use qpiad::learn::store::{encode_snapshot, KnowledgeStore, PersistFault};
use qpiad::serve::{QpiadServer, ServeConfig, Tenant};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Holds the override lock and resets the pool size when dropped.
struct PinnedPool<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl PinnedPool<'_> {
    fn acquire() -> Self {
        PinnedPool(OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for PinnedPool<'_> {
    fn drop(&mut self) {
        par::set_thread_override(None);
    }
}

/// A fresh scratch store under `target/` (never outside the repo).
fn scratch_store(name: &str) -> KnowledgeStore {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/test-knowledge-lifecycle")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    KnowledgeStore::open(dir).unwrap()
}

struct Fixture {
    cars_ed: Relation,
    cars_stats: SourceStats,
    config: MiningConfig,
}

fn fixture() -> Fixture {
    let cars_gd = CarsConfig::default().with_rows(5_000).generate(91);
    let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
    let config = MiningConfig::default();
    let cars_stats = SourceStats::mine(&uniform_sample(&cars_ed, 0.10, 2), cars_ed.len(), &config);
    Fixture { cars_ed, cars_stats, config }
}

/// Everything order- and rank-sensitive about a network answer, with float
/// bits compared exactly. Outcomes (including knowledge / drift
/// degradation accounting) are part of the signature.
fn signature(answer: &NetworkAnswer) -> Vec<String> {
    answer
        .per_source
        .iter()
        .flat_map(|part| {
            std::iter::once(format!(
                "source {} via={:?} outcome={:?}",
                part.source, part.via_correlated, part.outcome
            ))
            .chain(part.certain.iter().map(|t| format!("certain {:?}", t.id())))
            .chain(part.possible.iter().map(|r| {
                format!(
                    "possible {:?} conf={:016x} prec={:016x} q={}",
                    r.tuple.id(),
                    r.confidence.to_bits(),
                    r.query_precision.to_bits(),
                    r.query_index
                )
            }))
            .collect::<Vec<_>>()
        })
        .chain(answer.drift_verdicts.iter().map(|v| {
            format!(
                "verdict {} stat={:016x} value={:016x} afd={:016x} observed={}",
                v.source,
                v.statistic.to_bits(),
                v.value_divergence.to_bits(),
                v.afd_divergence.to_bits(),
                v.observed
            )
        }))
        .collect()
}

// ---------------------------------------------------------------------------
// 1. Containment: every load-failure class serves certain answers only.
// ---------------------------------------------------------------------------

#[test]
fn every_load_failure_class_degrades_to_certain_answers_only() {
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let good = encode_snapshot(&StatsSnapshot::capture(&f.cars_stats, &f.config));

    // A snapshot mined against a narrower schema (body_style dropped):
    // decodes fine, but does not match the source it is loaded for.
    let keep: Vec<_> = global
        .attr_ids()
        .filter(|a| global.attr(*a).name() != "body_style")
        .collect();
    let narrow = f.cars_ed.project_to("cars.com", &keep);
    let narrow_stats =
        SourceStats::mine(&uniform_sample(&narrow, 0.10, 2), narrow.len(), &f.config);
    let narrow_text = encode_snapshot(&StatsSnapshot::capture(&narrow_stats, &f.config));

    let cases: [(&str, Option<String>, &str); 5] = [
        ("missing", None, "missing"),
        ("garbage", Some("not a snapshot at all".to_string()), "corrupt"),
        ("truncated", Some(good[..good.len() / 2].to_string()), "corrupt"),
        ("future-version", Some(good.replacen(" v1 ", " v9 ", 1)), "version-mismatch"),
        ("other-schema", Some(narrow_text), "schema-mismatch"),
    ];

    let body = global.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    for (name, contents, expected_kind) in cases {
        let store = scratch_store(name);
        if let Some(text) = contents {
            std::fs::write(store.path_for("cars.com"), text).unwrap();
        }
        let cars = WebSource::new("cars.com", f.cars_ed.clone());
        let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting_from_store(&cars, &store);

        let failures = network.knowledge_failures();
        assert_eq!(failures.len(), 1, "case `{name}`");
        assert_eq!(failures[0].1.kind(), expected_kind, "case `{name}`");

        let answer = network.answer(&q).unwrap();
        let part = &answer.per_source[0];
        assert!(!part.certain.is_empty(), "case `{name}`: certain answers must survive");
        assert!(part.possible.is_empty(), "case `{name}`: no statistics, no possible answers");
        match &part.outcome {
            SourceOutcome::Degraded(d) => {
                assert_eq!(d.knowledge_unavailable, 1, "case `{name}`");
                assert!(d.is_degraded(), "case `{name}`");
            }
            other => panic!("case `{name}`: expected degraded outcome, got {other:?}"),
        }
        assert_eq!(cars.meter().knowledge_unavailable, 1, "case `{name}`");
    }
}

#[test]
fn a_healthy_snapshot_round_trips_through_the_store() {
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let store = scratch_store("round-trip");
    store.save("cars.com", &StatsSnapshot::capture(&f.cars_stats, &f.config)).unwrap();

    let cars = WebSource::new("cars.com", f.cars_ed.clone());
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .add_supporting_from_store(&cars, &store);
    assert!(network.knowledge_failures().is_empty());

    let body = global.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    let restored = network.answer(&q).unwrap();

    // Byte-identical to a network running on the live-mined statistics.
    let live = MediatorNetwork::new(global, QpiadConfig::default().with_k(8))
        .add_supporting(&cars, f.cars_stats.clone());
    let live_answer = live.answer(&q).unwrap();
    assert_eq!(signature(&restored), signature(&live_answer));
    assert!(restored.per_source[0].outcome.is_healthy());
}

// ---------------------------------------------------------------------------
// 2 + 3. Detection and determinism: skewed responses fire one verdict,
// demote the member, and re-mining restores full byte-identical service.
// ---------------------------------------------------------------------------

/// Runs the full drift lifecycle at a given thread count and returns the
/// signatures of the four passes (pre-verdict, verdict, demoted,
/// refreshed) for cross-thread-count comparison.
fn drift_lifecycle(f: &Fixture, threads: usize) -> [Vec<String>; 3] {
    par::set_thread_override(Some(threads));

    let global = f.cars_ed.schema().clone();
    let make = global.expect_attr("make");
    let body = global.expect_attr("body_style");

    // Content-keyed skew: ~90% of returned tuples report make=Monopoly.
    // The mined sample never saw that value, so the make distribution's
    // total-variation distance shoots toward 1.
    let plan = SkewPlan::new(make, Value::str("Monopoly"), 0.9, 77);
    let cars = SkewInjector::new(WebSource::new("cars.com", f.cars_ed.clone()), plan);

    let registry = Arc::new(DriftRegistry::new(
        DriftConfig::default().with_min_observations(20).with_threshold(0.35),
    ));
    let store = scratch_store(&format!("drift-{threads}"));
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_drift(registry.clone())
        .add_supporting(&cars, f.cars_stats.clone());

    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // Pass 1: the skewed base response alone crosses the threshold — the
    // verdict fires in this pass's sequential absorb phase, so the
    // answers themselves are not yet demoted.
    let first = network.answer(&q).unwrap();
    assert_eq!(first.drift_verdicts.len(), 1, "threads={threads}");
    let verdict: &DriftVerdict = &first.drift_verdicts[0];
    assert_eq!(verdict.source, "cars.com");
    assert!(verdict.statistic >= verdict.threshold);
    assert!(registry.is_drifted("cars.com"));
    assert_eq!(registry.pending_refresh(), vec!["cars.com".to_string()]);
    assert!(cars.meter().drift_events >= 1);

    // Pass 2: the sticky verdict demotes this pass up front. The verdict
    // is not re-issued.
    let demoted = network.answer(&q).unwrap();
    assert!(demoted.drift_verdicts.is_empty());
    match &demoted.per_source[0].outcome {
        SourceOutcome::Degraded(d) => assert!(d.drift_demoted, "threads={threads}"),
        other => panic!("expected drift-demoted outcome, got {other:?}"),
    }
    // Demotion scales every possible answer's precision by the factor.
    for (before, after) in first.per_source[0].possible.iter().zip(&demoted.per_source[0].possible)
    {
        assert_eq!(after.query_precision.to_bits(), (before.query_precision * 0.5).to_bits());
    }

    // Re-mine from what the source returns *now* (the skewed
    // distribution) and atomically swap it in, persisting the snapshot.
    let skewed_rows: Vec<_> = f
        .cars_ed
        .tuples()
        .iter()
        .map(|t| {
            if t.value(make).is_null() {
                t.clone()
            } else {
                t.with_value(make, Value::str("Monopoly"))
            }
        })
        .collect();
    let skewed_ed = Relation::new(global.clone(), skewed_rows);
    let fresh_stats =
        SourceStats::mine(&uniform_sample(&skewed_ed, 0.10, 2), skewed_ed.len(), &f.config);
    network
        .refresh_member("cars.com", |_| Ok(fresh_stats.clone()), Some((&store, &f.config)))
        .unwrap();
    assert!(!registry.is_drifted("cars.com"), "threads={threads}");
    assert!(registry.pending_refresh().is_empty());
    assert!(store.load_for("cars.com", cars.schema()).is_ok());

    // Pass 3: full service again on knowledge that matches the live
    // distribution — no demotion, no new verdict.
    let refreshed = network.answer(&q).unwrap();
    assert!(refreshed.drift_verdicts.is_empty());
    assert!(!refreshed.per_source[0].possible.is_empty());
    match &refreshed.per_source[0].outcome {
        SourceOutcome::Healthy => {}
        SourceOutcome::Degraded(d) => {
            assert!(!d.drift_demoted, "threads={threads}: refresh must clear the demotion")
        }
        other => panic!("unexpected outcome after refresh: {other:?}"),
    }

    [signature(&first), signature(&demoted), signature(&refreshed)]
}

#[test]
fn skewed_responses_fire_one_verdict_and_refresh_restores_service() {
    let _guard = PinnedPool::acquire();
    let f = fixture();
    let [first, demoted, refreshed] = drift_lifecycle(&f, 1);
    assert_ne!(first, demoted, "demotion must change the answer");
    assert_ne!(demoted, refreshed, "refresh must change the answer");
}

#[test]
fn drift_lifecycle_replays_identically_at_1_and_8_threads() {
    let _guard = PinnedPool::acquire();
    let f = fixture();
    let sequential = drift_lifecycle(&f, 1);
    let parallel = drift_lifecycle(&f, 8);
    assert_eq!(sequential, parallel);
}

// ---------------------------------------------------------------------------
// Mixed-lifecycle network: broken knowledge, drifting knowledge, and a
// deficient member all in one pass, replayed across thread counts.
// ---------------------------------------------------------------------------

fn mixed_network_passes(f: &Fixture, threads: usize) -> Vec<Vec<String>> {
    par::set_thread_override(Some(threads));
    let global = f.cars_ed.schema().clone();
    let make = global.expect_attr("make");
    let body = global.expect_attr("body_style");

    let cars = SkewInjector::new(
        WebSource::new("cars.com", f.cars_ed.clone()),
        SkewPlan::new(make, Value::str("Monopoly"), 0.9, 77),
    );

    // auctions: supporting, but its snapshot is corrupt on disk.
    let store = scratch_store(&format!("mixed-{threads}"));
    std::fs::write(store.path_for("auctions"), "garbage").unwrap();
    let auctions_gd = CarsConfig::default().with_rows(5_000).generate(93);
    let (auctions_ed, _) = corrupt(&auctions_gd, &CorruptionConfig::default().with_seed(3));
    let auctions_ed =
        auctions_ed.project_to("auctions", &global.attr_ids().collect::<Vec<_>>());
    let auctions = WebSource::new("auctions", auctions_ed);

    // yahoo: deficient (no body_style), served through the correlated
    // supporting member.
    let keep: Vec<_> = global
        .attr_ids()
        .filter(|a| global.attr(*a).name() != "body_style")
        .collect();
    let yahoo_local = CarsConfig::default()
        .with_rows(5_000)
        .generate(92)
        .project_to("yahoo_autos", &keep);
    let yahoo = WebSource::new("yahoo_autos", yahoo_local);

    let registry =
        Arc::new(DriftRegistry::new(DriftConfig::default().with_min_observations(20)));
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_drift(registry)
        .add_supporting(&cars, f.cars_stats.clone())
        .add_supporting_from_store(&auctions, &store)
        .add_deficient(&yahoo);
    assert_eq!(network.knowledge_failures().len(), 1);

    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    (0..3).map(|_| signature(&network.answer(&q).unwrap())).collect()
}

#[test]
fn mixed_lifecycle_network_replays_identically_across_thread_counts() {
    let _guard = PinnedPool::acquire();
    let f = fixture();
    let sequential = mixed_network_passes(&f, 1);
    let parallel = mixed_network_passes(&f, 8);
    assert_eq!(sequential, parallel);

    // The corrupt-store member keeps serving certain answers in every
    // pass, and the drifted member's demotion shows up from pass 2 on.
    assert!(sequential[0].iter().any(|l| l.contains("verdict cars.com")));
    assert!(sequential[1].iter().any(|l| l.contains("drift_demoted: true")));
    assert!(sequential[2]
        .iter()
        .any(|l| l.contains("source auctions") && l.contains("knowledge_unavailable: 1")));
}

// ---------------------------------------------------------------------------
// 4. Crash safety: a refresh killed mid-persist leaves the store loadable
// at the prior version, the old generation serving, and a restart sweeps
// the debris.
// ---------------------------------------------------------------------------

#[test]
fn crash_mid_persist_leaves_store_loadable_at_prior_version() {
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let store = scratch_store("crash-mid-persist");
    store.save("cars.com", &StatsSnapshot::capture(&f.cars_stats, &f.config)).unwrap();

    let cars = WebSource::new("cars.com", f.cars_ed.clone());
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .add_supporting_from_store(&cars, &store);
    assert!(network.knowledge_failures().is_empty());

    let body = global.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    let before = signature(&network.answer(&q).unwrap());
    let prior = store.load_for("cars.com", cars.schema()).unwrap();

    // Fresh statistics that would replace the snapshot — but the process
    // "dies" after writing the temp file, before the rename.
    let fresh =
        SourceStats::mine(&uniform_sample(&f.cars_ed, 0.10, 7), f.cars_ed.len(), &f.config);
    store.inject_persist_fault("cars.com", PersistFault::CrashBeforeRename);
    let err = network.refresh_member("cars.com", |_| Ok(fresh.clone()), Some((&store, &f.config)));
    assert!(err.is_err(), "a crashed persist must fail the refresh");
    assert_eq!(cars.meter().refresh_failures, 1);
    assert_eq!(cars.meter().refreshes, 0);

    // The crash left debris (temp file + journal) next to the snapshot...
    let tmp_debris = store.path_for("cars.com").with_extension("qks.tmp");
    assert!(tmp_debris.exists(), "crash-before-rename must leave the temp file");

    // ...yet the store still loads the *prior* version, and the old
    // generation keeps serving byte-identically — nothing was published.
    let loaded = store.load_for("cars.com", cars.schema()).unwrap();
    assert_eq!(encode_snapshot(&loaded), encode_snapshot(&prior));
    assert_eq!(signature(&network.answer(&q).unwrap()), before);
    assert_eq!(network.member_epochs(), vec![("cars.com".to_string(), 0)]);

    // A restart — reopening the store — runs the recovery sweep: the
    // orphaned temp file and journal are removed, the snapshot survives.
    let reopened = KnowledgeStore::open(store.root().to_path_buf()).unwrap();
    assert!(!tmp_debris.exists(), "reopen must sweep crash debris");
    let reloaded = reopened.load_for("cars.com", cars.schema()).unwrap();
    assert_eq!(encode_snapshot(&reloaded), encode_snapshot(&prior));

    // With the fault consumed, the same refresh now lands: durable first,
    // then published, epoch bumped.
    network
        .refresh_member("cars.com", |_| Ok(fresh.clone()), Some((&reopened, &f.config)))
        .unwrap();
    assert_eq!(network.member_epochs(), vec![("cars.com".to_string(), 1)]);
    assert_eq!(cars.meter().refreshes, 1);
    let healed = reopened.load_for("cars.com", cars.schema()).unwrap();
    assert_ne!(encode_snapshot(&healed), encode_snapshot(&prior));
}

// ---------------------------------------------------------------------------
// 5. Maintenance under live traffic: drift fires, maintain() heals the
// member while concurrent queries keep flowing, and no request is ever
// refused or served a torn answer.
// ---------------------------------------------------------------------------

#[test]
fn maintain_heals_a_drifted_member_under_concurrent_traffic() {
    let _guard = PinnedPool::acquire();
    par::set_thread_override(Some(4));

    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let make = global.expect_attr("make");
    let body = global.expect_attr("body_style");

    let plan = SkewPlan::new(make, Value::str("Monopoly"), 0.9, 77);
    let cars = SkewInjector::new(WebSource::new("cars.com", f.cars_ed.clone()), plan);
    let registry = Arc::new(DriftRegistry::new(
        DriftConfig::default().with_min_observations(20).with_threshold(0.35),
    ));
    let store = scratch_store("maintain-under-traffic");
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_drift(registry.clone())
        .add_supporting(&cars, f.cars_stats.clone());
    // The incremental fast path is pinned off: this scenario checks the
    // *full* re-mine under racing traffic, and whether a fold's delta
    // crosses the bound would depend on how many rows the query threads
    // have streamed by the time maintenance runs.
    let server = QpiadServer::new(network)
        .with_config(
            ServeConfig::default().with_refresh_retries(2).with_prefer_incremental(false),
        )
        .with_knowledge_store(store, f.config.clone());
    server.register(Tenant::interactive("t"));

    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // Pass 1 fires the drift verdict; the member is queued for refresh.
    server.query("t", &q).unwrap();
    assert_eq!(server.metrics().pending_refresh, 1);

    // What the source serves now: the skewed distribution, re-mined.
    let skewed_rows: Vec<_> = f
        .cars_ed
        .tuples()
        .iter()
        .map(|t| {
            if t.value(make).is_null() {
                t.clone()
            } else {
                t.with_value(make, Value::str("Monopoly"))
            }
        })
        .collect();
    let skewed_ed = Relation::new(global.clone(), skewed_rows);
    let fresh =
        SourceStats::mine(&uniform_sample(&skewed_ed, 0.10, 2), skewed_ed.len(), &f.config);

    // Maintenance races a four-thread query flood. Every request must
    // settle — completed, never refused, never torn.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..25 {
                    let answer = server.query("t", &q).unwrap();
                    assert!(!answer.per_source[0].certain.is_empty());
                }
            });
        }
        scope.spawn(|| {
            let report = server.maintain(|name, _| {
                assert_eq!(name, "cars.com");
                Ok(fresh.clone())
            });
            assert_eq!(report.refreshed, vec!["cars.com".to_string()]);
            assert!(report.failed.is_empty());
        });
    });

    let m = server.metrics();
    assert!(m.conserves(), "every admitted request must settle exactly once");
    assert_eq!(m.errors, 0, "no request may fail across the swap");
    assert_eq!(m.refresh_success, 1);
    assert_eq!(m.refresh_failure, 0);
    assert_eq!(m.last_refresh_pass, 1);
    assert_eq!(m.knowledge_epochs, vec![("cars.com".to_string(), 1)]);
    assert_eq!(m.pending_refresh, 0, "the healed member leaves the refresh queue");
    assert!(!registry.is_drifted("cars.com"));

    // EXPLAIN now reports the provenance of the serving generation.
    let explain = server.explain(&q).unwrap();
    assert!(
        explain.contains("knowledge refreshed at pass 1 (epoch 1)"),
        "EXPLAIN must surface the refresh: {explain}"
    );

    // A second maintenance pass finds nothing to do.
    let idle = server.maintain(|_, _| Ok(fresh.clone()));
    assert!(idle.is_idle());
    assert_eq!(idle.pass, 2);
}

// ---------------------------------------------------------------------------
// 6. Failed refreshes under maintain(): bounded retries, cross-pass
// backoff, and the old generation never stops serving.
// ---------------------------------------------------------------------------

#[test]
fn failed_refresh_backs_off_and_keeps_the_old_generation_serving() {
    let _guard = PinnedPool::acquire();
    par::set_thread_override(Some(1));

    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let make = global.expect_attr("make");
    let body = global.expect_attr("body_style");

    let plan = SkewPlan::new(make, Value::str("Monopoly"), 0.9, 77);
    let cars = SkewInjector::new(WebSource::new("cars.com", f.cars_ed.clone()), plan);
    let registry = Arc::new(DriftRegistry::new(
        DriftConfig::default().with_min_observations(20).with_threshold(0.35),
    ));
    let store = scratch_store("maintain-backoff");
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_drift(registry.clone())
        .add_supporting(&cars, f.cars_stats.clone());
    let server = QpiadServer::new(network)
        .with_config(
            ServeConfig::default().with_refresh_retries(2).with_refresh_backoff_base(2),
        )
        .with_knowledge_store(store, f.config.clone());
    server.register(Tenant::interactive("t"));

    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    server.query("t", &q).unwrap();
    assert!(registry.is_drifted("cars.com"));
    let before = signature(&server.query("t", &q).unwrap());

    // Pass 1: mining fails both attempts — the member keeps its old
    // (drift-demoted) generation and backs off for two passes.
    let report = server.maintain(|_, _| {
        Err(qpiad::db::SourceError::Timeout { waited_ms: 5 })
    });
    assert_eq!(report.pass, 1);
    assert_eq!(report.failed.len(), 1);
    assert_eq!(report.retries, 1, "one extra in-pass attempt");
    let m = server.metrics();
    assert_eq!(m.refresh_failure, 1);
    assert_eq!(m.refresh_retries, 1);
    assert_eq!(m.last_refresh_pass, 0, "no refresh ever succeeded");
    assert_eq!(m.knowledge_epochs, vec![("cars.com".to_string(), 0)]);

    // Pass 2: still inside the backoff window — deferred, not retried.
    let deferred = server.maintain(|_, _| panic!("a deferred candidate must not be mined"));
    assert_eq!(deferred.deferred, vec!["cars.com".to_string()]);
    assert!(deferred.failed.is_empty() && deferred.refreshed.is_empty());

    // The old generation kept serving byte-identically throughout.
    assert_eq!(signature(&server.query("t", &q).unwrap()), before);

    // Pass 3: the window elapsed; a now-healthy mine heals the member.
    let fresh =
        SourceStats::mine(&uniform_sample(&f.cars_ed, 0.10, 7), f.cars_ed.len(), &f.config);
    let healed = server.maintain(|_, _| Ok(fresh.clone()));
    assert_eq!(healed.pass, 3);
    assert_eq!(healed.refreshed, vec!["cars.com".to_string()]);
    let m = server.metrics();
    assert_eq!(m.refresh_success, 1);
    assert_eq!(m.last_refresh_pass, 3);
    assert_eq!(m.knowledge_epochs, vec![("cars.com".to_string(), 1)]);
    assert!(m.conserves());
}

// ---------------------------------------------------------------------------
// 7. Incremental maintenance: validated live rows stream into the sample,
// maintain() folds them without a full re-mine, and the whole path replays
// byte-identically across thread counts.
// ---------------------------------------------------------------------------

/// Dataset seed for the incremental scenarios, env-overridable so the CI
/// matrix (`QPIAD_CHAOS_SEED`) exercises different generated worlds.
fn chaos_seed() -> u64 {
    std::env::var("QPIAD_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

fn seeded_fixture() -> Fixture {
    let cars_gd = CarsConfig::default().with_rows(5_000).generate(chaos_seed());
    let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
    let config = MiningConfig::default();
    let cars_stats = SourceStats::mine(&uniform_sample(&cars_ed, 0.10, 2), cars_ed.len(), &config);
    Fixture { cars_ed, cars_stats, config }
}

#[test]
fn maintenance_folds_streamed_rows_without_a_full_remine() {
    let _guard = PinnedPool::acquire();
    par::set_thread_override(Some(4));

    let f = seeded_fixture();
    let global = f.cars_ed.schema().clone();
    let body = global.expect_attr("body_style");

    // An un-skewed source with a hair-trigger drift threshold: the first
    // observed pass queues the member for refresh, but the live rows it
    // streamed are genuine — their folded confidence deltas stay tiny, so
    // the incremental path can serve the refresh.
    let cars = WebSource::new("cars.com", f.cars_ed.clone());
    let registry = Arc::new(DriftRegistry::new(
        DriftConfig::default().with_min_observations(10).with_threshold(0.0),
    ));
    let store = scratch_store("maintain-incremental");
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_drift(registry.clone())
        .add_supporting(&cars, f.cars_stats.clone());
    let server = QpiadServer::new(network)
        .with_config(ServeConfig::default().with_refold_bound(0.5))
        .with_knowledge_store(store, f.config.clone());
    server.register(Tenant::interactive("t"));

    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    server.query("t", &q).unwrap();
    let m = server.metrics();
    assert_eq!(m.pending_refresh, 1, "the hair-trigger verdict must queue the member");
    assert!(m.stream.pending > 0, "validated live rows must be streaming");
    assert!(m.stream.collected > 0);

    // Maintenance folds the streamed rows; the full-mine closure must
    // never run.
    let report = server.maintain(|_, _| panic!("an incremental fold must not re-mine"));
    assert_eq!(report.folded, vec!["cars.com".to_string()]);
    assert!(report.refreshed.is_empty() && report.failed.is_empty());
    assert!(!report.is_idle());

    let m = server.metrics();
    assert_eq!(m.refresh_success, 1);
    assert_eq!(m.refresh_incremental, 1);
    assert_eq!(m.refresh_full, 0);
    assert_eq!(m.last_refresh_pass, 1);
    assert_eq!(m.knowledge_epochs, vec![("cars.com".to_string(), 1)]);
    assert_eq!(m.pending_refresh, 0, "the folded member leaves the refresh queue");
    assert!(m.stream.folded > 0, "consumed rows are charged to the fold");
    assert_eq!(m.stream.pending, 0, "the fold drains the stream");
    assert!(!registry.is_drifted("cars.com"));

    // EXPLAIN names the kind of refresh that produced the serving
    // generation.
    let explain = server.explain(&q).unwrap();
    assert!(
        explain.contains("knowledge refreshed at pass 1 (epoch 1) via incremental fold"),
        "EXPLAIN must surface the fold: {explain}"
    );

    // Service continues on the folded generation.
    let answer = server.query("t", &q).unwrap();
    assert!(!answer.per_source[0].certain.is_empty());
    assert!(server.metrics().conserves());
}

/// Runs verdict → incremental fold → post-fold pass at a given thread
/// count and returns everything observable: both answers' signatures plus
/// the fold's row count and exact max delta.
fn incremental_lifecycle(f: &Fixture, threads: usize) -> Vec<Vec<String>> {
    par::set_thread_override(Some(threads));

    let global = f.cars_ed.schema().clone();
    let body = global.expect_attr("body_style");
    let cars = WebSource::new("cars.com", f.cars_ed.clone());
    let registry = Arc::new(DriftRegistry::new(
        DriftConfig::default().with_min_observations(10).with_threshold(0.0),
    ));
    let store = scratch_store(&format!("incremental-{threads}"));
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_drift(registry.clone())
        .add_supporting(&cars, f.cars_stats.clone());

    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    let first = network.answer(&q).unwrap();
    assert_eq!(registry.pending_refresh(), vec!["cars.com".to_string()], "threads={threads}");

    let fold = network
        .refresh_member_incremental_at("cars.com", &f.config, Some((&store, &f.config)), 0.5, Some(1))
        .unwrap();
    let fold_line = match fold {
        MemberFold::Folded { rows, max_delta } => {
            format!("folded rows={rows} max_delta={:016x}", max_delta.to_bits())
        }
        other => panic!("threads={threads}: expected a fold, got {other:?}"),
    };
    assert_eq!(network.member_epochs(), vec![("cars.com".to_string(), 1)]);
    assert!(store.load_for("cars.com", cars.schema()).is_ok(), "fold persists before publishing");

    let after = network.answer(&q).unwrap();
    vec![signature(&first), vec![fold_line], signature(&after)]
}

#[test]
fn incremental_fold_replays_identically_at_1_and_8_threads() {
    let _guard = PinnedPool::acquire();
    let f = seeded_fixture();
    let sequential = incremental_lifecycle(&f, 1);
    let parallel = incremental_lifecycle(&f, 8);
    assert_eq!(sequential, parallel);
    assert_ne!(
        sequential[0], sequential[2],
        "the folded generation must actually change the served answer's provenance"
    );
}
