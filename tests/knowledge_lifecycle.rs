//! Knowledge lifecycle robustness: durable snapshots, drift detection,
//! and safe re-mining.
//!
//! The mined knowledge a QPIAD mediator runs on is itself a failure
//! domain: snapshot files rot on disk, and live sources evolve away from
//! the sample they were mined from. These scenarios check three
//! properties end to end:
//!
//! 1. **Containment** — a snapshot that fails to load (missing, corrupt,
//!    truncated, version-mismatched, or mined against another schema)
//!    degrades that member to certain-answers-only, charged to
//!    `Degradation::knowledge_unavailable`, instead of failing the
//!    network.
//! 2. **Detection** — a seeded, content-keyed skew of a source's live
//!    responses ([`SkewInjector`]) drives the drift statistic over the
//!    threshold and emits exactly one [`DriftVerdict`]; later passes
//!    demote the drifted member's possible answers until it is re-mined.
//! 3. **Determinism** — drift observation follows the same sequential
//!    snapshot → pass-local probe → sequential absorb protocol as breaker
//!    health, so verdicts, demotions, and post-refresh answers replay
//!    byte-identically at 1 and 8 worker threads.
//!
//! The thread override is process-global; tests serialize on a mutex and
//! restore the default on drop, mirroring `fault_tolerance.rs`.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use qpiad::core::network::{MediatorNetwork, NetworkAnswer, SourceOutcome};
use qpiad::core::{par, QpiadConfig};
use qpiad::data::cars::CarsConfig;
use qpiad::data::corrupt::{corrupt, CorruptionConfig};
use qpiad::data::sample::uniform_sample;
use qpiad::db::{
    AutonomousSource, Predicate, Relation, SelectQuery, SkewInjector, SkewPlan, Value, WebSource,
};
use qpiad::learn::drift::{DriftConfig, DriftRegistry, DriftVerdict};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};
use qpiad::learn::persist::StatsSnapshot;
use qpiad::learn::store::{encode_snapshot, KnowledgeStore};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Holds the override lock and resets the pool size when dropped.
struct PinnedPool<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl PinnedPool<'_> {
    fn acquire() -> Self {
        PinnedPool(OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for PinnedPool<'_> {
    fn drop(&mut self) {
        par::set_thread_override(None);
    }
}

/// A fresh scratch store under `target/` (never outside the repo).
fn scratch_store(name: &str) -> KnowledgeStore {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/test-knowledge-lifecycle")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    KnowledgeStore::open(dir).unwrap()
}

struct Fixture {
    cars_ed: Relation,
    cars_stats: SourceStats,
    config: MiningConfig,
}

fn fixture() -> Fixture {
    let cars_gd = CarsConfig::default().with_rows(5_000).generate(91);
    let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
    let config = MiningConfig::default();
    let cars_stats = SourceStats::mine(&uniform_sample(&cars_ed, 0.10, 2), cars_ed.len(), &config);
    Fixture { cars_ed, cars_stats, config }
}

/// Everything order- and rank-sensitive about a network answer, with float
/// bits compared exactly. Outcomes (including knowledge / drift
/// degradation accounting) are part of the signature.
fn signature(answer: &NetworkAnswer) -> Vec<String> {
    answer
        .per_source
        .iter()
        .flat_map(|part| {
            std::iter::once(format!(
                "source {} via={:?} outcome={:?}",
                part.source, part.via_correlated, part.outcome
            ))
            .chain(part.certain.iter().map(|t| format!("certain {:?}", t.id())))
            .chain(part.possible.iter().map(|r| {
                format!(
                    "possible {:?} conf={:016x} prec={:016x} q={}",
                    r.tuple.id(),
                    r.confidence.to_bits(),
                    r.query_precision.to_bits(),
                    r.query_index
                )
            }))
            .collect::<Vec<_>>()
        })
        .chain(answer.drift_verdicts.iter().map(|v| {
            format!(
                "verdict {} stat={:016x} value={:016x} afd={:016x} observed={}",
                v.source,
                v.statistic.to_bits(),
                v.value_divergence.to_bits(),
                v.afd_divergence.to_bits(),
                v.observed
            )
        }))
        .collect()
}

// ---------------------------------------------------------------------------
// 1. Containment: every load-failure class serves certain answers only.
// ---------------------------------------------------------------------------

#[test]
fn every_load_failure_class_degrades_to_certain_answers_only() {
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let good = encode_snapshot(&StatsSnapshot::capture(&f.cars_stats, &f.config));

    // A snapshot mined against a narrower schema (body_style dropped):
    // decodes fine, but does not match the source it is loaded for.
    let keep: Vec<_> = global
        .attr_ids()
        .filter(|a| global.attr(*a).name() != "body_style")
        .collect();
    let narrow = f.cars_ed.project_to("cars.com", &keep);
    let narrow_stats =
        SourceStats::mine(&uniform_sample(&narrow, 0.10, 2), narrow.len(), &f.config);
    let narrow_text = encode_snapshot(&StatsSnapshot::capture(&narrow_stats, &f.config));

    let cases: [(&str, Option<String>, &str); 5] = [
        ("missing", None, "missing"),
        ("garbage", Some("not a snapshot at all".to_string()), "corrupt"),
        ("truncated", Some(good[..good.len() / 2].to_string()), "corrupt"),
        ("future-version", Some(good.replacen(" v1 ", " v9 ", 1)), "version-mismatch"),
        ("other-schema", Some(narrow_text), "schema-mismatch"),
    ];

    let body = global.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    for (name, contents, expected_kind) in cases {
        let store = scratch_store(name);
        if let Some(text) = contents {
            std::fs::write(store.path_for("cars.com"), text).unwrap();
        }
        let cars = WebSource::new("cars.com", f.cars_ed.clone());
        let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting_from_store(&cars, &store);

        let failures = network.knowledge_failures();
        assert_eq!(failures.len(), 1, "case `{name}`");
        assert_eq!(failures[0].1.kind(), expected_kind, "case `{name}`");

        let answer = network.answer(&q).unwrap();
        let part = &answer.per_source[0];
        assert!(!part.certain.is_empty(), "case `{name}`: certain answers must survive");
        assert!(part.possible.is_empty(), "case `{name}`: no statistics, no possible answers");
        match &part.outcome {
            SourceOutcome::Degraded(d) => {
                assert_eq!(d.knowledge_unavailable, 1, "case `{name}`");
                assert!(d.is_degraded(), "case `{name}`");
            }
            other => panic!("case `{name}`: expected degraded outcome, got {other:?}"),
        }
        assert_eq!(cars.meter().knowledge_unavailable, 1, "case `{name}`");
    }
}

#[test]
fn a_healthy_snapshot_round_trips_through_the_store() {
    let f = fixture();
    let global = f.cars_ed.schema().clone();
    let store = scratch_store("round-trip");
    store.save("cars.com", &StatsSnapshot::capture(&f.cars_stats, &f.config)).unwrap();

    let cars = WebSource::new("cars.com", f.cars_ed.clone());
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .add_supporting_from_store(&cars, &store);
    assert!(network.knowledge_failures().is_empty());

    let body = global.expect_attr("body_style");
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    let restored = network.answer(&q).unwrap();

    // Byte-identical to a network running on the live-mined statistics.
    let live = MediatorNetwork::new(global, QpiadConfig::default().with_k(8))
        .add_supporting(&cars, f.cars_stats.clone());
    let live_answer = live.answer(&q).unwrap();
    assert_eq!(signature(&restored), signature(&live_answer));
    assert!(restored.per_source[0].outcome.is_healthy());
}

// ---------------------------------------------------------------------------
// 2 + 3. Detection and determinism: skewed responses fire one verdict,
// demote the member, and re-mining restores full byte-identical service.
// ---------------------------------------------------------------------------

/// Runs the full drift lifecycle at a given thread count and returns the
/// signatures of the four passes (pre-verdict, verdict, demoted,
/// refreshed) for cross-thread-count comparison.
fn drift_lifecycle(f: &Fixture, threads: usize) -> [Vec<String>; 3] {
    par::set_thread_override(Some(threads));

    let global = f.cars_ed.schema().clone();
    let make = global.expect_attr("make");
    let body = global.expect_attr("body_style");

    // Content-keyed skew: ~90% of returned tuples report make=Monopoly.
    // The mined sample never saw that value, so the make distribution's
    // total-variation distance shoots toward 1.
    let plan = SkewPlan::new(make, Value::str("Monopoly"), 0.9, 77);
    let cars = SkewInjector::new(WebSource::new("cars.com", f.cars_ed.clone()), plan);

    let registry = Arc::new(DriftRegistry::new(
        DriftConfig::default().with_min_observations(20).with_threshold(0.35),
    ));
    let store = scratch_store(&format!("drift-{threads}"));
    let mut network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_drift(registry.clone())
        .add_supporting(&cars, f.cars_stats.clone());

    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

    // Pass 1: the skewed base response alone crosses the threshold — the
    // verdict fires in this pass's sequential absorb phase, so the
    // answers themselves are not yet demoted.
    let first = network.answer(&q).unwrap();
    assert_eq!(first.drift_verdicts.len(), 1, "threads={threads}");
    let verdict: &DriftVerdict = &first.drift_verdicts[0];
    assert_eq!(verdict.source, "cars.com");
    assert!(verdict.statistic >= verdict.threshold);
    assert!(registry.is_drifted("cars.com"));
    assert_eq!(registry.pending_refresh(), vec!["cars.com".to_string()]);
    assert!(cars.meter().drift_events >= 1);

    // Pass 2: the sticky verdict demotes this pass up front. The verdict
    // is not re-issued.
    let demoted = network.answer(&q).unwrap();
    assert!(demoted.drift_verdicts.is_empty());
    match &demoted.per_source[0].outcome {
        SourceOutcome::Degraded(d) => assert!(d.drift_demoted, "threads={threads}"),
        other => panic!("expected drift-demoted outcome, got {other:?}"),
    }
    // Demotion scales every possible answer's precision by the factor.
    for (before, after) in first.per_source[0].possible.iter().zip(&demoted.per_source[0].possible)
    {
        assert_eq!(after.query_precision.to_bits(), (before.query_precision * 0.5).to_bits());
    }

    // Re-mine from what the source returns *now* (the skewed
    // distribution) and atomically swap it in, persisting the snapshot.
    let skewed_rows: Vec<_> = f
        .cars_ed
        .tuples()
        .iter()
        .map(|t| {
            if t.value(make).is_null() {
                t.clone()
            } else {
                t.with_value(make, Value::str("Monopoly"))
            }
        })
        .collect();
    let skewed_ed = Relation::new(global.clone(), skewed_rows);
    let fresh_stats =
        SourceStats::mine(&uniform_sample(&skewed_ed, 0.10, 2), skewed_ed.len(), &f.config);
    network
        .refresh_member("cars.com", |_| Ok(fresh_stats.clone()), Some((&store, &f.config)))
        .unwrap();
    assert!(!registry.is_drifted("cars.com"), "threads={threads}");
    assert!(registry.pending_refresh().is_empty());
    assert!(store.load_for("cars.com", cars.schema()).is_ok());

    // Pass 3: full service again on knowledge that matches the live
    // distribution — no demotion, no new verdict.
    let refreshed = network.answer(&q).unwrap();
    assert!(refreshed.drift_verdicts.is_empty());
    assert!(!refreshed.per_source[0].possible.is_empty());
    match &refreshed.per_source[0].outcome {
        SourceOutcome::Healthy => {}
        SourceOutcome::Degraded(d) => {
            assert!(!d.drift_demoted, "threads={threads}: refresh must clear the demotion")
        }
        other => panic!("unexpected outcome after refresh: {other:?}"),
    }

    [signature(&first), signature(&demoted), signature(&refreshed)]
}

#[test]
fn skewed_responses_fire_one_verdict_and_refresh_restores_service() {
    let _guard = PinnedPool::acquire();
    let f = fixture();
    let [first, demoted, refreshed] = drift_lifecycle(&f, 1);
    assert_ne!(first, demoted, "demotion must change the answer");
    assert_ne!(demoted, refreshed, "refresh must change the answer");
}

#[test]
fn drift_lifecycle_replays_identically_at_1_and_8_threads() {
    let _guard = PinnedPool::acquire();
    let f = fixture();
    let sequential = drift_lifecycle(&f, 1);
    let parallel = drift_lifecycle(&f, 8);
    assert_eq!(sequential, parallel);
}

// ---------------------------------------------------------------------------
// Mixed-lifecycle network: broken knowledge, drifting knowledge, and a
// deficient member all in one pass, replayed across thread counts.
// ---------------------------------------------------------------------------

fn mixed_network_passes(f: &Fixture, threads: usize) -> Vec<Vec<String>> {
    par::set_thread_override(Some(threads));
    let global = f.cars_ed.schema().clone();
    let make = global.expect_attr("make");
    let body = global.expect_attr("body_style");

    let cars = SkewInjector::new(
        WebSource::new("cars.com", f.cars_ed.clone()),
        SkewPlan::new(make, Value::str("Monopoly"), 0.9, 77),
    );

    // auctions: supporting, but its snapshot is corrupt on disk.
    let store = scratch_store(&format!("mixed-{threads}"));
    std::fs::write(store.path_for("auctions"), "garbage").unwrap();
    let auctions_gd = CarsConfig::default().with_rows(5_000).generate(93);
    let (auctions_ed, _) = corrupt(&auctions_gd, &CorruptionConfig::default().with_seed(3));
    let auctions_ed =
        auctions_ed.project_to("auctions", &global.attr_ids().collect::<Vec<_>>());
    let auctions = WebSource::new("auctions", auctions_ed);

    // yahoo: deficient (no body_style), served through the correlated
    // supporting member.
    let keep: Vec<_> = global
        .attr_ids()
        .filter(|a| global.attr(*a).name() != "body_style")
        .collect();
    let yahoo_local = CarsConfig::default()
        .with_rows(5_000)
        .generate(92)
        .project_to("yahoo_autos", &keep);
    let yahoo = WebSource::new("yahoo_autos", yahoo_local);

    let registry =
        Arc::new(DriftRegistry::new(DriftConfig::default().with_min_observations(20)));
    let network = MediatorNetwork::new(global.clone(), QpiadConfig::default().with_k(8))
        .with_drift(registry)
        .add_supporting(&cars, f.cars_stats.clone())
        .add_supporting_from_store(&auctions, &store)
        .add_deficient(&yahoo);
    assert_eq!(network.knowledge_failures().len(), 1);

    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    (0..3).map(|_| signature(&network.answer(&q).unwrap())).collect()
}

#[test]
fn mixed_lifecycle_network_replays_identically_across_thread_counts() {
    let _guard = PinnedPool::acquire();
    let f = fixture();
    let sequential = mixed_network_passes(&f, 1);
    let parallel = mixed_network_passes(&f, 8);
    assert_eq!(sequential, parallel);

    // The corrupt-store member keeps serving certain answers in every
    // pass, and the drifted member's demotion shows up from pass 2 on.
    assert!(sequential[0].iter().any(|l| l.contains("verdict cars.com")));
    assert!(sequential[1].iter().any(|l| l.contains("drift_demoted: true")));
    assert!(sequential[2]
        .iter()
        .any(|l| l.contains("source auctions") && l.contains("knowledge_unavailable: 1")));
}
