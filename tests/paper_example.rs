//! Reproduces the paper's running example end-to-end (§4.1, Tables 2–3):
//! the Table 2 car fragment, the query `Q: σ[Body Style = Convt]`, the
//! mined AFD `Model ⇝ Body Style`, and the rewritten queries
//! `Q'1: σ[Model = A4]`, `Q'2: σ[Model = Z4]`, `Q'3: σ[Model = Boxster]`.

use std::collections::BTreeSet;
use std::sync::Arc;

use qpiad::core::mediator::{Qpiad, QpiadConfig};
use qpiad::core::rewrite::generate_rewrites;
use qpiad::db::{
    AttrType, PredOp, Predicate, Relation, Schema, SelectQuery, Tuple, TupleId, Value, WebSource,
};
use qpiad::learn::knowledge::{MiningConfig, SourceStats};

fn schema() -> Arc<Schema> {
    Schema::of(
        "cars",
        &[
            ("make", AttrType::Categorical),
            ("model", AttrType::Categorical),
            ("year", AttrType::Integer),
            ("body_style", AttrType::Categorical),
        ],
    )
}

/// The exact Table 2 fragment (ids 1–6 in the paper).
fn table2(_schema: &Arc<Schema>) -> Vec<Tuple> {
    let rows: Vec<(&str, &str, i64, Option<&str>)> = vec![
        ("Audi", "A4", 2001, Some("Convt")),
        ("BMW", "Z4", 2002, Some("Convt")),
        ("Porsche", "Boxster", 2005, Some("Convt")),
        ("BMW", "Z4", 2003, None),
        ("Honda", "Civic", 2004, None),
        ("Toyota", "Camry", 2002, Some("Sedan")),
    ];
    rows.into_iter()
        .enumerate()
        .map(|(i, (mk, md, y, b))| {
            Tuple::new(
                TupleId(i as u32),
                vec![
                    Value::str(mk),
                    Value::str(md),
                    Value::int(y),
                    b.map(Value::str).unwrap_or(Value::Null),
                ],
            )
        })
        .collect()
}

/// A training sample exhibiting `Model ⇝ Body Style` (the fragment alone is
/// too small to mine from — the mediator samples the source, §5).
fn training_sample(schema: &Arc<Schema>) -> Relation {
    let mut tuples = Vec::new();
    let mut id = 100u32;
    // Each make sells several models with different body styles, so the
    // mined dependency is Model ⇝ Body Style, not Make ⇝ Body Style.
    let catalog: Vec<(&str, &str, &str)> = vec![
        ("Audi", "A4", "Convt"),
        ("Audi", "TT", "Coupe"),
        ("BMW", "Z4", "Convt"),
        ("BMW", "325i", "Sedan"),
        ("Porsche", "Boxster", "Convt"),
        ("Porsche", "911", "Coupe"),
        ("Honda", "Civic", "Sedan"),
        ("Honda", "Odyssey", "Van"),
        ("Toyota", "Camry", "Sedan"),
        ("Toyota", "Tacoma", "Truck"),
    ];
    for (make, model, body) in catalog {
        for year in [2001i64, 2002, 2003, 2004] {
            for _ in 0..3 {
                tuples.push(Tuple::new(
                    TupleId(id),
                    vec![
                        Value::str(make),
                        Value::str(model),
                        Value::int(year),
                        Value::str(body),
                    ],
                ));
                id += 1;
            }
        }
    }
    // One contrary row keeps the dependency approximate, not exact.
    tuples.push(Tuple::new(
        TupleId(id),
        vec![
            Value::str("BMW"),
            Value::str("Z4"),
            Value::int(2002),
            Value::str("Coupe"),
        ],
    ));
    Relation::new(schema.clone(), tuples)
}

/// §4.2's multi-attribute example: `Q: σ[Model=Accord ∧ Price between
/// 15000 and 20000]` with AFDs `{Make, Body Style} ⇝ Model` and
/// `{Year, Model} ⇝ Price`. The first rewriting iteration replaces the
/// Model constraint with Make/Body-Style equalities (keeping the Price
/// range); the second keeps `Model=Accord` and adds Year equalities
/// (dropping the Price constraint).
#[test]
fn section_4_2_multi_attribute_example() {
    let schema = Schema::of(
        "cars",
        &[
            ("make", AttrType::Categorical),
            ("model", AttrType::Categorical),
            ("year", AttrType::Integer),
            ("body_style", AttrType::Categorical),
            ("price", AttrType::Integer),
        ],
    );
    let make = schema.expect_attr("make");
    let model = schema.expect_attr("model");
    let year = schema.expect_attr("year");
    let body = schema.expect_attr("body_style");
    let price = schema.expect_attr("price");

    // Sample where {make, body_style} determines model and {year, model}
    // determines price (both approximately — one contrary row each).
    let catalog: Vec<(&str, &str, &str)> = vec![
        ("Honda", "Accord", "Sedan"),
        ("Honda", "Civic", "Coupe"),
        ("Honda", "Odyssey", "Van"),
        ("Toyota", "Camry", "Sedan"),
        ("Toyota", "Celica", "Coupe"),
        ("BMW", "325i", "Sedan"),
        ("BMW", "Z4", "Coupe"),
    ];
    let mut tuples = Vec::new();
    let mut id = 0u32;
    for (mi, (mk, md, bd)) in catalog.iter().enumerate() {
        for (yi, yr) in [2001i64, 2002, 2003].iter().enumerate() {
            // Price determined by (year, model) jointly: a model-specific
            // base plus a year step — neither attribute alone suffices.
            let p = 14_000 + (mi as i64) * 1_000 + (yi as i64) * 2_000;
            for _ in 0..3 {
                tuples.push(Tuple::new(
                    TupleId(id),
                    vec![
                        Value::str(*mk),
                        Value::str(*md),
                        Value::int(*yr),
                        Value::str(*bd),
                        Value::int(p),
                    ],
                ));
                id += 1;
            }
        }
    }
    // Contrary rows keep both dependencies approximate.
    tuples.push(Tuple::new(
        TupleId(id),
        vec![
            Value::str("Honda"),
            Value::str("Accord"),
            Value::int(2001),
            Value::str("Sedan"),
            Value::int(99_000),
        ],
    ));
    tuples.push(Tuple::new(
        TupleId(id + 1),
        vec![
            Value::str("Honda"),
            Value::str("Prelude"),
            Value::int(2002),
            Value::str("Sedan"),
            Value::int(16_000),
        ],
    ));
    let sample = Relation::new(schema.clone(), tuples);
    let stats = SourceStats::mine(&sample, 1_000, &MiningConfig::default());

    // The paper's two AFDs (as determining sets).
    let dtr_model: BTreeSet<_> = stats
        .determining_set(model)
        .expect("AFD for model")
        .iter()
        .copied()
        .collect();
    assert_eq!(dtr_model, [make, body].into_iter().collect::<BTreeSet<_>>());
    let dtr_price: BTreeSet<_> = stats
        .determining_set(price)
        .expect("AFD for price")
        .iter()
        .copied()
        .collect();
    assert_eq!(dtr_price, [model, year].into_iter().collect::<BTreeSet<_>>());

    // Rewrite Q.
    let q = SelectQuery::new(vec![
        Predicate::eq(model, "Accord"),
        Predicate::between(price, 15_000i64, 20_000i64),
    ]);
    let base = sample.select(&q);
    assert!(!base.is_empty());
    let rewrites = generate_rewrites(&q, &base, &stats);
    assert!(!rewrites.is_empty());

    let mut saw_model_iteration = false;
    let mut saw_price_iteration = false;
    for rq in &rewrites {
        if rq.target_attr == model {
            // Q'1-style: Make/Body equalities plus the untouched Price range.
            saw_model_iteration = true;
            assert!(rq.query.predicate_on(model).is_none());
            assert!(matches!(rq.query.predicate_on(make).map(|p| &p.op), Some(PredOp::Eq(_))));
            assert!(matches!(rq.query.predicate_on(body).map(|p| &p.op), Some(PredOp::Eq(_))));
            assert!(matches!(
                rq.query.predicate_on(price).map(|p| &p.op),
                Some(PredOp::Between(_, _))
            ));
        } else if rq.target_attr == price {
            // Q'3-style: Model=Accord kept, Year equality added, Price gone.
            saw_price_iteration = true;
            assert!(rq.query.predicate_on(price).is_none());
            assert_eq!(
                rq.query.predicate_on(model).map(|p| &p.op),
                Some(&PredOp::Eq(Value::str("Accord")))
            );
            assert!(matches!(rq.query.predicate_on(year).map(|p| &p.op), Some(PredOp::Eq(_))));
        }
    }
    assert!(saw_model_iteration, "no rewrites targeting Model");
    assert!(saw_price_iteration, "no rewrites targeting Price");
}

#[test]
fn section_4_1_running_example() {
    let schema = schema();
    let model = schema.expect_attr("model");
    let body = schema.expect_attr("body_style");

    let sample = training_sample(&schema);
    let stats = SourceStats::mine(&sample, 1_000, &MiningConfig::default());

    // The paper's mined AFD: Model ⇝ Body Style.
    let dtr = stats.determining_set(body).expect("AFD for body style");
    assert_eq!(dtr, &[model], "dtrSet(Body Style) = {{Model}}");

    // The base result set of Q: t1, t2, t3.
    let fragment = Relation::new(schema.clone(), table2(&schema));
    let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
    let base = fragment.select(&q);
    assert_eq!(
        base.iter().map(|t| t.id()).collect::<Vec<_>>(),
        vec![TupleId(0), TupleId(1), TupleId(2)]
    );

    // The three rewritten queries of §4.1, one per distinct base-set model.
    let rewrites = generate_rewrites(&q, &base, &stats);
    let rewritten_models: BTreeSet<String> = rewrites
        .iter()
        .map(|rq| {
            let preds = rq.query.predicates();
            assert_eq!(preds.len(), 1, "single-predicate rewrites");
            assert_eq!(preds[0].attr, model);
            match &preds[0].op {
                PredOp::Eq(v) => v.to_string(),
                other => panic!("expected equality, got {other:?}"),
            }
        })
        .collect();
    assert_eq!(
        rewritten_models,
        ["A4", "Z4", "Boxster"]
            .iter()
            .map(|s| s.to_string())
            .collect::<BTreeSet<_>>()
    );

    // End to end: Q'2 retrieves t4 (the null-body Z4) as a ranked possible
    // answer; t5 (Civic, null body) is never retrieved — exactly the
    // paper's point about AllReturned's false positives.
    let source = WebSource::new("cars.com", fragment);
    let qpiad = Qpiad::new(stats, QpiadConfig::default().with_k(10));
    let answers = qpiad.answer(&source, &q).unwrap();
    let possible_ids: Vec<TupleId> = answers.possible.iter().map(|a| a.tuple.id()).collect();
    assert_eq!(possible_ids, vec![TupleId(3)], "t4 and only t4");
    let t4 = &answers.possible[0];
    assert!(t4.confidence > 0.8, "Z4 is almost surely a convertible");
    let explanation = t4.explanation.as_ref().expect("AFD explanation");
    assert_eq!(explanation.lhs, vec![model]);
    assert_eq!(explanation.rhs, body);
}
