//! Join queries over two incomplete autonomous sources (§4.5).
//!
//! A join query posed to the mediator splits into one selection per
//! relation. Each side contributes its *complete* query (the original
//! selection) plus rewritten queries; the mediator then scores every
//! **query pair** — precision `p1·p2`, selectivity from the expected overlap
//! of the two sides' join-attribute value distributions — orders pairs by
//! F-measure, issues the top-K pairs' component queries (each component only
//! once), and joins the results, predicting missing join-attribute values
//! with the classifiers.

use std::collections::{HashMap, HashSet};

use qpiad_db::fault::RetryPolicy;
use qpiad_db::{
    AttrId, AutonomousSource, JoinQuery, PredOp, SelectQuery, SourceError, Tuple, TupleId, Value,
};
use qpiad_learn::knowledge::SourceStats;

use crate::mediator::{Degradation, QueryContext};
use crate::plan::{self, AdmissionMode, BaseGate, EntryStatus, MediationPlan, PlanEntry};
use crate::rank::f_measure;
use crate::rewrite::{generate_rewrites, RewrittenQuery};

/// Join processing configuration.
#[derive(Debug, Clone, Copy)]
pub struct JoinConfig {
    /// F-measure α for pair ordering. The paper recommends α > 0 here:
    /// pure precision ordering tends to starve one side of possible
    /// answers (§6.6).
    pub alpha: f64,
    /// Number of query pairs to issue.
    pub k_pairs: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        JoinConfig { alpha: 0.5, k_pairs: 10 }
    }
}

/// One side of the join: the source and its mined statistics.
pub struct JoinSide<'a> {
    /// The autonomous source.
    pub source: &'a dyn AutonomousSource,
    /// Statistics mined from the source's sample.
    pub stats: &'a SourceStats,
}

/// A joined result tuple.
#[derive(Debug, Clone)]
pub struct JoinedTuple {
    /// The left tuple.
    pub left: Tuple,
    /// The right tuple.
    pub right: Tuple,
    /// The join-attribute value the pair agreed on.
    pub join_value: Value,
    /// Combined relevance: product of both sides' tuple confidences and of
    /// any predicted-join-value probabilities.
    pub confidence: f64,
    /// Rank of the issuing query pair.
    pub pair_index: usize,
    /// Whether the left tuple is a certain answer of the left selection
    /// (with a stored, non-predicted join value).
    pub left_certain: bool,
    /// Whether the right tuple is a certain answer of the right selection.
    pub right_certain: bool,
}

impl JoinedTuple {
    /// `true` iff both sides certainly match and no join value was
    /// predicted — the joined tuple a conventional mediator would also
    /// produce.
    pub fn is_certain(&self) -> bool {
        self.left_certain && self.right_certain
    }
}

/// The join answer: joined tuples in pair-rank order.
#[derive(Debug, Clone, Default)]
pub struct JoinAnswer {
    /// Joined tuples (certain joins first — they come from the
    /// highest-precision pair).
    pub results: Vec<JoinedTuple>,
    /// How many query pairs were issued.
    pub pairs_issued: usize,
}

/// One side's candidate query with everything pair scoring needs.
struct Candidate {
    query: SelectQuery,
    precision: f64,
    est_size: f64,
    /// Distribution over join-attribute values among the tuples this query
    /// is expected to retrieve.
    join_dist: HashMap<Value, f64>,
}

/// A per-tuple record after side-local post-filtering.
struct Qualified {
    tuple: Tuple,
    confidence: f64,
    join_value: Value,
    /// Certain answer of the side's selection with a stored join value.
    certain: bool,
}

/// Answers a join query over two incomplete sources.
pub fn answer_join(
    left: &JoinSide<'_>,
    right: &JoinSide<'_>,
    config: &JoinConfig,
    query: &JoinQuery,
) -> Result<JoinAnswer, SourceError> {
    // Step 1: base sets. Joins run unguarded (no breaker/budget of their
    // own), so the shared executor sees an unbounded context and a
    // single-attempt policy throughout.
    let retry = RetryPolicy::none();
    let base_l = {
        let mut ctx = QueryContext::unbounded();
        let mut degraded = Degradation::default();
        plan::execute_base(left.source, &query.left, &retry, &mut ctx, &mut degraded, BaseGate::Guarded)?
    };
    let base_r = {
        let mut ctx = QueryContext::unbounded();
        let mut degraded = Degradation::default();
        plan::execute_base(right.source, &query.right, &retry, &mut ctx, &mut degraded, BaseGate::Guarded)?
    };

    // Steps 2–3: candidate queries with join-value distributions.
    let cands_l = candidates(left, &query.left, &base_l, query.left_attr);
    let cands_r = candidates(right, &query.right, &base_r, query.right_attr);

    // Step 3c: pair scoring.
    let mut pairs: Vec<(f64, f64, usize, usize)> = Vec::new(); // (F placeholder via sel, precision, i, j)
    let mut sels: Vec<f64> = Vec::new();
    for (i, cl) in cands_l.iter().enumerate() {
        for (j, cr) in cands_r.iter().enumerate() {
            let sel = pair_selectivity(cl, cr);
            let precision = cl.precision * cr.precision;
            pairs.push((sel, precision, i, j));
            sels.push(sel);
        }
    }
    let total_sel: f64 = sels.iter().sum();

    // Step 4: F-measure ordering, top-K, precision re-ordering.
    let mut scored: Vec<(f64, f64, usize, usize)> = pairs
        .into_iter()
        .map(|(sel, precision, i, j)| {
            let recall = if total_sel > 0.0 { sel / total_sel } else { 0.0 };
            let f = if total_sel > 0.0 {
                f_measure(precision, recall, config.alpha)
            } else {
                precision
            };
            (f, precision, i, j)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| b.1.total_cmp(&a.1))
            .then_with(|| (a.2, a.3).cmp(&(b.2, b.3)))
    });
    scored.truncate(config.k_pairs);
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| (a.2, a.3).cmp(&(b.2, b.3))));

    // Step 5: issue each component query once, per side, in first-needed
    // pair order — one batch plan per side through the shared executor, so
    // the issue order (and any budget cutoff) is exactly what the pair
    // loop would have produced on demand.
    let order_l = first_needed(&scored, |s| s.2);
    let order_r = first_needed(&scored, |s| s.3);
    let cache_l =
        retrieve_components(left, &query.left, query.left_attr, &base_l, &cands_l, &order_l);
    let cache_r =
        retrieve_components(right, &query.right, query.right_attr, &base_r, &cands_r, &order_r);
    let mut joined: Vec<JoinedTuple> = Vec::new();
    let mut seen: HashSet<(TupleId, TupleId)> = HashSet::new();
    let mut pairs_issued = 0usize;

    for (pair_index, (_, _, i, j)) in scored.into_iter().enumerate() {
        // A component missing from a side's cache means its query budget
        // ran out before the component could be issued.
        let (Some(lhs), Some(rhs)) = (cache_l.get(&i), cache_r.get(&j)) else {
            continue;
        };
        pairs_issued += 1;

        // Step 6: hash join on (actual or predicted) join values.
        let mut by_value: HashMap<&Value, Vec<&Qualified>> = HashMap::new();
        for q in rhs {
            by_value.entry(&q.join_value).or_default().push(q);
        }
        for ql in lhs {
            let Some(matches) = by_value.get(&ql.join_value) else {
                continue;
            };
            for qr in matches {
                if !seen.insert((ql.tuple.id(), qr.tuple.id())) {
                    continue;
                }
                joined.push(JoinedTuple {
                    left: ql.tuple.clone(),
                    right: qr.tuple.clone(),
                    join_value: ql.join_value.clone(),
                    confidence: ql.confidence * qr.confidence,
                    pair_index,
                    left_certain: ql.certain,
                    right_certain: qr.certain,
                });
            }
        }
    }

    Ok(JoinAnswer { results: joined, pairs_issued })
}

/// Builds one side's candidate queries: the complete query plus rewrites.
fn candidates(
    side: &JoinSide<'_>,
    select: &SelectQuery,
    base: &[Tuple],
    join_attr: AttrId,
) -> Vec<Candidate> {
    let mut out = Vec::new();

    // The complete query: precision 1, true cardinality, empirical join
    // distribution over its (already retrieved) base set.
    let mut dist: HashMap<Value, f64> = HashMap::new();
    let mut n = 0f64;
    for t in base {
        let v = t.value(join_attr);
        if !v.is_null() {
            *dist.entry(v.clone()).or_default() += 1.0;
            n += 1.0;
        }
    }
    if n > 0.0 {
        for p in dist.values_mut() {
            *p /= n;
        }
    }
    out.push(Candidate {
        query: select.clone(),
        precision: 1.0,
        est_size: base.len() as f64,
        join_dist: dist,
    });

    // Rewritten queries: classifier-based join distribution given the
    // query's equality constraints (point mass when the join attribute is
    // itself constrained).
    for rq in generate_rewrites(select, base, side.stats) {
        let join_dist = match rq.query.predicate_on(join_attr).map(|p| &p.op) {
            Some(PredOp::Eq(v)) => {
                let mut d = HashMap::new();
                d.insert(v.clone(), 1.0);
                d
            }
            _ => {
                let pseudo = pseudo_tuple(side.stats.schema().arity(), &rq.query);
                side.stats
                    .predictor()
                    .distribution(join_attr, &pseudo)
                    .into_iter()
                    .collect()
            }
        };
        out.push(Candidate {
            query: rq.query,
            precision: rq.precision,
            est_size: rq.est_selectivity,
            join_dist,
        });
    }
    out
}

/// A tuple carrying exactly the equality constraints of a query (evidence
/// for the join-value classifier).
fn pseudo_tuple(arity: usize, query: &SelectQuery) -> Tuple {
    let mut values = vec![Value::Null; arity];
    for p in query.predicates() {
        if let PredOp::Eq(v) = &p.op {
            values[p.attr.index()] = v.clone();
        }
    }
    Tuple::new(TupleId(u32::MAX), values)
}

/// Expected number of joined tuples a pair produces (§4.5 step 3):
/// `Σ_v EstSel(q1, v) · EstSel(q2, v)` with
/// `EstSel(q, v) = precision(q) · selectivity(q) · P_q(join = v)`.
fn pair_selectivity(l: &Candidate, r: &Candidate) -> f64 {
    let (small, large) = if l.join_dist.len() <= r.join_dist.len() {
        (l, r)
    } else {
        (r, l)
    };
    small
        .join_dist
        .iter()
        .filter_map(|(v, p_small)| {
            large.join_dist.get(v).map(|p_large| {
                (small.precision * small.est_size * p_small)
                    * (large.precision * large.est_size * p_large)
            })
        })
        .sum()
}

/// The distinct candidate indices of one side, in the order the pair loop
/// first needs them.
fn first_needed<F>(scored: &[(f64, f64, usize, usize)], pick: F) -> Vec<usize>
where
    F: Fn(&(f64, f64, usize, usize)) -> usize,
{
    let mut seen: HashSet<usize> = HashSet::new();
    let mut order = Vec::new();
    for s in scored {
        let i = pick(s);
        if seen.insert(i) {
            order.push(i);
        }
    }
    order
}

/// Issues one side's component queries (each once, in first-needed order)
/// through the shared executor and post-filters the results into qualified
/// join inputs. A component the side's query budget cut off is simply
/// absent from the returned map; index 0 (the complete query) reuses the
/// already-retrieved base set.
fn retrieve_components(
    side: &JoinSide<'_>,
    select: &SelectQuery,
    join_attr: AttrId,
    base: &[Tuple],
    cands: &[Candidate],
    order: &[usize],
) -> HashMap<usize, Vec<Qualified>> {
    let mut cache: HashMap<usize, Vec<Qualified>> = HashMap::new();
    let mut ctx = QueryContext::unbounded();
    let mut degraded = Degradation::default();
    let retry = RetryPolicy::none();
    let mut side_plan = MediationPlan::new(
        side.source.name().to_string(),
        select.clone(),
        retry,
        AdmissionMode::PlanTime,
    );
    // Plan rank → candidate index (index 0 never enters the plan).
    let mut slots: Vec<usize> = Vec::new();
    for &i in order {
        if i == 0 {
            cache.insert(0, qualify(side, select, join_attr, base.to_vec()));
            continue;
        }
        let cand = &cands[i];
        side_plan.push(PlanEntry {
            rewrite: RewrittenQuery {
                query: cand.query.clone(),
                target_attr: join_attr,
                precision: cand.precision,
                est_selectivity: cand.est_size,
                afd: None,
            },
            issue: cand.query.clone(),
            fmeasure: cand.precision,
            status: EntryStatus::Deferred,
        });
        slots.push(i);
    }
    side_plan.admit(&mut ctx, &mut degraded);
    plan::execute(side.source, &side_plan, &mut ctx, &mut degraded, |rank, _, tuples, _| {
        cache.insert(slots[rank], qualify(side, select, join_attr, tuples));
    });
    cache
}

/// Post-filters one component query's tuples into qualified join inputs.
fn qualify(
    side: &JoinSide<'_>,
    select: &SelectQuery,
    join_attr: AttrId,
    tuples: Vec<Tuple>,
) -> Vec<Qualified> {
    let constrained = select.constrained_attrs();
    let mut qualified = Vec::with_capacity(tuples.len());
    for t in tuples {
        let certain = select.matches(&t);
        if !certain {
            if !select.possibly_matches(&t) {
                continue;
            }
            if t.null_count_among(&constrained) > 1 {
                continue;
            }
        }
        // Tuple-level relevance confidence.
        let mut confidence = 1.0;
        for p in select.predicates() {
            if t.value(p.attr).is_null() {
                confidence *= side.stats.predictor().prob_matching(p.attr, &t, &p.op);
            }
        }
        // Join value: actual, or the completion implied by the possible-
        // answer hypothesis. When the selection constrains the join
        // attribute itself (e.g. `model = Grand Cherokee` joined on model),
        // a tuple missing that value only answers the query if the missing
        // value *is* the queried one — its confidence already carries that
        // probability — so the join value is pinned, not predicted.
        // Otherwise the most likely completion is used (§4.5 step 6).
        let join_is_stored = !t.value(join_attr).is_null();
        let (join_value, join_prob) = {
            let v = t.value(join_attr);
            if !v.is_null() {
                (v.clone(), 1.0)
            } else if let Some(PredOp::Eq(pinned)) =
                select.predicate_on(join_attr).map(|p| &p.op)
            {
                (pinned.clone(), 1.0)
            } else {
                match side.stats.predictor().predict(join_attr, &t) {
                    Some((v, p)) => (v, p),
                    None => continue,
                }
            }
        };
        qualified.push(Qualified {
            tuple: t,
            confidence: confidence * join_prob,
            join_value,
            certain: certain && join_is_stored,
        });
    }
    qualified
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::complaints::ComplaintsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::{Predicate, Relation, WebSource};
    use qpiad_learn::knowledge::{MiningConfig, SourceStats};

    fn setup() -> (Relation, Relation, WebSource, WebSource, SourceStats, SourceStats) {
        let cars_gd = CarsConfig::default().with_rows(6_000).generate(71);
        let comp_gd = ComplaintsConfig { rows: 8_000 }.generate(72);
        let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
        let (comp_ed, _) = corrupt(&comp_gd, &CorruptionConfig::default().with_seed(2));
        let cars_stats = SourceStats::mine(
            &uniform_sample(&cars_ed, 0.10, 3),
            cars_ed.len(),
            &MiningConfig::default(),
        );
        let comp_stats = SourceStats::mine(
            &uniform_sample(&comp_ed, 0.10, 4),
            comp_ed.len(),
            &MiningConfig::default(),
        );
        (
            cars_gd,
            comp_gd,
            WebSource::new("cars.com", cars_ed),
            WebSource::new("complaints", comp_ed),
            cars_stats,
            comp_stats,
        )
    }

    fn paper_query(cars: &WebSource, comps: &WebSource) -> JoinQuery {
        // Figure 13(a): Model = Grand Cherokee ⋈ General Component =
        // Engine and Engine Cooling.
        let model_l = cars.schema().expect_attr("model");
        let model_r = comps.schema().expect_attr("model");
        let gc = comps.schema().expect_attr("general_component");
        JoinQuery {
            left: SelectQuery::new(vec![Predicate::eq(model_l, "Grand Cherokee")]),
            right: SelectQuery::new(vec![Predicate::eq(gc, "Engine and Engine Cooling")]),
            left_attr: model_l,
            right_attr: model_r,
        }
    }

    #[test]
    fn join_produces_certain_and_possible_results() {
        let (_, _, cars, comps, cs, ps) = setup();
        let jq = paper_query(&cars, &comps);
        let ans = answer_join(
            &JoinSide { source: &cars, stats: &cs },
            &JoinSide { source: &comps, stats: &ps },
            &JoinConfig::default(),
            &jq,
        )
        .unwrap();
        assert!(!ans.results.is_empty());
        assert!(ans.pairs_issued > 0 && ans.pairs_issued <= 10);
        let certain = ans.results.iter().filter(|j| j.is_certain()).count();
        assert!(certain > 0, "certain ⋈ certain pairs must join");
        // All joined tuples agree on the join value.
        for j in &ans.results {
            assert!(!j.join_value.is_null());
            assert!((0.0..=1.0 + 1e-9).contains(&j.confidence));
        }
    }

    #[test]
    fn join_values_agree_with_tuples_or_predictions() {
        let (_, _, cars, comps, cs, ps) = setup();
        let jq = paper_query(&cars, &comps);
        let ans = answer_join(
            &JoinSide { source: &cars, stats: &cs },
            &JoinSide { source: &comps, stats: &ps },
            &JoinConfig::default(),
            &jq,
        )
        .unwrap();
        for j in &ans.results {
            let lv = j.left.value(jq.left_attr);
            let rv = j.right.value(jq.right_attr);
            if !lv.is_null() {
                assert_eq!(lv, &j.join_value);
            }
            if !rv.is_null() {
                assert_eq!(rv, &j.join_value);
            }
        }
    }

    #[test]
    fn no_duplicate_joined_pairs() {
        let (_, _, cars, comps, cs, ps) = setup();
        let jq = paper_query(&cars, &comps);
        let ans = answer_join(
            &JoinSide { source: &cars, stats: &cs },
            &JoinSide { source: &comps, stats: &ps },
            &JoinConfig { alpha: 2.0, k_pairs: 20 },
            &jq,
        )
        .unwrap();
        let mut keys: Vec<(TupleId, TupleId)> = ans
            .results
            .iter()
            .map(|j| (j.left.id(), j.right.id()))
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before);
    }

    #[test]
    fn alpha_zero_is_precision_heavy() {
        let (_, _, cars, comps, cs, ps) = setup();
        let jq = paper_query(&cars, &comps);
        let precise = answer_join(
            &JoinSide { source: &cars, stats: &cs },
            &JoinSide { source: &comps, stats: &ps },
            &JoinConfig { alpha: 0.0, k_pairs: 10 },
            &jq,
        )
        .unwrap();
        cars.reset_meter();
        comps.reset_meter();
        let recallful = answer_join(
            &JoinSide { source: &cars, stats: &cs },
            &JoinSide { source: &comps, stats: &ps },
            &JoinConfig { alpha: 2.0, k_pairs: 10 },
            &jq,
        )
        .unwrap();
        // Higher α admits lower-precision, higher-throughput pairs, so it
        // should never return fewer results here.
        assert!(recallful.results.len() >= precise.results.len());
    }

    #[test]
    fn join_survives_source_query_budgets() {
        let (_, _, cars, comps, cs, ps) = setup();
        let jq = paper_query(&cars, &comps);
        // Rebuild the complaints source with a tight budget: base query + 2.
        let limited = WebSource::new("complaints", comps.relation().clone()).with_query_limit(3);
        let ans = answer_join(
            &JoinSide { source: &cars, stats: &cs },
            &JoinSide { source: &limited, stats: &ps },
            &JoinConfig { alpha: 0.5, k_pairs: 10 },
            &jq,
        )
        .expect("budget exhaustion is not fatal");
        // Certain pairs still come through (the base sets were retrieved).
        assert!(ans.results.iter().any(|j| j.is_certain()));
    }

    #[test]
    fn pair_selectivity_requires_overlap() {
        let a = Candidate {
            query: SelectQuery::all(),
            precision: 1.0,
            est_size: 10.0,
            join_dist: [(Value::str("x"), 1.0)].into_iter().collect(),
        };
        let b = Candidate {
            query: SelectQuery::all(),
            precision: 1.0,
            est_size: 10.0,
            join_dist: [(Value::str("y"), 1.0)].into_iter().collect(),
        };
        assert_eq!(pair_selectivity(&a, &b), 0.0);
        let c = Candidate {
            query: SelectQuery::all(),
            precision: 0.5,
            est_size: 10.0,
            join_dist: [(Value::str("x"), 0.5), (Value::str("y"), 0.5)]
                .into_iter()
                .collect(),
        };
        // a ⋈ c on "x": (1·10·1) · (0.5·10·0.5) = 25.
        assert!((pair_selectivity(&a, &c) - 25.0).abs() < 1e-9);
    }
}
