//! The plan/execute split: an explicit mediation-plan IR, the one shared
//! executor every answer path runs on, and a knowledge-versioned plan
//! cache.
//!
//! QPIAD's §5.3 cost model treats rewriting as a *plan* — a ranked list of
//! rewritten queries, each carrying its expected F-measure mass — that is
//! then *executed* against the source. This module makes that split
//! explicit:
//!
//! * [`MediationPlan`] is the IR: the base query plus the rank-ordered
//!   rewrite list, each entry carrying its issuable query, F-measure mass,
//!   and admission verdict ([`EntryStatus`]) — an admitted entry holds the
//!   clamped [`RetryPolicy`] the budget funded, a skipped entry holds its
//!   [`SkipReason`].
//! * [`execute`] is the single retrieval loop. It runs any plan either
//!   sequentially or fanned out over the [`par`] worker pool, always
//!   absorbing results in rank order, so the answer is byte-identical at
//!   any thread count. Every entry-point module (mediator, network,
//!   correlated, join, multijoin, aggregate, relaxation) routes its
//!   retrievals through this one function; none of them fan out on their
//!   own.
//! * [`PlanCache`] memoizes the expensive planning half (rewrite
//!   generation + classifier-backed ranking) keyed by query template and
//!   per-source *knowledge version* (see
//!   [`qpiad_db::version::KnowledgeVersionClock`]); a re-mine or a drift
//!   demotion bumps the version and silently orphans every stale plan.
//! * [`MediationPlan::render`] is the EXPLAIN half: a human-readable dump
//!   of the admitted plan — rank, F-measure, precision, policy, hedge,
//!   skip reason — produced without issuing a single source query.
//!
//! ## Admission disciplines
//!
//! Two disciplines coexist, chosen per plan via [`AdmissionMode`]:
//!
//! * **Plan-time** ([`AdmissionMode::PlanTime`]): every entry consults the
//!   breaker probe and the budget up front, in rank order, before any
//!   fan-out ([`MediationPlan::admit`]). The admitted plan — and therefore
//!   the answer — is identical whether execution then runs sequentially or
//!   concurrently. This is the mediator's discipline.
//! * **Interleaved** ([`AdmissionMode::Interleaved`]): entries stay
//!   [`EntryStatus::Deferred`] and the executor re-checks probe and budget
//!   as its strictly sequential loop reaches each entry, so a breaker that
//!   trips mid-plan skips the tail. This is the correlated-source
//!   discipline, where admission feedback from earlier queries must gate
//!   later ones.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

use qpiad_db::fault::{query_fingerprint, RetryPolicy};
use qpiad_db::health::PressureLevel;
use qpiad_db::validate::query_validated;
use qpiad_db::{par, AutonomousSource, Schema, SelectQuery, SourceError, Tuple};
use qpiad_learn::knowledge::SourceStats;

use crate::mediator::{Degradation, QueryContext};
use crate::rank::ScoredRewrite;
use crate::rewrite::RewrittenQuery;

/// Why a plan entry (or the base query) was not issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The source's circuit breaker did not admit the query.
    BreakerOpen,
    /// The caller's query budget could not fund a single attempt.
    BudgetExhausted,
    /// The rewritten query constrains an attribute the source's web form
    /// does not expose.
    Unsupported,
    /// The rewritten query could not be translated into the target
    /// source's local schema (correlated-source plans only).
    Untranslatable,
    /// The overload degradation ladder clamped the plan: the pass ran
    /// under a non-`Normal` [`PressureLevel`] whose rewrite fraction this
    /// entry's rank exceeded. Shed mass is charged to
    /// [`Degradation::overload_sheds`].
    Overload,
}

impl SkipReason {
    /// Short human-readable label for EXPLAIN output.
    pub fn label(&self) -> &'static str {
        match self {
            SkipReason::BreakerOpen => "breaker open",
            SkipReason::BudgetExhausted => "budget exhausted",
            SkipReason::Unsupported => "attribute unsupported by source",
            SkipReason::Untranslatable => "untranslatable to local schema",
            SkipReason::Overload => "shed by overload ladder",
        }
    }
}

/// The rank-order prefix of an `n`-entry plan the given pressure rung
/// still admits: `ceil(n · rewrite_fraction)`. Monotone nonincreasing in
/// pressure, so the answer lattice shrinks as load rises and never grows.
fn pressure_cap(total: usize, pressure: PressureLevel) -> usize {
    let fraction = pressure.rewrite_fraction();
    if fraction >= 1.0 {
        total
    } else {
        (total as f64 * fraction).ceil() as usize
    }
}

/// A plan entry's admission verdict.
#[derive(Debug, Clone)]
pub enum EntryStatus {
    /// Admitted at plan time; the budget clamped the retry schedule to
    /// this policy.
    Admitted(RetryPolicy),
    /// Admission deferred to execution time (interleaved discipline): the
    /// executor consults probe and budget when its sequential loop reaches
    /// this entry.
    Deferred,
    /// Skipped; never issued.
    Skipped(SkipReason),
}

/// One rewritten query in a mediation plan.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// The rewrite in the planning schema (carries precision, estimated
    /// selectivity, and the explaining AFD).
    pub rewrite: RewrittenQuery,
    /// The query actually issued to the executing source — equal to
    /// `rewrite.query` except in correlated plans, where it is the
    /// translation into the target's local schema.
    pub issue: SelectQuery,
    /// The entry's F-measure mass over the selected plan (what a degraded
    /// answer reports losing if this entry is dropped).
    pub fmeasure: f64,
    /// The admission verdict.
    pub status: EntryStatus,
}

/// Which admission discipline governs a plan (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Whole plan admitted up front; eligible for concurrent execution.
    PlanTime,
    /// Admission re-checked per entry during strictly sequential execution.
    Interleaved,
}

/// How the plan's candidate list was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// No plan cache attached.
    Bypassed,
    /// Candidates served from the plan cache.
    Hit,
    /// Candidates planned from scratch and inserted into the cache.
    Miss,
    /// Speculative (EXPLAIN) planning: the cache is deliberately not
    /// consulted or populated, because the base result set is approximated
    /// from the mined sample rather than retrieved.
    Speculative,
}

impl CacheStatus {
    fn label(&self) -> &'static str {
        match self {
            CacheStatus::Bypassed => "bypassed (no cache attached)",
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss (planned from scratch, now cached)",
            CacheStatus::Speculative => "bypassed (speculative plan)",
        }
    }
}

/// The explicit mediation-plan IR: the base query plus the admitted,
/// rank-ordered rewrite list. Produced by the planning half of every
/// answer path and consumed by [`execute`] (or rendered by
/// [`MediationPlan::render`] without executing).
#[derive(Debug, Clone)]
pub struct MediationPlan {
    /// Name of the source this plan executes against.
    pub source: String,
    /// The base (certain-answer) query.
    pub base: SelectQuery,
    /// The base query's admission verdict. `Deferred` when the plan was
    /// built after the base already ran (the ordinary answer path).
    pub base_status: EntryStatus,
    /// The unclamped retry policy entries are admitted under.
    pub retry: RetryPolicy,
    /// The admission discipline.
    pub mode: AdmissionMode,
    /// The rank-ordered rewrite entries.
    pub entries: Vec<PlanEntry>,
    /// How the candidate list was obtained.
    pub cache: CacheStatus,
    /// The knowledge version the plan was built against (when a plan cache
    /// is attached; part of the cache key).
    pub knowledge_version: Option<u64>,
    /// Name of the hedge partner that shadows slow or recovering queries
    /// against this source, if the network assigned one.
    pub hedge: Option<String>,
}

impl MediationPlan {
    /// An empty plan for `source` with the given base query and policy.
    pub fn new(
        source: impl Into<String>,
        base: SelectQuery,
        retry: RetryPolicy,
        mode: AdmissionMode,
    ) -> Self {
        MediationPlan {
            source: source.into(),
            base,
            base_status: EntryStatus::Deferred,
            retry,
            mode,
            entries: Vec::new(),
            cache: CacheStatus::Bypassed,
            knowledge_version: None,
            hedge: None,
        }
    }

    /// Appends a rank-ordered entry.
    pub fn push(&mut self, entry: PlanEntry) {
        self.entries.push(entry);
    }

    /// Plan-time admission, in rank order: each [`EntryStatus::Deferred`]
    /// entry consults the overload ladder first (a shed query must charge
    /// neither probe nor budget), then the breaker probe (a skipped query
    /// must not charge the budget), then the budget, which clamps the
    /// retry policy so the whole admitted plan fits the deadline. Skips
    /// charge their F-measure mass to `degraded`.
    ///
    /// The ladder clamp is a *rank-order prefix*: under pressure only the
    /// top `ceil(n · fraction)` entries may be admitted, which is what
    /// keeps the answer lattice monotone as pressure rises — a higher rung
    /// admits a prefix of what a lower rung admits.
    pub fn admit(&mut self, ctx: &mut QueryContext, degraded: &mut Degradation) {
        let cap = pressure_cap(self.entries.len(), ctx.pressure);
        let mut admitted = self
            .entries
            .iter()
            .filter(|e| matches!(e.status, EntryStatus::Admitted(_)))
            .count();
        for entry in &mut self.entries {
            if !matches!(entry.status, EntryStatus::Deferred) {
                continue;
            }
            if admitted >= cap {
                degraded.record_overload_shed(entry.fmeasure);
                entry.status = EntryStatus::Skipped(SkipReason::Overload);
                continue;
            }
            if !ctx.probe.admits() {
                degraded.record_breaker_skip(entry.fmeasure);
                entry.status = EntryStatus::Skipped(SkipReason::BreakerOpen);
                continue;
            }
            match ctx.budget.admit(&self.retry, query_fingerprint(&entry.issue)) {
                Some(policy) => {
                    ctx.probe.note_issued();
                    admitted += 1;
                    entry.status = EntryStatus::Admitted(policy);
                }
                None => {
                    degraded.record_budget_skip(entry.fmeasure);
                    entry.status = EntryStatus::Skipped(SkipReason::BudgetExhausted);
                }
            }
        }
    }

    /// Marks every not-yet-skipped entry skipped for `reason` (used when
    /// the base query itself is not admitted: nothing downstream runs).
    pub fn skip_all(&mut self, reason: SkipReason) {
        for entry in &mut self.entries {
            if !matches!(entry.status, EntryStatus::Skipped(_)) {
                entry.status = EntryStatus::Skipped(reason);
            }
        }
    }

    /// Number of admitted entries.
    pub fn admitted_len(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.status, EntryStatus::Admitted(_)))
            .count()
    }

    /// Renders the plan for human inspection (EXPLAIN): one line per
    /// rewrite in rank order with its verdict, F-measure mass, precision,
    /// clamped policy or skip reason, and explaining AFD. Issues no
    /// queries — rendering a plan is free.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan for source `{}` — query {}",
            self.source,
            self.base.display(schema)
        );
        let mode = match self.mode {
            AdmissionMode::PlanTime => "plan-time",
            AdmissionMode::Interleaved => "interleaved (re-checked per query)",
        };
        let _ = write!(out, "  admission: {mode}; plan cache: {}", self.cache.label());
        if let Some(v) = self.knowledge_version {
            let _ = write!(out, "; knowledge version {v}");
        }
        let _ = writeln!(out);
        if let Some(partner) = &self.hedge {
            let _ = writeln!(out, "  hedge partner: {partner}");
        }
        let _ = writeln!(
            out,
            "  base: {} — certain answers{}",
            self.base.display(schema),
            match &self.base_status {
                EntryStatus::Admitted(p) => format!(", {}", policy_label(p)),
                EntryStatus::Deferred => String::new(),
                EntryStatus::Skipped(r) => format!(" — SKIP: {}", r.label()),
            }
        );
        if self.entries.is_empty() {
            let _ = writeln!(out, "  rewrites: none");
            return out;
        }
        let _ = writeln!(out, "  rewrites (rank order):");
        for (rank, e) in self.entries.iter().enumerate() {
            let verdict = match &e.status {
                EntryStatus::Admitted(_) => "ADMIT",
                EntryStatus::Deferred => "DEFER",
                EntryStatus::Skipped(_) => "SKIP ",
            };
            let _ = write!(
                out,
                "    {:>3}. {verdict}  F={:.3} P={:.3}  {}",
                rank + 1,
                e.fmeasure,
                e.rewrite.precision,
                e.rewrite.query.display(schema)
            );
            match &e.status {
                EntryStatus::Admitted(p) => {
                    let _ = write!(out, "  [{}]", policy_label(p));
                }
                EntryStatus::Deferred => {}
                EntryStatus::Skipped(r) => {
                    let _ = write!(out, "  — {}", r.label());
                }
            }
            if let Some(afd) = &e.rewrite.afd {
                let _ = write!(out, "  via {}", afd.display(schema));
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn policy_label(p: &RetryPolicy) -> String {
    if p.max_attempts <= 1 {
        "single attempt".to_string()
    } else {
        format!("up to {} attempts", p.max_attempts)
    }
}

/// Whether the base query and the rewrites would be admitted or skipped.
/// Gate selection for [`execute_base`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseGate {
    /// Breaker-gated and budget-funded, with full probe bookkeeping — the
    /// mediator's and the network's discipline.
    Guarded,
    /// Budget-funded only; the probe belongs to a different source (the
    /// correlated path queries the *correlated* source for its base while
    /// the probe guards the *target*).
    BudgetOnly,
}

/// Executes a plan's base query: admission, validated retrieval, and
/// probe/quarantine bookkeeping. Returns the kept (certain) tuples, or the
/// admission/source error — a failed base is fatal to the pass, unlike a
/// failed rewrite.
pub fn execute_base(
    source: &dyn AutonomousSource,
    query: &SelectQuery,
    retry: &RetryPolicy,
    ctx: &mut QueryContext,
    degraded: &mut Degradation,
    gate: BaseGate,
) -> Result<Vec<Tuple>, SourceError> {
    match gate {
        BaseGate::Guarded => {
            if !ctx.probe.admits() {
                return Err(SourceError::CircuitOpen);
            }
            let Some(policy) = ctx.budget.admit(retry, query_fingerprint(query)) else {
                return Err(SourceError::BudgetExhausted);
            };
            ctx.probe.note_issued();
            match query_validated(source, query, &policy) {
                Ok(report) => {
                    settle(ctx, degraded, &report);
                    Ok(report.kept)
                }
                Err(e) => {
                    if e.is_failure() {
                        ctx.probe.record_failure();
                    }
                    Err(e)
                }
            }
        }
        BaseGate::BudgetOnly => {
            let Some(policy) = ctx.budget.admit(retry, query_fingerprint(query)) else {
                return Err(SourceError::BudgetExhausted);
            };
            let report = query_validated(source, query, &policy)?;
            degraded.quarantined += report.quarantined_count();
            Ok(report.kept)
        }
    }
}

/// Probe and quarantine bookkeeping for one validated response.
fn settle(ctx: &mut QueryContext, degraded: &mut Degradation, report: &qpiad_db::ValidationReport) {
    if report.is_clean() {
        ctx.probe.record_success();
    } else {
        degraded.quarantined += report.quarantined_count();
        ctx.probe.record_failure();
    }
}

/// The one shared retrieval loop: executes a plan's rewrite entries
/// against `source` and hands each validated result to `absorb` in rank
/// order.
///
/// Against a budget-free source, a fully plan-time-admitted plan fans its
/// retrievals out over the [`par`] worker pool — the *only* place in the
/// codebase that does — and then absorbs sequentially in rank order, which
/// makes the answer byte-identical to a single-threaded run. Budgeted
/// sources, and plans with [`EntryStatus::Deferred`] entries (interleaved
/// admission), always run strictly sequentially, because which queries are
/// admitted depends on issue order.
///
/// Error discipline, identical in both branches:
///
/// * a clean response records a probe success; a quarantined one counts
///   its dropped tuples and records a probe failure (repeated drift
///   eventually opens the breaker);
/// * `QueryLimitExceeded` ends retrieval — the source's own budget ran
///   out mid-plan — and the F-measure mass of every entry that would
///   still have run (the truncating entry and the un-issued tail) is
///   charged to `degraded`, so the answer reports what the cutoff cost;
/// * any other error drops just that entry: a probe failure if it was a
///   real source failure, plus the entry's mass in `degraded`.
///
/// `absorb` receives the entry's rank index, the entry, the validated
/// tuples, and the live context (for per-response drift observation).
///
/// The tuples flowing through fan-in, dedup-against-base, and rank merge
/// are shared-slice handles (`Tuple` wraps `Arc<[Value]>`): retrieval
/// resolves row ids against the source's columnar store once, and every
/// subsequent move or clone up to the answer boundary is a reference-count
/// bump, never a per-value copy.
pub fn execute<F>(
    source: &dyn AutonomousSource,
    plan: &MediationPlan,
    ctx: &mut QueryContext,
    degraded: &mut Degradation,
    mut absorb: F,
) where
    F: FnMut(usize, &PlanEntry, Vec<Tuple>, &mut QueryContext),
{
    let admitted: Vec<(usize, &PlanEntry, &RetryPolicy)> = plan
        .entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match &e.status {
            EntryStatus::Admitted(p) => Some((i, e, p)),
            _ => None,
        })
        .collect();
    let has_deferred = plan
        .entries
        .iter()
        .any(|e| matches!(e.status, EntryStatus::Deferred));

    let concurrent = !has_deferred
        && !source.has_query_budget()
        && admitted.len() > 1
        && par::num_threads() > 1;

    if concurrent {
        // Fan the admitted retrievals out (each worker retries its own
        // query under its clamped policy), then merge in rank order. Probe
        // outcomes are recorded in the merge phase, so the observation log
        // is identical to a sequential run.
        let results = par::parallel_map(&admitted, |(_, entry, policy)| {
            query_validated(source, &entry.issue, policy)
        });
        for (pos, result) in results.into_iter().enumerate() {
            let (rank, entry, _) = admitted[pos];
            match result {
                Ok(report) => {
                    settle(ctx, degraded, &report);
                    absorb(rank, entry, report.kept, ctx);
                }
                Err(e @ SourceError::QueryLimitExceeded { .. }) => {
                    for (_, tail, _) in &admitted[pos..] {
                        degraded.record(tail.fmeasure, e.clone());
                    }
                    break;
                }
                Err(e) => {
                    if e.is_failure() {
                        ctx.probe.record_failure();
                    }
                    degraded.record(entry.fmeasure, e);
                }
            }
        }
        return;
    }

    // Interleaved admission honors the same overload clamp as plan-time
    // admission: entries beyond the rung's rank-order prefix are shed, not
    // issued. Plan-time-admitted entries were already clamped in `admit`.
    let overload_cap = pressure_cap(plan.entries.len(), ctx.pressure);
    let mut issued = admitted.len();
    for rank in 0..plan.entries.len() {
        let entry = &plan.entries[rank];
        let policy = match &entry.status {
            EntryStatus::Skipped(_) => continue, // charged at admission
            EntryStatus::Admitted(p) => *p,
            EntryStatus::Deferred => {
                // Interleaved admission: the overload ladder first (a shed
                // query charges neither probe nor budget), then the probe
                // (a skipped query must not charge the budget), then the
                // budget.
                if issued >= overload_cap {
                    degraded.record_overload_shed(entry.fmeasure);
                    continue;
                }
                if !ctx.probe.admits() {
                    degraded.record_breaker_skip(entry.fmeasure);
                    continue;
                }
                match ctx.budget.admit(&plan.retry, query_fingerprint(&entry.issue)) {
                    Some(p) => {
                        ctx.probe.note_issued();
                        issued += 1;
                        p
                    }
                    None => {
                        degraded.record_budget_skip(entry.fmeasure);
                        continue;
                    }
                }
            }
        };
        match query_validated(source, &entry.issue, &policy) {
            Ok(report) => {
                settle(ctx, degraded, &report);
                absorb(rank, entry, report.kept, ctx);
            }
            Err(e @ SourceError::QueryLimitExceeded { .. }) => {
                // The source's own query budget ran out mid-plan: charge
                // the truncating entry and every entry that would still
                // have run, so the degraded answer reports the lost mass.
                for tail in &plan.entries[rank..] {
                    if !matches!(tail.status, EntryStatus::Skipped(_)) {
                        degraded.record(tail.fmeasure, e.clone());
                    }
                }
                break;
            }
            Err(e) => {
                if e.is_failure() {
                    ctx.probe.record_failure();
                }
                degraded.record(entry.fmeasure, e);
            }
        }
    }
}

/// One cached planning candidate: the scored rewrite plus whether the
/// source can answer it. Unsupported candidates are kept (they render as
/// skipped entries in EXPLAIN) but never issued, and the supported
/// candidates' masses are normalized over the supported subset only.
#[derive(Debug, Clone)]
pub struct PlanCandidate {
    /// The selected, scored rewrite.
    pub scored: ScoredRewrite,
    /// Whether every constrained attribute is queryable at the source.
    pub supported: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    source: String,
    template: SelectQuery,
    version: u64,
    /// `alpha` as raw bits: the ranking parameters are part of the
    /// template identity.
    alpha_bits: u64,
    k: usize,
}

/// A shared cache of planning candidates, keyed by (source, query
/// template, knowledge version, ranking parameters).
///
/// The cached artifact is the *candidate list* — the output of rewrite
/// generation, classifier-backed scoring, top-K selection, and the
/// supported-attribute filter — which is the expensive, knowledge-derived
/// half of planning. Admission (breaker, budget) is pass-local and always
/// re-runs, so a cached plan still honors the current availability state.
///
/// Stale plans cannot be served: the knowledge version in the key is
/// bumped by re-mining (`MediatorNetwork::refresh_member`) and by drift
/// demotion (a fired `DriftVerdict`), which orphans every entry built
/// from the replaced knowledge. Hits and misses are metered per source
/// ([`qpiad_db::SourceMeter::plan_cache_hits`] /
/// [`qpiad_db::SourceMeter::plan_cache_misses`]).
///
/// # Concurrency
///
/// The map is split into [`PLAN_CACHE_SHARDS`] shards selected by key
/// hash, each behind its own `parking_lot::Mutex`: concurrent lookups for
/// different templates proceed without contending, and a panicking caller
/// can never poison the cache for everyone else (`parking_lot` mutexes do
/// not poison). Two threads racing to fill the same cold key both compute
/// the candidates; last insert wins, and both handles are valid — the
/// lists are deterministic functions of the key.
#[derive(Debug)]
pub struct PlanCache {
    shards: [Mutex<HashMap<PlanKey, Arc<Vec<PlanCandidate>>>>; PLAN_CACHE_SHARDS],
}

/// Shard count for [`PlanCache`]; a power of two so shard selection is a
/// mask of the key hash.
pub const PLAN_CACHE_SHARDS: usize = 16;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache { shards: std::array::from_fn(|_| Mutex::new(HashMap::new())) }
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<HashMap<PlanKey, Arc<Vec<PlanCandidate>>>> {
        let mut hasher = qpiad_db::FxHasher::default();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (PLAN_CACHE_SHARDS - 1)]
    }

    /// The cached candidate list for the key, if present.
    pub fn lookup(
        &self,
        source: &str,
        template: &SelectQuery,
        version: u64,
        alpha: f64,
        k: usize,
    ) -> Option<Arc<Vec<PlanCandidate>>> {
        let key = PlanKey {
            source: source.to_string(),
            template: template.clone(),
            version,
            alpha_bits: alpha.to_bits(),
            k,
        };
        self.shard(&key).lock().get(&key).cloned()
    }

    /// Inserts a candidate list and returns the shared handle.
    pub fn insert(
        &self,
        source: &str,
        template: &SelectQuery,
        version: u64,
        alpha: f64,
        k: usize,
        candidates: Vec<PlanCandidate>,
    ) -> Arc<Vec<PlanCandidate>> {
        let key = PlanKey {
            source: source.to_string(),
            template: template.clone(),
            version,
            alpha_bits: alpha.to_bits(),
            k,
        };
        let arc = Arc::new(candidates);
        self.shard(&key).lock().insert(key, Arc::clone(&arc));
        arc
    }

    /// Number of cached candidate lists.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The mined-sample tuples certainly matching `query` — the planner's
/// zero-query stand-in for a base result set (speculative EXPLAIN plans)
/// and the reference side of paired drift observations. Served through the
/// estimator's posting-list index; the returned tuples are shared-slice
/// handles, so this materializes nothing beyond the `Vec` itself.
pub(crate) fn stats_sample_matches(stats: &SourceStats, query: &SelectQuery) -> Vec<Tuple> {
    stats.selectivity().sample_matches(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_db::{AttrId, AttrType, Predicate};

    fn query() -> SelectQuery {
        SelectQuery::new(vec![Predicate::eq(AttrId(0), "Convt")])
    }

    fn entry(tag: i64, fmeasure: f64, status: EntryStatus) -> PlanEntry {
        let q = SelectQuery::new(vec![Predicate::eq(AttrId(1), tag)]);
        PlanEntry {
            rewrite: RewrittenQuery {
                query: q.clone(),
                target_attr: AttrId(0),
                precision: fmeasure,
                est_selectivity: 1.0,
                afd: None,
            },
            issue: q,
            fmeasure,
            status,
        }
    }

    #[test]
    fn plan_time_admission_consumes_probe_and_budget_in_rank_order() {
        use qpiad_db::QueryBudget;
        let mut plan = MediationPlan::new(
            "cars.com",
            query(),
            RetryPolicy::none(),
            AdmissionMode::PlanTime,
        );
        plan.push(entry(1, 0.9, EntryStatus::Deferred));
        plan.push(entry(2, 0.7, EntryStatus::Deferred));
        plan.push(entry(3, 0.5, EntryStatus::Deferred));
        // Budget funds exactly two single-attempt queries.
        let mut ctx = QueryContext::unbounded().with_budget(QueryBudget::unlimited().with_max_attempts(2));
        let mut degraded = Degradation::default();
        plan.admit(&mut ctx, &mut degraded);
        assert_eq!(plan.admitted_len(), 2);
        assert!(matches!(plan.entries[0].status, EntryStatus::Admitted(_)));
        assert!(matches!(plan.entries[1].status, EntryStatus::Admitted(_)));
        assert!(matches!(
            plan.entries[2].status,
            EntryStatus::Skipped(SkipReason::BudgetExhausted)
        ));
        assert_eq!(degraded.budget_skips, 1);
        assert!((degraded.dropped_fmeasure - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overload_ladder_clamps_admission_to_a_rank_prefix() {
        let build = || {
            let mut plan = MediationPlan::new(
                "cars.com",
                query(),
                RetryPolicy::none(),
                AdmissionMode::PlanTime,
            );
            for (i, f) in [0.9, 0.7, 0.5, 0.3].iter().enumerate() {
                plan.push(entry(i as i64, *f, EntryStatus::Deferred));
            }
            plan
        };
        let admit_at = |pressure: PressureLevel| {
            let mut plan = build();
            let mut ctx = QueryContext::unbounded().with_pressure(pressure);
            let mut degraded = Degradation::default();
            plan.admit(&mut ctx, &mut degraded);
            (plan, degraded)
        };

        let (normal, d) = admit_at(PressureLevel::Normal);
        assert_eq!(normal.admitted_len(), 4);
        assert_eq!(d.overload_sheds, 0);

        // Elevated: top half (ceil(4·0.5) = 2), the rest shed and charged.
        let (elevated, d) = admit_at(PressureLevel::Elevated);
        assert_eq!(elevated.admitted_len(), 2);
        assert!(matches!(elevated.entries[0].status, EntryStatus::Admitted(_)));
        assert!(matches!(
            elevated.entries[2].status,
            EntryStatus::Skipped(SkipReason::Overload)
        ));
        assert_eq!(d.overload_sheds, 2);
        assert!((d.dropped_fmeasure - 0.8).abs() < 1e-12);
        assert!(d.is_degraded());

        // High: top quarter (ceil(4·0.25) = 1).
        let (high, d) = admit_at(PressureLevel::High);
        assert_eq!(high.admitted_len(), 1);
        assert_eq!(d.overload_sheds, 3);

        // Critical: certain answers only — every rewrite shed.
        let (critical, d) = admit_at(PressureLevel::Critical);
        assert_eq!(critical.admitted_len(), 0);
        assert_eq!(d.overload_sheds, 4);
        assert!((d.dropped_fmeasure - 2.4).abs() < 1e-12);
    }

    #[test]
    fn overload_skips_render_in_explain_output() {
        let schema = Schema::of(
            "cars",
            &[("body", AttrType::Categorical), ("model", AttrType::Categorical)],
        );
        let mut plan = MediationPlan::new(
            "cars.com",
            SelectQuery::new(vec![Predicate::eq(schema.expect_attr("body"), "Convt")]),
            RetryPolicy::default(),
            AdmissionMode::PlanTime,
        );
        plan.push(entry(1, 0.9, EntryStatus::Deferred));
        plan.push(entry(2, 0.7, EntryStatus::Deferred));
        let mut ctx = QueryContext::unbounded().with_pressure(PressureLevel::High);
        let mut degraded = Degradation::default();
        plan.admit(&mut ctx, &mut degraded);
        let text = plan.render(&schema);
        assert!(text.contains("shed by overload ladder"), "{text}");
    }

    #[test]
    fn render_lists_every_entry_with_verdict_and_mass() {
        let schema = Schema::of(
            "cars",
            &[("body", AttrType::Categorical), ("model", AttrType::Categorical)],
        );
        let mut plan = MediationPlan::new(
            "cars.com",
            SelectQuery::new(vec![Predicate::eq(schema.expect_attr("body"), "Convt")]),
            RetryPolicy::default(),
            AdmissionMode::PlanTime,
        );
        plan.push(entry(1, 0.9, EntryStatus::Admitted(RetryPolicy::default())));
        plan.push(entry(2, 0.7, EntryStatus::Skipped(SkipReason::BreakerOpen)));
        plan.hedge = Some("yahoo_autos".to_string());
        let text = plan.render(&schema);
        assert!(text.contains("plan for source `cars.com`"), "{text}");
        assert!(text.contains("ADMIT"), "{text}");
        assert!(text.contains("SKIP"), "{text}");
        assert!(text.contains("F=0.900"), "{text}");
        assert!(text.contains("breaker open"), "{text}");
        assert!(text.contains("hedge partner: yahoo_autos"), "{text}");
    }

    #[test]
    fn plan_cache_distinguishes_versions_and_parameters() {
        let cache = PlanCache::new();
        let q = query();
        assert!(cache.lookup("s", &q, 0, 0.0, 10).is_none());
        cache.insert("s", &q, 0, 0.0, 10, Vec::new());
        assert!(cache.lookup("s", &q, 0, 0.0, 10).is_some());
        // A version bump orphans the entry without explicit eviction.
        assert!(cache.lookup("s", &q, 1, 0.0, 10).is_none());
        // Ranking parameters are part of the template identity.
        assert!(cache.lookup("s", &q, 0, 1.0, 10).is_none());
        assert!(cache.lookup("s", &q, 0, 0.0, 5).is_none());
        // So is the source name.
        assert!(cache.lookup("t", &q, 0, 0.0, 10).is_none());
        assert_eq!(cache.len(), 1);
    }
}
