//! The QPIAD mediator (paper §4).
//!
//! Given a user query over an incomplete autonomous database, QPIAD returns
//! the certain answers *plus* relevant possible answers — tuples with a null
//! on a constrained attribute that are likely to satisfy the query — without
//! ever binding nulls and without touching the source's data:
//!
//! * [`rewrite`] — generates rewritten queries from the base (certain)
//!   result set and the mined AFDs (§4.1–4.2), estimating each query's
//!   precision (via the AFD-enhanced classifiers) and selectivity (§5.4).
//! * [`rank`] — orders rewritten queries by expected F-measure, selects the
//!   top-K, and re-orders those by precision so retrieved tuples inherit
//!   their query's rank (§4.2 steps b–d).
//! * [`plan`] — the mediation-plan IR and the one shared executor: each
//!   answer path builds a [`plan::MediationPlan`] (base query plus the
//!   admitted, rank-ordered rewrite list), runs it through
//!   [`plan::execute`], and can render it as EXPLAIN output without
//!   issuing a single source query; candidate lists are cached per
//!   (template, knowledge version) in a [`plan::PlanCache`].
//! * [`mediator`] — the end-to-end engine: base set, rewriting, ordered
//!   retrieval, post-filtering, deferred handling of multi-null tuples, and
//!   per-answer confidence + AFD explanations (§6.1).
//! * [`baselines`] — the paper's AllReturned and AllRanked comparison
//!   methods (require null binding; infeasible on real web sources).
//! * [`aggregate`] — COUNT/SUM/AVG with predicted completions, gated by the
//!   most-likely-value rule (§4.4).
//! * [`join`] — two-way joins over incomplete sources with query-pair
//!   F-measure ordering and join-value prediction (§4.5).
//! * [`multijoin`] — left-deep multi-way chain joins (the generalization
//!   §4.5's footnote claims).
//! * [`correlated`] — retrieving possible answers from sources whose local
//!   schema does not support the constrained attribute, using statistics
//!   learned from a correlated source (§4.3).
//! * [`network`] — the multi-source mediator: one global schema over many
//!   sources, routing each query to direct QPIAD or correlated retrieval
//!   per source (Figures 1–2).
//! * [`relaxation`] — the §7 extension: imprecise queries answered by
//!   data-driven value similarity (the QUIC/AIMQ direction).
//!
//! The answer path is parallel where work is independent — the network
//! fans out across sources and the mediator issues rewritten queries
//! concurrently against budget-free sources, over the [`par`] worker pool
//! (re-exported from `qpiad-db`, sized by `QPIAD_THREADS`) — while every
//! merge happens sequentially in rank order, so results are byte-identical
//! to single-threaded execution.
//!
//! Mediation is **fault-tolerant**: queries are issued through the retry
//! boundary in [`qpiad_db::fault`], a rewritten query that still fails is
//! dropped and accounted in [`Degradation`], and a network member that
//! fails outright contributes a recorded [`SourceOutcome::Failed`] instead
//! of aborting the whole mediation.
//!
//! The mined knowledge itself has a **lifecycle**: the network can load
//! member statistics from a durable [`qpiad_learn::store::KnowledgeStore`]
//! (a snapshot that fails to load degrades that member to
//! certain-answers-only, charged to [`Degradation::knowledge_unavailable`]),
//! watch each member's live responses for drift against its mined sample
//! ([`qpiad_learn::drift`], demoting drifted members' possible answers),
//! and atomically swap in re-mined statistics with
//! [`network::MediatorNetwork::refresh_member`].

pub mod aggregate;
pub mod baselines;
pub mod correlated;
pub mod join;
pub mod mediator;
pub mod multijoin;
pub mod network;
pub mod plan;
pub mod rank;
pub mod relaxation;
pub mod rewrite;

pub use correlated::CorrelatedAnswers;
pub use mediator::{AnswerSet, Degradation, Qpiad, QpiadConfig, QueryContext, RankedAnswer};
pub use plan::{
    execute, execute_base, AdmissionMode, BaseGate, CacheStatus, EntryStatus, MediationPlan,
    PlanCache, PlanCandidate, PlanEntry, SkipReason,
};
pub use qpiad_db::par;
pub use network::{MediatorNetwork, MemberFold, NetworkAnswer, SourceAnswers, SourceOutcome};
pub use rank::{order_rewrites, rescore, RankConfig, ScoredRewrite};
pub use rewrite::{generate_rewrites, RewrittenQuery};
