//! F-measure ordering of rewritten queries (§4.2 steps 2b–2c).
//!
//! Selecting which K rewritten queries to issue trades precision against
//! recall. QPIAD scores each query with the weighted harmonic mean
//!
//! ```text
//! F(α) = (1 + α) · P · R / (α · P + R)
//! ```
//!
//! where `P` is the query's expected precision and `R` its expected recall:
//! the query's *throughput* (precision × estimated selectivity) normalized
//! by the cumulative throughput of all rewritten queries. With `α = 0` the
//! ordering degenerates to pure precision; growing `α` favours high-recall
//! queries.
//!
//! After the top-K queries are selected by F-measure they are **re-ordered
//! by precision**, so that every tuple a query retrieves can inherit the
//! query's rank without further sorting (§4.2 step 2c).

use crate::rewrite::RewrittenQuery;

/// Ordering parameters.
#[derive(Debug, Clone, Copy)]
pub struct RankConfig {
    /// The F-measure α: 0 = precision only, 1 = balanced, >1 = recall-heavy.
    pub alpha: f64,
    /// Maximum number of rewritten queries to issue.
    pub k: usize,
}

impl Default for RankConfig {
    fn default() -> Self {
        RankConfig { alpha: 0.0, k: 10 }
    }
}

/// The F-measure of one query given the cumulative throughput of all
/// candidates. Returns 0 when either component is 0.
pub fn f_measure(precision: f64, recall: f64, alpha: f64) -> f64 {
    let denom = alpha * precision + recall;
    if denom <= 0.0 {
        return 0.0;
    }
    (1.0 + alpha) * precision * recall / denom
}

/// Selects the top-K rewritten queries by F-measure and returns them in
/// decreasing expected-precision order.
pub fn order_rewrites(rewrites: Vec<RewrittenQuery>, config: &RankConfig) -> Vec<RewrittenQuery> {
    let total_throughput: f64 = rewrites
        .iter()
        .map(|r| r.precision * r.est_selectivity)
        .sum();

    let mut scored: Vec<(f64, RewrittenQuery)> = rewrites
        .into_iter()
        .map(|r| {
            let recall = if total_throughput > 0.0 {
                r.precision * r.est_selectivity / total_throughput
            } else {
                0.0
            };
            // With a zero α and a degenerate recall estimate fall back to
            // precision so the ordering stays meaningful.
            let f = if total_throughput > 0.0 {
                f_measure(r.precision, recall, config.alpha)
            } else {
                r.precision
            };
            (f, r)
        })
        .collect();

    // Deterministic order: F desc, precision desc, then query structure.
    scored.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| b.1.precision.total_cmp(&a.1.precision))
            .then_with(|| format!("{:?}", a.1.query).cmp(&format!("{:?}", b.1.query)))
    });
    scored.truncate(config.k);

    let mut selected: Vec<RewrittenQuery> = scored.into_iter().map(|(_, r)| r).collect();
    selected.sort_by(|a, b| {
        b.precision
            .total_cmp(&a.precision)
            .then_with(|| format!("{:?}", a.query).cmp(&format!("{:?}", b.query)))
    });
    selected
}

/// The F-measure score of each query in `rewrites` against that list's own
/// cumulative throughput — the same scoring rule [`order_rewrites`] ranks
/// by, recomputed over an already-selected plan. The fault-tolerant
/// retrieval loops use this to report the F-measure mass of rewritten
/// queries they had to drop, so a degraded answer quantifies what it lost.
pub fn f_scores(rewrites: &[RewrittenQuery], alpha: f64) -> Vec<f64> {
    let total_throughput: f64 = rewrites
        .iter()
        .map(|r| r.precision * r.est_selectivity)
        .sum();
    rewrites
        .iter()
        .map(|r| {
            if total_throughput > 0.0 {
                let recall = r.precision * r.est_selectivity / total_throughput;
                f_measure(r.precision, recall, alpha)
            } else {
                r.precision
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_db::{AttrId, Predicate, SelectQuery};

    fn rq(tag: i64, precision: f64, selectivity: f64) -> RewrittenQuery {
        RewrittenQuery {
            query: SelectQuery::new(vec![Predicate::eq(AttrId(0), tag)]),
            target_attr: AttrId(1),
            precision,
            est_selectivity: selectivity,
            afd: None,
        }
    }

    #[test]
    fn f_measure_basics() {
        // α = 0: F = P (when R > 0).
        assert!((f_measure(0.8, 0.3, 0.0) - 0.8).abs() < 1e-12);
        // α = 1: harmonic mean.
        let f = f_measure(0.5, 0.5, 1.0);
        assert!((f - 0.5).abs() < 1e-12);
        // Zero recall ⇒ zero F.
        assert_eq!(f_measure(0.9, 0.0, 1.0), 0.0);
        assert_eq!(f_measure(0.0, 0.9, 1.0), 0.0);
    }

    #[test]
    fn alpha_zero_orders_by_precision() {
        let rewrites = vec![rq(1, 0.9, 1.0), rq(2, 0.5, 100.0), rq(3, 0.7, 50.0)];
        let ordered = order_rewrites(rewrites, &RankConfig { alpha: 0.0, k: 10 });
        let precisions: Vec<f64> = ordered.iter().map(|r| r.precision).collect();
        assert_eq!(precisions, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn large_alpha_admits_high_throughput_queries() {
        // With k = 1: α = 0 picks the precise query; α = 2 picks the
        // high-selectivity one.
        let rewrites = vec![rq(1, 0.95, 1.0), rq(2, 0.6, 500.0)];
        let precise = order_rewrites(rewrites.clone(), &RankConfig { alpha: 0.0, k: 1 });
        assert!((precise[0].precision - 0.95).abs() < 1e-12);
        let recallful = order_rewrites(rewrites, &RankConfig { alpha: 2.0, k: 1 });
        assert!((recallful[0].precision - 0.6).abs() < 1e-12);
    }

    #[test]
    fn truncates_to_k_then_reorders_by_precision() {
        let rewrites = vec![
            rq(1, 0.4, 400.0),
            rq(2, 0.9, 5.0),
            rq(3, 0.6, 100.0),
            rq(4, 0.8, 20.0),
        ];
        let ordered = order_rewrites(rewrites, &RankConfig { alpha: 1.0, k: 2 });
        assert_eq!(ordered.len(), 2);
        // Whatever was selected, the output is precision-descending.
        assert!(ordered[0].precision >= ordered[1].precision);
    }

    #[test]
    fn zero_throughput_falls_back_to_precision() {
        let rewrites = vec![rq(1, 0.9, 0.0), rq(2, 0.5, 0.0)];
        let ordered = order_rewrites(rewrites, &RankConfig { alpha: 1.0, k: 10 });
        assert_eq!(ordered.len(), 2);
        assert!((ordered[0].precision - 0.9).abs() < 1e-12);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let rewrites = vec![rq(1, 0.9, 1.0)];
        assert!(order_rewrites(rewrites, &RankConfig { alpha: 0.0, k: 0 }).is_empty());
    }

    #[test]
    fn f_scores_match_the_ordering_rule() {
        let rewrites = vec![rq(1, 0.9, 10.0), rq(2, 0.5, 100.0)];
        let scores = f_scores(&rewrites, 0.0);
        // α = 0 degenerates to precision (recall > 0 for both).
        assert!((scores[0] - 0.9).abs() < 1e-12);
        assert!((scores[1] - 0.5).abs() < 1e-12);
        // Zero throughput falls back to precision, like order_rewrites.
        let degenerate = vec![rq(1, 0.7, 0.0)];
        assert_eq!(f_scores(&degenerate, 1.0), vec![0.7]);
    }

    #[test]
    fn deterministic_on_ties() {
        let rewrites = vec![rq(2, 0.5, 10.0), rq(1, 0.5, 10.0)];
        let a = order_rewrites(rewrites.clone(), &RankConfig::default());
        let b = order_rewrites(rewrites, &RankConfig::default());
        let qa: Vec<String> = a.iter().map(|r| format!("{:?}", r.query)).collect();
        let qb: Vec<String> = b.iter().map(|r| format!("{:?}", r.query)).collect();
        assert_eq!(qa, qb);
    }
}
