//! F-measure ordering of rewritten queries (§4.2 steps 2b–2c).
//!
//! Selecting which K rewritten queries to issue trades precision against
//! recall. QPIAD scores each query with the weighted harmonic mean
//!
//! ```text
//! F(α) = (1 + α) · P · R / (α · P + R)
//! ```
//!
//! where `P` is the query's expected precision and `R` its expected recall:
//! the query's *throughput* (precision × estimated selectivity) normalized
//! by the cumulative throughput of all rewritten queries. With `α = 0` the
//! ordering degenerates to pure precision; growing `α` favours high-recall
//! queries.
//!
//! After the top-K queries are selected by F-measure they are **re-ordered
//! by precision**, so that every tuple a query retrieves can inherit the
//! query's rank without further sorting (§4.2 step 2c).
//!
//! [`order_rewrites`] returns [`ScoredRewrite`]s: each selected query
//! carries its F-measure mass, recomputed over the selected plan's own
//! cumulative throughput. Rank and mass come from the same pass, so the
//! planner and the degradation accounting can never disagree about what a
//! dropped query was worth. If a caller filters the selected list further
//! (e.g. dropping rewrites the source cannot answer), [`rescore`]
//! re-normalizes the masses over the surviving queries.

use crate::rewrite::RewrittenQuery;

/// Ordering parameters.
#[derive(Debug, Clone, Copy)]
pub struct RankConfig {
    /// The F-measure α: 0 = precision only, 1 = balanced, >1 = recall-heavy.
    pub alpha: f64,
    /// Maximum number of rewritten queries to issue.
    pub k: usize,
}

impl Default for RankConfig {
    fn default() -> Self {
        RankConfig { alpha: 0.0, k: 10 }
    }
}

/// A rewritten query selected for a mediation plan, carrying the F-measure
/// mass it was selected with. The mass is the query's share of the plan's
/// expected value; degraded answers report the mass of whatever they drop.
#[derive(Debug, Clone)]
pub struct ScoredRewrite {
    /// The selected rewritten query.
    pub rewrite: RewrittenQuery,
    /// The query's F-measure over the selected list's own cumulative
    /// throughput (precision itself when throughput degenerates to zero).
    pub fmeasure: f64,
}

/// The F-measure of one query given the cumulative throughput of all
/// candidates. Returns 0 when either component is 0.
pub fn f_measure(precision: f64, recall: f64, alpha: f64) -> f64 {
    let denom = alpha * precision + recall;
    if denom <= 0.0 {
        return 0.0;
    }
    (1.0 + alpha) * precision * recall / denom
}

/// The scoring rule shared by selection and re-scoring: F-measure against
/// the given cumulative throughput, precision fallback when throughput is
/// degenerate.
fn score(r: &RewrittenQuery, total_throughput: f64, alpha: f64) -> f64 {
    if total_throughput > 0.0 {
        let recall = r.precision * r.est_selectivity / total_throughput;
        f_measure(r.precision, recall, alpha)
    } else {
        r.precision
    }
}

/// Selects the top-K rewritten queries by F-measure and returns them in
/// decreasing expected-precision order, each carrying its F-measure mass
/// over the *selected* list's cumulative throughput.
pub fn order_rewrites(rewrites: Vec<RewrittenQuery>, config: &RankConfig) -> Vec<ScoredRewrite> {
    // Selection scores are computed against the full candidate pool …
    let total_throughput: f64 = rewrites
        .iter()
        .map(|r| r.precision * r.est_selectivity)
        .sum();

    let mut scored: Vec<(f64, RewrittenQuery)> = rewrites
        .into_iter()
        .map(|r| (score(&r, total_throughput, config.alpha), r))
        .collect();

    // Deterministic order: F desc, precision desc, then structural
    // query order (allocation-free — the old Debug-string tiebreak
    // formatted both queries on every comparison).
    scored.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| b.1.precision.total_cmp(&a.1.precision))
            .then_with(|| a.1.query.structural_cmp(&b.1.query))
    });
    scored.truncate(config.k);

    let mut selected: Vec<ScoredRewrite> = scored
        .into_iter()
        .map(|(_, rewrite)| ScoredRewrite { rewrite, fmeasure: 0.0 })
        .collect();
    selected.sort_by(|a, b| {
        b.rewrite
            .precision
            .total_cmp(&a.rewrite.precision)
            .then_with(|| a.rewrite.query.structural_cmp(&b.rewrite.query))
    });
    // … but the attached masses are normalized over the selected plan, so
    // they sum to the plan's own expected value.
    rescore(&mut selected, config.alpha);
    selected
}

/// Recomputes each entry's F-measure mass over the current list's own
/// cumulative throughput. Call after filtering a selected plan (e.g.
/// dropping rewrites the source cannot answer) so the surviving masses
/// stay normalized over what will actually be issued.
pub fn rescore(selected: &mut [ScoredRewrite], alpha: f64) {
    let total_throughput: f64 = selected
        .iter()
        .map(|s| s.rewrite.precision * s.rewrite.est_selectivity)
        .sum();
    for s in selected.iter_mut() {
        s.fmeasure = score(&s.rewrite, total_throughput, alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_db::{AttrId, Predicate, SelectQuery};

    fn rq(tag: i64, precision: f64, selectivity: f64) -> RewrittenQuery {
        RewrittenQuery {
            query: SelectQuery::new(vec![Predicate::eq(AttrId(0), tag)]),
            target_attr: AttrId(1),
            precision,
            est_selectivity: selectivity,
            afd: None,
        }
    }

    #[test]
    fn f_measure_basics() {
        // α = 0: F = P (when R > 0).
        assert!((f_measure(0.8, 0.3, 0.0) - 0.8).abs() < 1e-12);
        // α = 1: harmonic mean.
        let f = f_measure(0.5, 0.5, 1.0);
        assert!((f - 0.5).abs() < 1e-12);
        // Zero recall ⇒ zero F.
        assert_eq!(f_measure(0.9, 0.0, 1.0), 0.0);
        assert_eq!(f_measure(0.0, 0.9, 1.0), 0.0);
    }

    #[test]
    fn alpha_zero_orders_by_precision() {
        let rewrites = vec![rq(1, 0.9, 1.0), rq(2, 0.5, 100.0), rq(3, 0.7, 50.0)];
        let ordered = order_rewrites(rewrites, &RankConfig { alpha: 0.0, k: 10 });
        let precisions: Vec<f64> = ordered.iter().map(|r| r.rewrite.precision).collect();
        assert_eq!(precisions, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn large_alpha_admits_high_throughput_queries() {
        // With k = 1: α = 0 picks the precise query; α = 2 picks the
        // high-selectivity one.
        let rewrites = vec![rq(1, 0.95, 1.0), rq(2, 0.6, 500.0)];
        let precise = order_rewrites(rewrites.clone(), &RankConfig { alpha: 0.0, k: 1 });
        assert!((precise[0].rewrite.precision - 0.95).abs() < 1e-12);
        let recallful = order_rewrites(rewrites, &RankConfig { alpha: 2.0, k: 1 });
        assert!((recallful[0].rewrite.precision - 0.6).abs() < 1e-12);
    }

    #[test]
    fn truncates_to_k_then_reorders_by_precision() {
        let rewrites = vec![
            rq(1, 0.4, 400.0),
            rq(2, 0.9, 5.0),
            rq(3, 0.6, 100.0),
            rq(4, 0.8, 20.0),
        ];
        let ordered = order_rewrites(rewrites, &RankConfig { alpha: 1.0, k: 2 });
        assert_eq!(ordered.len(), 2);
        // Whatever was selected, the output is precision-descending.
        assert!(ordered[0].rewrite.precision >= ordered[1].rewrite.precision);
    }

    #[test]
    fn zero_throughput_falls_back_to_precision() {
        let rewrites = vec![rq(1, 0.9, 0.0), rq(2, 0.5, 0.0)];
        let ordered = order_rewrites(rewrites, &RankConfig { alpha: 1.0, k: 10 });
        assert_eq!(ordered.len(), 2);
        assert!((ordered[0].rewrite.precision - 0.9).abs() < 1e-12);
        // Degenerate throughput: the attached mass is the precision itself.
        assert!((ordered[0].fmeasure - 0.9).abs() < 1e-12);
        assert!((ordered[1].fmeasure - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let rewrites = vec![rq(1, 0.9, 1.0)];
        assert!(order_rewrites(rewrites, &RankConfig { alpha: 0.0, k: 0 }).is_empty());
    }

    #[test]
    fn attached_masses_match_the_ordering_rule() {
        let rewrites = vec![rq(1, 0.9, 10.0), rq(2, 0.5, 100.0)];
        let ordered = order_rewrites(rewrites, &RankConfig { alpha: 0.0, k: 10 });
        // α = 0 degenerates to precision (recall > 0 for both).
        assert!((ordered[0].fmeasure - 0.9).abs() < 1e-12);
        assert!((ordered[1].fmeasure - 0.5).abs() < 1e-12);
    }

    #[test]
    fn masses_are_normalized_over_the_selected_plan() {
        // Selection sees three candidates; only two survive the cut. The
        // attached masses must be recalls over the *selected* pair's
        // throughput, exactly as if scored on that pair alone.
        let rewrites = vec![rq(1, 0.9, 10.0), rq(2, 0.8, 20.0), rq(3, 0.2, 1.0)];
        let ordered = order_rewrites(rewrites, &RankConfig { alpha: 1.0, k: 2 });
        let total: f64 = ordered
            .iter()
            .map(|s| s.rewrite.precision * s.rewrite.est_selectivity)
            .sum();
        for s in &ordered {
            let recall = s.rewrite.precision * s.rewrite.est_selectivity / total;
            let expect = f_measure(s.rewrite.precision, recall, 1.0);
            assert!((s.fmeasure - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn rescore_renormalizes_after_filtering() {
        let rewrites = vec![rq(1, 0.9, 10.0), rq(2, 0.8, 20.0), rq(3, 0.7, 5.0)];
        let ordered = order_rewrites(rewrites, &RankConfig { alpha: 1.0, k: 10 });
        // Drop the middle query (as an unsupported-attribute filter would)
        // and re-normalize: masses must match scoring the survivors alone.
        let mut filtered: Vec<ScoredRewrite> = ordered
            .iter()
            .filter(|s| (s.rewrite.precision - 0.8).abs() > 1e-12)
            .cloned()
            .collect();
        rescore(&mut filtered, 1.0);
        let alone = order_rewrites(
            filtered.iter().map(|s| s.rewrite.clone()).collect(),
            &RankConfig { alpha: 1.0, k: 10 },
        );
        for (f, a) in filtered.iter().zip(&alone) {
            assert!((f.fmeasure - a.fmeasure).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_on_ties() {
        let rewrites = vec![rq(2, 0.5, 10.0), rq(1, 0.5, 10.0)];
        let a = order_rewrites(rewrites.clone(), &RankConfig::default());
        let b = order_rewrites(rewrites, &RankConfig::default());
        let qa: Vec<String> = a.iter().map(|r| format!("{:?}", r.rewrite.query)).collect();
        let qb: Vec<String> = b.iter().map(|r| format!("{:?}", r.rewrite.query)).collect();
        assert_eq!(qa, qb);
    }
}
