//! Multi-source mediation: one global schema, many autonomous sources.
//!
//! The paper's mediator (Figures 1–2) fronts several web databases at once:
//! some support every global attribute, others lack a few. For each query,
//! [`MediatorNetwork::answer`] gathers certain and possible answers from
//! *every* registered source:
//!
//! * a source supporting all constrained attributes is served by the plain
//!   QPIAD pipeline with its own mined statistics;
//! * a source lacking a constrained attribute is served via the best
//!   **correlated source** per Definition 4 — the supporting source whose
//!   AFD for the missing attribute has the highest confidence and whose
//!   determining set the deficient source can bind.
//!
//! Mediation is **fault-isolated per member**: sources are autonomous and
//! flaky, so a member that fails (after retries) contributes a recorded
//! [`SourceOutcome::Failed`] instead of poisoning every other source's
//! answers, and a member whose rewrite plan partially failed is marked
//! [`SourceOutcome::Degraded`] with the dropped F-measure mass.
//!
//! On top of that isolation sits the **availability layer**
//! ([`qpiad_db::health`]): with a [`HealthRegistry`] attached
//! ([`MediatorNetwork::with_health`]), every pass snapshots each member's
//! circuit breaker sequentially, threads a pass-local probe through the
//! member's retrieval, and absorbs the observation logs in registration
//! order afterwards — so an Open member is skipped up front (its planned
//! work charged to [`Degradation::breaker_skips`]) and all breaker
//! decisions replay byte-identically at any thread count.
//! [`MediatorNetwork::answer_budgeted`] additionally funds the pass from a
//! caller-supplied [`QueryBudget`], and slow or recovering members get
//! their rewrites **hedged** to the best correlated supporting member.
//!
//! The **knowledge lifecycle** closes the loop on mined statistics:
//! members can be registered straight from a durable
//! [`KnowledgeStore`] ([`MediatorNetwork::add_supporting_from_store`]) —
//! a snapshot that fails to load (missing, corrupt, wrong version, wrong
//! schema) degrades that member to certain-answers-only instead of
//! failing the network, charged to
//! [`Degradation::knowledge_unavailable`]. With a [`DriftRegistry`]
//! attached ([`MediatorNetwork::with_drift`]), every pass folds each
//! member's validated live responses into a pass-local [`DriftProbe`]
//! (snapshotted sequentially before the fan-out, absorbed sequentially
//! after it, like breaker state); a member whose responses have drifted
//! past the threshold has its possible answers demoted and is queued for
//! re-mining via [`MediatorNetwork::refresh_member`], which atomically
//! swaps in freshly mined statistics without disturbing in-flight passes.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

use qpiad_db::health::{
    install_clock, BreakerProbe, BreakerState, BreakerView, HealthRegistry, MediationClock,
    Observation, PressureLevel, QueryBudget,
};
use qpiad_db::par;
use qpiad_db::{
    AttrId, AutonomousSource, Relation, Schema, SelectQuery, SourceBinding, SourceError,
    SourceMeter, Tuple,
};
use qpiad_learn::afd::AfdSet;
use qpiad_learn::drift::{DriftProbe, DriftRegistry, DriftVerdict};
use qpiad_learn::epoch::{KnowledgeCell, MemberKnowledge, RefreshKind};
use qpiad_learn::knowledge::{FoldOutcome, MiningConfig, SourceStats};
use qpiad_learn::persist::{PersistError, StatsSnapshot};
use qpiad_learn::store::KnowledgeStore;

use crate::correlated::{
    answer_from_correlated_planned, is_correlated_source_usable, plan_from_correlated_speculative,
};
use crate::mediator::{Degradation, Qpiad, QpiadConfig, QueryContext, RankedAnswer};
use crate::plan::{
    self, AdmissionMode, BaseGate, CacheStatus, EntryStatus, MediationPlan, PlanCache, SkipReason,
};
use crate::rank::RankConfig;

/// One registered source.
struct Member<'a> {
    source: &'a dyn AutonomousSource,
    binding: SourceBinding,
    /// The member's mined knowledge — statistics plus provenance flags
    /// (stale snapshot, contained load failure) — behind an epoch-swapped
    /// [`KnowledgeCell`]. Every pass pins the cell once at admission and
    /// uses that pinned generation throughout; a concurrent
    /// [`MediatorNetwork::refresh_member`] publishes a replacement without
    /// disturbing the pin, so a pass can never observe a torn mix of two
    /// knowledge generations.
    knowledge: KnowledgeCell,
}

/// Every member's knowledge pinned for one pass, snapshotted sequentially
/// at pass admission — the read side of the epoch swap. `pins[i]` is
/// member `i`'s pinned generation; `versions[i]` is the plan-cache
/// knowledge version the pass plans member `i` under (drift clock plus
/// pinned epoch), so a cached plan can never be keyed by one generation
/// and executed against another.
struct PassKnowledge {
    pins: Vec<Arc<MemberKnowledge>>,
    versions: Vec<u64>,
}

/// One member's drift state for a single pass, snapshotted sequentially
/// before the fan-out: the empty pass-local probe to fill and whether the
/// sticky verdict already demotes this pass — demotion decisions must not
/// depend on which worker finishes first.
#[derive(Clone, Default)]
struct MemberDrift {
    probe: Option<DriftProbe>,
    demoted: bool,
}

/// What [`MediatorNetwork::refresh_member_incremental_at`] did for one
/// member.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberFold {
    /// Streamed rows were folded and the new generation published.
    Folded {
        /// How many queued rows the fold consumed.
        rows: usize,
        /// Worst AFD/AKey confidence drift from the full-mine anchor.
        max_delta: f64,
    },
    /// The incremental path does not apply (no drift tracking, no mined
    /// statistics, or nothing streamed); the caller decides whether a
    /// full refresh is warranted.
    NotApplicable {
        /// Why the fold could not run.
        reason: &'static str,
    },
    /// Confidence drift crossed the re-mine bound; a full refresh must
    /// re-decide AFD membership.
    RemineRequired {
        /// Worst absolute confidence drift observed.
        max_delta: f64,
        /// The configured bound it crossed.
        bound: f64,
    },
}

/// How one member's contribution to a network answer went.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SourceOutcome {
    /// Full contribution: every planned query was answered.
    #[default]
    Healthy,
    /// Partial contribution: some rewritten queries were dropped after
    /// exhausting retries; the degradation records what was lost.
    Degraded(Degradation),
    /// No contribution: the member's base retrieval failed after retries.
    /// The other members' answers are unaffected.
    Failed(SourceError),
}

impl SourceOutcome {
    /// `true` iff the member contributed everything it was asked for.
    pub fn is_healthy(&self) -> bool {
        matches!(self, SourceOutcome::Healthy)
    }

    /// `true` iff the member contributed nothing because it failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, SourceOutcome::Failed(_))
    }

    /// `true` iff the member's contribution is partial.
    pub fn is_degraded(&self) -> bool {
        matches!(self, SourceOutcome::Degraded(_))
    }

    fn from_degradation(d: Degradation) -> Self {
        if d.is_degraded() {
            SourceOutcome::Degraded(d)
        } else {
            SourceOutcome::Healthy
        }
    }
}

/// Answers contributed by one source.
#[derive(Debug, Clone)]
pub struct SourceAnswers {
    /// The contributing source's name.
    pub source: String,
    /// Certain answers (global schema).
    pub certain: Vec<Tuple>,
    /// Ranked possible answers (global schema).
    pub possible: Vec<RankedAnswer>,
    /// Name of the correlated source whose statistics drove retrieval, if
    /// this source could not bind the query directly.
    pub via_correlated: Option<String>,
    /// How this member's retrieval went (healthy, degraded, or failed).
    pub outcome: SourceOutcome,
}

impl SourceAnswers {
    fn failed(source: &dyn AutonomousSource, error: SourceError) -> Self {
        SourceAnswers {
            source: source.name().to_string(),
            certain: Vec::new(),
            possible: Vec::new(),
            via_correlated: None,
            outcome: SourceOutcome::Failed(error),
        }
    }
}

/// The combined mediation result.
#[derive(Debug, Clone, Default)]
pub struct NetworkAnswer {
    /// Per-source contributions, in registration order.
    pub per_source: Vec<SourceAnswers>,
    /// Drift verdicts *newly* issued during this pass (a detector fires
    /// once; verdicts from earlier passes are queried on the registry).
    pub drift_verdicts: Vec<DriftVerdict>,
}

impl NetworkAnswer {
    /// Total certain answers across sources.
    pub fn certain_count(&self) -> usize {
        self.per_source.iter().map(|s| s.certain.len()).sum()
    }

    /// Total possible answers across sources.
    pub fn possible_count(&self) -> usize {
        self.per_source.iter().map(|s| s.possible.len()).sum()
    }

    /// `true` iff every member contributed its full answer set.
    pub fn fully_healthy(&self) -> bool {
        self.per_source.iter().all(|s| s.outcome.is_healthy())
    }

    /// The members that failed outright, with their errors.
    pub fn failed_sources(&self) -> Vec<(&str, &SourceError)> {
        self.per_source
            .iter()
            .filter_map(|s| match &s.outcome {
                SourceOutcome::Failed(e) => Some((s.source.as_str(), e)),
                _ => None,
            })
            .collect()
    }

    /// Number of members whose contribution was degraded (partial).
    pub fn degraded_count(&self) -> usize {
        self.per_source.iter().filter(|s| s.outcome.is_degraded()).count()
    }
}

/// A mediator over several autonomous sources sharing a global schema.
pub struct MediatorNetwork<'a> {
    global: Arc<Schema>,
    members: Vec<Member<'a>>,
    config: QpiadConfig,
    /// Circuit-breaker registry shared across passes (and, if the caller
    /// wants, across networks). `None` disables health management.
    health: Option<Arc<HealthRegistry>>,
    /// Drift registry shared across passes: tracks how far each member's
    /// live responses have diverged from its mined sample. `None`
    /// disables drift detection.
    drift: Option<Arc<DriftRegistry>>,
    /// Whether slow / recovering members get their rewrites hedged.
    hedging: bool,
    /// Shared mediation-plan cache: each supporting member's candidate
    /// rewrites are memoized per (query template, knowledge version).
    /// `None` disables plan caching.
    plan_cache: Option<Arc<PlanCache>>,
    /// Network-scoped mediation clock, installed around every pass so
    /// retry backoff and injected latency sleep on *this* network's clock
    /// rather than the process-global shim. `None` defers to whatever
    /// clock the calling thread (or the process fallback) provides.
    clock: Option<Arc<MediationClock>>,
}

impl<'a> MediatorNetwork<'a> {
    /// Creates an empty network over the global schema.
    pub fn new(global: Arc<Schema>, config: QpiadConfig) -> Self {
        MediatorNetwork {
            global,
            members: Vec::new(),
            config,
            health: None,
            drift: None,
            hedging: true,
            plan_cache: None,
            clock: None,
        }
    }

    /// Attaches a network-scoped [`MediationClock`]. Every answer and
    /// EXPLAIN pass installs it for the pass's duration (fan-out workers
    /// inherit it), so concurrent callers against *other* networks can
    /// never warp this network's backoff or injected-latency accounting.
    pub fn with_clock(mut self, clock: Arc<MediationClock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The attached mediation clock, if any.
    pub fn clock(&self) -> Option<&Arc<MediationClock>> {
        self.clock.as_ref()
    }

    /// Attaches a circuit-breaker registry. Breaker state persists across
    /// passes: a member that keeps failing is skipped up front until its
    /// cooldown elapses and a half-open probe succeeds.
    pub fn with_health(mut self, health: Arc<HealthRegistry>) -> Self {
        self.health = Some(health);
        self
    }

    /// Enables or disables hedged queries (default: enabled). Hedging only
    /// activates for members whose breaker is half-open or whose metered
    /// latency sits in the slowest decile, so healthy networks never pay
    /// for it.
    pub fn with_hedging(mut self, enabled: bool) -> Self {
        self.hedging = enabled;
        self
    }

    /// Attaches a drift registry. Must be called **before** sources are
    /// registered (like [`Self::with_health`]): each supporting member's
    /// detector is seeded from its mined statistics at registration time.
    pub fn with_drift(mut self, drift: Arc<DriftRegistry>) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Attaches a shared plan cache: repeated query templates against a
    /// member skip rewrite generation and ranking until the member's
    /// knowledge version moves ([`Self::refresh_member`] or a drift
    /// verdict). Hits and misses are counted on each source's
    /// [`SourceMeter`].
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// The attached plan cache, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// The knowledge version a member's cached plans are keyed by: the sum
    /// of the drift registry's counter (bumped on registration, drift
    /// verdicts, and refreshes) and the member's [`KnowledgeCell`] epoch
    /// (bumped by every publication, so refreshes invalidate even without
    /// a drift registry attached). Monotonic — any bump on either clock
    /// orphans the member's cached plans.
    pub fn member_knowledge_version(&self, name: &str) -> u64 {
        let drift = self.drift.as_ref().map(|d| d.knowledge_version(name)).unwrap_or(0);
        let epoch = self
            .members
            .iter()
            .find(|m| m.source.name() == name)
            .map(|m| m.knowledge.epoch())
            .unwrap_or(0);
        drift + epoch
    }

    /// Every member's current knowledge epoch, in registration order: 0
    /// until its first [`Self::refresh_member`] publication, +1 per
    /// publication since. The serving layer's metrics surface reports
    /// these per member.
    pub fn member_epochs(&self) -> Vec<(String, u64)> {
        self.members
            .iter()
            .map(|m| (m.source.name().to_string(), m.knowledge.epoch()))
            .collect()
    }

    /// The members whose knowledge wants refreshing, in name order: every
    /// member the drift registry has queued for re-mining
    /// ([`DriftRegistry::pending_refresh`]) plus every member currently
    /// running without usable knowledge (a contained snapshot-load
    /// failure). The serving layer's maintenance pass drains this list.
    pub fn refresh_candidates(&self) -> Vec<String> {
        let mut pending: BTreeSet<String> = self
            .drift
            .as_ref()
            .map(|d| d.pending_refresh().into_iter().collect())
            .unwrap_or_default();
        for m in &self.members {
            if m.knowledge.pin().unavailable {
                pending.insert(m.source.name().to_string());
            }
        }
        pending.into_iter().collect()
    }

    /// Pins every member's knowledge for one pass (sequential, at pass
    /// admission) and computes the per-member plan-cache versions from the
    /// pinned epochs — the version and the statistics travel together from
    /// here on, so a concurrent refresh cannot tear them apart.
    fn pin_pass(&self) -> PassKnowledge {
        let pins: Vec<Arc<MemberKnowledge>> =
            self.members.iter().map(|m| m.knowledge.pin()).collect();
        let versions = self
            .members
            .iter()
            .zip(&pins)
            .map(|(m, pin)| {
                let drift = self
                    .drift
                    .as_ref()
                    .map(|d| d.knowledge_version(m.source.name()))
                    .unwrap_or(0);
                drift + pin.epoch
            })
            .collect();
        PassKnowledge { pins, versions }
    }

    /// The global mediated schema.
    pub fn global_schema(&self) -> &Arc<Schema> {
        &self.global
    }

    /// The registered members' source names, in registration order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.source.name()).collect()
    }

    /// A snapshot of every member's access meter, in registration order.
    /// The serving layer's metrics surface reads these without resetting.
    pub fn member_meters(&self) -> Vec<(String, SourceMeter)> {
        self.members
            .iter()
            .map(|m| (m.source.name().to_string(), m.source.meter()))
            .collect()
    }

    /// A single scalar summarizing the network's knowledge state: the sum
    /// of every member's [`Self::member_knowledge_version`]. Any re-mine
    /// or drift demotion moves it, so two passes with equal epochs planned
    /// against identical knowledge — the serving layer keys request
    /// coalescing on it.
    pub fn knowledge_epoch(&self) -> u64 {
        self.members
            .iter()
            .map(|m| self.member_knowledge_version(m.source.name()))
            .sum()
    }

    /// The attached health registry, if any.
    pub fn health(&self) -> Option<&Arc<HealthRegistry>> {
        self.health.as_ref()
    }

    /// The attached drift registry, if any.
    pub fn drift(&self) -> Option<&Arc<DriftRegistry>> {
        self.drift.as_ref()
    }

    fn push_supporting(
        mut self,
        source: &'a dyn AutonomousSource,
        stats: SourceStats,
        stale: bool,
    ) -> Self {
        let binding = SourceBinding::by_name(source.name(), &self.global, source.schema());
        for g in self.global.attr_ids() {
            assert!(
                binding.supports(g),
                "source `{}` lacks global attribute `{}`; register it with add_deficient",
                source.name(),
                self.global.attr(g).name()
            );
        }
        if let Some(d) = &self.drift {
            d.register(source.name(), &stats);
        }
        let knowledge =
            if stale { MemberKnowledge::restored(stats) } else { MemberKnowledge::mined(stats) };
        self.members.push(Member { source, binding, knowledge: KnowledgeCell::new(knowledge) });
        self
    }

    /// Registers a source that supports the full global schema, together
    /// with its mined statistics.
    ///
    /// # Panics
    ///
    /// Panics if the source's schema does not cover every global attribute
    /// by name.
    pub fn add_supporting(self, source: &'a dyn AutonomousSource, stats: SourceStats) -> Self {
        self.push_supporting(source, stats, false)
    }

    /// Registers a supporting source whose statistics are mined live by
    /// `mine`, falling back to a persisted [`StatsSnapshot`] when the
    /// source cannot be mined right now: if the source's breaker is
    /// already Open, `mine` is not even attempted; if mining fails with a
    /// source failure, the failure is recorded against the breaker and the
    /// snapshot restored instead. A member running on restored statistics
    /// is **stale** — every answer it serves is tagged
    /// [`Degradation::stale_knowledge`] so callers can see the knowledge
    /// may be out of date. With no snapshot to fall back on, the error (or
    /// [`SourceError::CircuitOpen`]) propagates.
    ///
    /// # Panics
    ///
    /// Panics if the source's schema does not cover every global attribute
    /// by name (same contract as [`Self::add_supporting`]).
    pub fn add_supporting_or_stale(
        self,
        source: &'a dyn AutonomousSource,
        mine: impl FnOnce(&'a dyn AutonomousSource) -> Result<SourceStats, SourceError>,
        snapshot: Option<&StatsSnapshot>,
    ) -> Result<Self, SourceError> {
        let open = self
            .health
            .as_ref()
            .is_some_and(|h| h.state(source.name()) == BreakerState::Open);
        if open {
            return match snapshot {
                Some(snap) => Ok(self.push_supporting(source, snap.restore(), true)),
                None => Err(SourceError::CircuitOpen),
            };
        }
        match mine(source) {
            Ok(stats) => Ok(self.push_supporting(source, stats, false)),
            Err(e) if e.is_failure() => {
                if let Some(h) = &self.health {
                    h.absorb(source.name(), &[Observation::Failure]);
                }
                match snapshot {
                    Some(snap) => Ok(self.push_supporting(source, snap.restore(), true)),
                    None => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Registers a supporting source whose statistics come from a durable
    /// [`KnowledgeStore`]. The load path is **fault-contained**: a
    /// snapshot that is missing, corrupt, version-mismatched, or mined
    /// against a different schema degrades the member to
    /// **certain-answers-only** (it has no statistics to rewrite with, so
    /// every answer it serves is tagged
    /// [`Degradation::knowledge_unavailable`]) instead of failing the
    /// network. The classified load error is kept for diagnostics
    /// ([`Self::knowledge_failures`]) and the member heals on the next
    /// successful [`Self::refresh_member`].
    ///
    /// # Panics
    ///
    /// Panics if the source's schema does not cover every global attribute
    /// by name (same contract as [`Self::add_supporting`]).
    pub fn add_supporting_from_store(
        mut self,
        source: &'a dyn AutonomousSource,
        store: &KnowledgeStore,
    ) -> Self {
        match store.load_for(source.name(), source.schema()) {
            Ok(snapshot) => self.push_supporting(source, snapshot.restore(), false),
            Err(e) => {
                let binding =
                    SourceBinding::by_name(source.name(), &self.global, source.schema());
                for g in self.global.attr_ids() {
                    assert!(
                        binding.supports(g),
                        "source `{}` lacks global attribute `{}`; register it with add_deficient",
                        source.name(),
                        self.global.attr(g).name()
                    );
                }
                self.members.push(Member {
                    source,
                    binding,
                    knowledge: KnowledgeCell::new(MemberKnowledge::unavailable(e)),
                });
                self
            }
        }
    }

    /// Registers a source whose local schema lacks some global attributes;
    /// queries on those attributes are served through a correlated source.
    pub fn add_deficient(mut self, source: &'a dyn AutonomousSource) -> Self {
        let binding = SourceBinding::by_name(source.name(), &self.global, source.schema());
        self.members.push(Member {
            source,
            binding,
            knowledge: KnowledgeCell::new(MemberKnowledge::absent()),
        });
        self
    }

    /// The members currently running without usable knowledge, with the
    /// classified load error that put them there.
    pub fn knowledge_failures(&self) -> Vec<(String, PersistError)> {
        self.members
            .iter()
            .filter_map(|m| {
                let pinned = m.knowledge.pin();
                pinned.error.clone().map(|e| (m.source.name().to_string(), e))
            })
            .collect()
    }

    /// Re-mines one member's knowledge and atomically publishes it.
    ///
    /// `mine` produces fresh statistics from the live source (typically
    /// [`SourceStats::refresh`] on the old bundle, or a full re-mine). On
    /// success the new statistics are persisted to `persist`'s store
    /// *first* (journal + temp-file + rename, so a crash never leaves a
    /// torn snapshot and the store stays loadable at the prior version),
    /// the member's drift detector is re-seeded, and the new generation is
    /// published into the member's [`KnowledgeCell`] — clearing any stale
    /// / knowledge-unavailable degradation and bumping the member's
    /// knowledge version so cached plans built on the old statistics can
    /// never be served again. On *any* failure — mining or persistence —
    /// the old generation keeps serving, the failure is recorded against
    /// the member's breaker, and the source's refresh-failure meter is
    /// bumped: a refresh can fail, but it can never publish torn or empty
    /// knowledge.
    ///
    /// Takes `&self`: in-flight [`Self::answer`] passes pinned their
    /// knowledge at admission and are unaffected; passes admitted after
    /// the publication see the new generation whole.
    pub fn refresh_member(
        &self,
        name: &str,
        mine: impl FnOnce(&'a dyn AutonomousSource) -> Result<SourceStats, SourceError>,
        persist: Option<(&KnowledgeStore, &MiningConfig)>,
    ) -> Result<(), SourceError> {
        self.refresh_member_at(name, mine, persist, None)
    }

    /// [`Self::refresh_member`] stamped with the maintenance pass that
    /// requested it, so EXPLAIN can report when a member's knowledge was
    /// last refreshed.
    pub fn refresh_member_at(
        &self,
        name: &str,
        mine: impl FnOnce(&'a dyn AutonomousSource) -> Result<SourceStats, SourceError>,
        persist: Option<(&KnowledgeStore, &MiningConfig)>,
        pass: Option<u64>,
    ) -> Result<(), SourceError> {
        let idx = self
            .members
            .iter()
            .position(|m| m.source.name() == name)
            .ok_or_else(|| SourceError::Internal {
                message: format!("no member named `{name}`"),
            })?;
        let source = self.members[idx].source;
        match mine(source) {
            Ok(stats) => {
                if let Some((store, config)) = persist {
                    let snapshot = StatsSnapshot::capture(&stats, config);
                    if let Err(e) = store.save(name, &snapshot) {
                        // Persist-first: a generation that is not durable
                        // must never be published — a crash after the swap
                        // would restart the mediator on the *old* snapshot
                        // while caches were keyed by the new epoch.
                        if let Some(h) = &self.health {
                            h.absorb(name, &[Observation::Failure]);
                        }
                        source.note_refresh_failure();
                        return Err(SourceError::Internal {
                            message: format!(
                                "persisting refreshed knowledge for `{name}`: {e}"
                            ),
                        });
                    }
                }
                if let Some(d) = &self.drift {
                    d.note_refreshed(name, &stats);
                }
                let mut next = MemberKnowledge::mined(stats);
                next.refreshed_at_pass = pass;
                next.refresh_kind = Some(RefreshKind::Full);
                self.members[idx].knowledge.publish(next);
                source.note_refresh();
                Ok(())
            }
            Err(e) => {
                if e.is_failure() {
                    if let Some(h) = &self.health {
                        h.absorb(name, &[Observation::Failure]);
                    }
                }
                source.note_refresh_failure();
                Err(e)
            }
        }
    }

    /// Attempts to refresh one member's knowledge *incrementally*, by
    /// folding the validated live rows queued in the drift registry's
    /// sample stream into the retained sample
    /// ([`SourceStats::fold`]) — no source probe, no TANE re-run, no
    /// classifier retraining where the feature choice survived.
    ///
    /// The decision ladder:
    ///
    /// * No drift tracking, no mined statistics to fold into, or nothing
    ///   streamed → [`MemberFold::NotApplicable`] — the caller falls back
    ///   to a full [`Self::refresh_member_at`] (or skips).
    /// * Folded confidences drifted past `bound` from their full-mine
    ///   anchors → [`MemberFold::RemineRequired`] — AFD membership may
    ///   have changed, only a full re-mine can re-decide it. The streamed
    ///   rows stay queued; the full refresh that follows supersedes them.
    /// * Otherwise the fold publishes exactly like a full refresh:
    ///   persist-first into `persist`'s store, drift detector re-seeded
    ///   (consuming the folded rows up to the snapshot watermark), new
    ///   generation published with [`RefreshKind::Incremental`], cached
    ///   plans orphaned via the knowledge-version bump.
    pub fn refresh_member_incremental_at(
        &self,
        name: &str,
        config: &MiningConfig,
        persist: Option<(&KnowledgeStore, &MiningConfig)>,
        bound: f64,
        pass: Option<u64>,
    ) -> Result<MemberFold, SourceError> {
        let idx = self
            .members
            .iter()
            .position(|m| m.source.name() == name)
            .ok_or_else(|| SourceError::Internal {
                message: format!("no member named `{name}`"),
            })?;
        let Some(drift) = &self.drift else {
            return Ok(MemberFold::NotApplicable { reason: "drift tracking disabled" });
        };
        let pinned = self.members[idx].knowledge.pin();
        let Some(stats) = pinned.stats.as_ref() else {
            return Ok(MemberFold::NotApplicable { reason: "no mined statistics to fold into" });
        };
        let Some((rows, through)) = drift.stream_snapshot(name) else {
            return Ok(MemberFold::NotApplicable { reason: "no streamed rows pending" });
        };
        let folded_rows = rows.len();
        let fresh = Relation::new(stats.schema().clone(), rows);
        let source = self.members[idx].source;
        match stats.fold(&fresh, config, bound) {
            // Streamed rows were arity-checked at probe time against the
            // same schema the bundle holds, so skew here means a logic
            // error, not a misbehaving source.
            Err(e) => Err(SourceError::Internal {
                message: format!("incremental fold for `{name}`: {e}"),
            }),
            Ok(FoldOutcome::RemineRequired { max_delta, bound }) => {
                Ok(MemberFold::RemineRequired { max_delta, bound })
            }
            Ok(FoldOutcome::Folded { stats: folded, max_delta }) => {
                if let Some((store, config)) = persist {
                    let snapshot = StatsSnapshot::capture(&folded, config);
                    if let Err(e) = store.save(name, &snapshot) {
                        // Persist-first, exactly like the full path: a
                        // generation that is not durable is never published.
                        if let Some(h) = &self.health {
                            h.absorb(name, &[Observation::Failure]);
                        }
                        source.note_refresh_failure();
                        return Err(SourceError::Internal {
                            message: format!(
                                "persisting folded knowledge for `{name}`: {e}"
                            ),
                        });
                    }
                }
                drift.note_folded(name, &folded, through);
                let mut next = MemberKnowledge::mined(folded);
                next.refreshed_at_pass = pass;
                next.refresh_kind = Some(RefreshKind::Incremental);
                self.members[idx].knowledge.publish(next);
                source.note_refresh();
                Ok(MemberFold::Folded { rows: folded_rows, max_delta })
            }
        }
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` iff no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Picks the best correlated member for a query against a deficient
    /// member (Definition 4): among members with statistics whose best AFD
    /// for each constrained attribute has a determining set the deficient
    /// member supports, the one with the highest (minimum-over-attributes)
    /// AFD confidence. A candidate missing an AFD for *any* constrained
    /// attribute is disqualified — ignoring the gap would inflate its
    /// minimum-confidence score.
    fn correlated_for(
        &self,
        target: usize,
        query: &SelectQuery,
        pk: &PassKnowledge,
    ) -> Option<usize> {
        let target_binding = &self.members[target].binding;
        let mut best: Option<(f64, usize)> = None;
        for (j, m) in self.members.iter().enumerate() {
            if j == target {
                continue;
            }
            let Some(stats) = pk.pins[j].stats.as_ref() else { continue };
            if !is_correlated_source_usable(stats, target_binding, query) {
                continue;
            }
            let Some(conf) = min_afd_confidence(stats.afds(), &query.constrained_attrs()) else {
                continue;
            };
            // A drifted candidate's AFDs may no longer describe what it
            // returns: demote its score so an un-drifted alternative wins.
            let conf = conf * self.drift_weight(m.source.name());
            if best.as_ref().map(|(c, _)| conf > *c).unwrap_or(true) {
                best = Some((conf, j));
            }
        }
        best.map(|(_, j)| j)
    }

    /// The drift demotion factor for a source: 1.0 while its live
    /// responses match its mined sample, the registry's demote factor
    /// once a drift verdict has been issued (until re-mining resets it).
    fn drift_weight(&self, source: &str) -> f64 {
        self.drift.as_ref().map(|d| d.weight(source)).unwrap_or(1.0)
    }

    /// `true` iff the member can bind every constrained attribute of the
    /// query: the binding carries it AND the source's web form actually
    /// exposes a field for it (local schemas may store attributes they
    /// expose no field for).
    fn member_supports_all(member: &Member<'a>, query: &SelectQuery) -> bool {
        query.constrained_attrs().iter().all(|a| {
            member
                .binding
                .local_attr(*a)
                .is_some_and(|local| member.source.supports(local))
        })
    }

    /// Picks hedge partners for this pass, sequentially, from the breaker
    /// snapshot and the meters' latency history. `partners[i]` is the
    /// member index whose source doubles member `i`'s rewrites, or `None`.
    ///
    /// A member is hedge-*eligible* when it would run the direct QPIAD
    /// pipeline for this query (it has statistics and binds every
    /// constrained attribute) and is either recovering (breaker HalfOpen)
    /// or slow — its mean metered latency per query sits in the slowest
    /// decile of members with any latency history. The *partner* is the
    /// best correlated supporting member (highest minimum AFD confidence
    /// over the constrained attributes) whose breaker is Closed and whose
    /// local schema aligns positionally with the member's, so the same
    /// local rewrite is valid on both.
    fn hedge_partners(
        &self,
        query: &SelectQuery,
        views: &[BreakerView],
        pk: &PassKnowledge,
    ) -> Vec<Option<usize>> {
        let n = self.members.len();
        let mut partners: Vec<Option<usize>> = vec![None; n];
        if !self.hedging || n < 2 {
            return partners;
        }
        let avgs: Vec<u64> = self
            .members
            .iter()
            .map(|m| {
                let meter: SourceMeter = m.source.meter();
                let issued = meter.queries + meter.failures;
                if issued == 0 {
                    0
                } else {
                    meter.latency_ns / issued as u64
                }
            })
            .collect();
        let mut nonzero: Vec<u64> = avgs.iter().copied().filter(|a| *a > 0).collect();
        nonzero.sort_unstable();
        // The slowest-decile floor: ceil((len-1) * 0.9). With no latency
        // history at all, nothing qualifies as slow.
        let slow_floor = match nonzero.len() {
            0 => u64::MAX,
            len => nonzero[((len - 1) * 9).div_ceil(10)],
        };
        for (i, member) in self.members.iter().enumerate() {
            if pk.pins[i].stats.is_none() || !Self::member_supports_all(member, query) {
                continue;
            }
            let slow = avgs[i] > 0 && avgs[i] >= slow_floor;
            if views[i].state() != BreakerState::HalfOpen && !slow {
                continue;
            }
            partners[i] = self.hedge_partner_for(i, query, views, pk);
        }
        partners
    }

    /// The best hedge partner for member `i`, by Definition-4-style AFD
    /// confidence over the constrained attributes.
    fn hedge_partner_for(
        &self,
        i: usize,
        query: &SelectQuery,
        views: &[BreakerView],
        pk: &PassKnowledge,
    ) -> Option<usize> {
        let target = &self.members[i];
        let mut best: Option<(f64, usize)> = None;
        for (j, m) in self.members.iter().enumerate() {
            if j == i || views[j].state() != BreakerState::Closed {
                continue;
            }
            let Some(stats) = pk.pins[j].stats.as_ref() else { continue };
            if !Self::member_supports_all(m, query)
                || !schemas_aligned(target.source.schema(), m.source.schema())
            {
                continue;
            }
            let conf = min_afd_confidence(stats.afds(), &query.constrained_attrs())
                .unwrap_or(0.0)
                * self.drift_weight(m.source.name());
            if best.as_ref().map(|(c, _)| conf > *c).unwrap_or(true) {
                best = Some((conf, j));
            }
        }
        best.map(|(_, j)| j)
    }

    /// Serves one member under the availability layer: an Open breaker
    /// skips it up front; otherwise a pass-local probe and a per-member
    /// copy of the budget gate every query. Returns the answer plus the
    /// probe's observation log and the drift probe's accumulated
    /// observations, both for the sequential absorb phase.
    #[allow(clippy::too_many_arguments)] // one call site, all args are per-pass state
    fn answer_member(
        &self,
        index: usize,
        query: &SelectQuery,
        view: BreakerView,
        hedge: Option<usize>,
        budget: QueryBudget,
        pressure: PressureLevel,
        drift: MemberDrift,
        pass_cache: &Arc<PlanCache>,
        pk: &PassKnowledge,
    ) -> (Result<SourceAnswers, SourceError>, Vec<Observation>, Option<DriftProbe>) {
        let MemberDrift { probe: drift_probe, demoted: drifted } = drift;
        let member = &self.members[index];
        let knowledge = &pk.pins[index];
        if view.state() == BreakerState::Open {
            member.source.note_breaker_skip();
            let d = Degradation {
                breaker_skips: 1,
                last_error: Some(SourceError::CircuitOpen),
                ..Degradation::default()
            };
            let answers = SourceAnswers {
                source: member.source.name().to_string(),
                certain: Vec::new(),
                possible: Vec::new(),
                via_correlated: None,
                outcome: SourceOutcome::Degraded(d),
            };
            return (Ok(answers), Vec::new(), drift_probe);
        }
        let mut ctx = QueryContext::unbounded()
            .with_budget(budget)
            .with_probe(BreakerProbe::new(view))
            .with_pressure(pressure);
        if let Some(probe) = drift_probe {
            ctx = ctx.with_drift(probe);
        }
        let result = self.answer_member_in(index, query, hedge, &mut ctx, pass_cache, pk);
        let observations = ctx.probe.take_observations();
        let drift_probe = ctx.drift.take();
        let result = result.map(|mut answers| {
            if knowledge.stale {
                answers.outcome = tag_degradation(answers.outcome, |d| d.stale_knowledge = true);
            }
            if knowledge.unavailable {
                member.source.note_knowledge_unavailable();
                answers.outcome =
                    tag_degradation(answers.outcome, |d| d.knowledge_unavailable += 1);
            }
            if drifted {
                // The member's knowledge no longer matches what it
                // returns: demote the precision of every possible answer
                // it contributed and flag the degradation, so callers see
                // the answers survive but carry less weight until the
                // source is re-mined.
                let w = self.drift_weight(member.source.name());
                for a in &mut answers.possible {
                    a.query_precision *= w;
                }
                answers.outcome = tag_degradation(answers.outcome, |d| d.drift_demoted = true);
            }
            answers
        });
        (result, observations, drift_probe)
    }

    /// The per-member mediator for one pass: the member's *pinned*
    /// statistics under the network config, with the shared plan cache (if
    /// any) attached at the pinned knowledge version.
    fn member_qpiad(&self, stats: &SourceStats, version: u64) -> Qpiad {
        let qpiad = Qpiad::new(stats.clone(), self.config);
        match &self.plan_cache {
            Some(cache) => qpiad.with_plan_cache(Arc::clone(cache), version),
            None => qpiad,
        }
    }

    /// [`Self::member_qpiad`] with the *pass-local* plan cache attached.
    /// When the network has no configured cache, the pass cache is an
    /// ephemeral one created per `answer` call, so a supporting member and
    /// a deficient member served through it still plan each (source,
    /// template) pair exactly once within the pass.
    fn member_qpiad_in_pass(
        &self,
        index: usize,
        stats: &SourceStats,
        pass_cache: &Arc<PlanCache>,
        pk: &PassKnowledge,
    ) -> Qpiad {
        Qpiad::new(stats.clone(), self.config)
            .with_plan_cache(Arc::clone(pass_cache), pk.versions[index])
    }

    /// The pre-availability-layer body of `answer_member`: serves one
    /// member directly or through a correlated source, under the context's
    /// probe and budget.
    fn answer_member_in(
        &self,
        index: usize,
        query: &SelectQuery,
        hedge: Option<usize>,
        ctx: &mut QueryContext,
        pass_cache: &Arc<PlanCache>,
        pk: &PassKnowledge,
    ) -> Result<SourceAnswers, SourceError> {
        let member = &self.members[index];
        let supports_all = Self::member_supports_all(member, query);
        let answers = if supports_all {
            if let Some(stats) = pk.pins[index].stats.as_ref() {
                // Direct QPIAD. Statistics and query share the global
                // schema; supporting members map attributes 1:1. A hedged
                // member's queries are doubled to the partner source.
                let local = member.binding.translate_query(query)?;
                let qpiad = self.member_qpiad_in_pass(index, stats, pass_cache, pk);
                let set = match hedge {
                    Some(j) => {
                        let hedged = HedgedSource {
                            primary: member.source,
                            fallback: self.members[j].source,
                        };
                        qpiad.answer_in(&hedged, &local, ctx)?
                    }
                    None => qpiad.answer_in(member.source, &local, ctx)?,
                };
                SourceAnswers {
                    source: member.source.name().to_string(),
                    certain: set.certain.iter().map(|t| member.binding.lift_tuple(t)).collect(),
                    possible: set
                        .possible
                        .into_iter()
                        .map(|mut a| {
                            a.tuple = member.binding.lift_tuple(&a.tuple);
                            a
                        })
                        .collect(),
                    via_correlated: None,
                    outcome: SourceOutcome::from_degradation(set.degraded),
                }
            } else {
                // Supports the attributes but has no statistics: certain
                // answers only, still under admission and validation —
                // the same base gate the direct pipeline runs through.
                let local = member.binding.translate_query(query)?;
                let mut d = Degradation::default();
                let kept = plan::execute_base(
                    member.source,
                    &local,
                    &self.config.retry,
                    ctx,
                    &mut d,
                    BaseGate::Guarded,
                )?;
                SourceAnswers {
                    source: member.source.name().to_string(),
                    certain: kept.iter().map(|t| member.binding.lift_tuple(t)).collect(),
                    possible: Vec::new(),
                    via_correlated: None,
                    outcome: SourceOutcome::from_degradation(d),
                }
            }
        } else {
            // Deficient for this query: try a correlated source. The
            // context's probe tracks the *target* (this member); the
            // correlated member's own breaker was vetted in its own pass.
            match self.correlated_for(index, query, pk) {
                Some(j) => {
                    let correlated = &self.members[j];
                    // `correlated_for` only returns members with statistics;
                    // if that invariant ever breaks it must surface as a
                    // recorded failure for this member, not a panic.
                    let stats = pk.pins[j].stats.as_ref().ok_or_else(|| {
                        SourceError::Internal {
                            message: format!(
                                "correlated member `{}` has no statistics",
                                correlated.source.name()
                            ),
                        }
                    })?;
                    // Plan through the correlated member's own mediator:
                    // if the supporting pass already planned this template
                    // for the correlated source, the pass cache serves the
                    // candidate list instead of regenerating it.
                    let planner = self.member_qpiad_in_pass(j, stats, pass_cache, pk);
                    let mut result = answer_from_correlated_planned(
                        correlated.source,
                        &planner,
                        member.source,
                        &member.binding,
                        query,
                        &self.config.retry,
                        ctx,
                    )?;
                    if pk.pins[j].stale {
                        result.degraded.stale_knowledge = true;
                    }
                    SourceAnswers {
                        source: member.source.name().to_string(),
                        certain: Vec::new(),
                        possible: result.possible,
                        via_correlated: Some(correlated.source.name().to_string()),
                        outcome: SourceOutcome::from_degradation(result.degraded),
                    }
                }
                None => SourceAnswers {
                    source: member.source.name().to_string(),
                    certain: Vec::new(),
                    possible: Vec::new(),
                    via_correlated: None,
                    outcome: SourceOutcome::Healthy,
                },
            }
        };
        Ok(answers)
    }

    /// Answers a global-schema query against every registered source.
    ///
    /// Sources that can neither bind the query nor be reached through a
    /// correlated source contribute an empty answer set (exactly what a
    /// conventional mediator would return for them).
    ///
    /// Sources are interrogated concurrently on the [`par`] worker pool
    /// (each is independent; meters and lazy indexes sit behind locks) and
    /// contributions are assembled in registration order, identical to
    /// sequential mediation.
    ///
    /// **Failures are isolated per member**: a member whose retrieval fails
    /// (after the configured retries) contributes an empty answer set with
    /// [`SourceOutcome::Failed`] recorded, instead of aborting the whole
    /// mediation — the best partial answer the network can certify is
    /// always returned. The `Result` return type is kept for API stability;
    /// the current implementation always returns `Ok`.
    pub fn answer(&self, query: &SelectQuery) -> Result<NetworkAnswer, SourceError> {
        self.answer_budgeted(query, QueryBudget::unlimited())
    }

    /// [`Self::answer`] under a per-member [`QueryBudget`].
    ///
    /// Each member receives its own copy of the budget (members are
    /// interrogated concurrently, so a shared pool would make admission
    /// racy — a *per-member* budget keeps every decision deterministic).
    ///
    /// One pass of the availability protocol runs around the fan-out: the
    /// pass clock ticks and each member's breaker is snapshotted
    /// *sequentially before* the fan-out (an Open member is skipped up
    /// front, charging [`Degradation::breaker_skips`]); hedge partners are
    /// picked from the same snapshot; after the fan-out the members'
    /// observation logs are absorbed into the registry in registration
    /// order. Mediator-side refusals ([`SourceError::CircuitOpen`] /
    /// [`SourceError::BudgetExhausted`]) degrade the member instead of
    /// failing it — no query reached the source.
    pub fn answer_budgeted(
        &self,
        query: &SelectQuery,
        budget: QueryBudget,
    ) -> Result<NetworkAnswer, SourceError> {
        self.answer_under(query, budget, PressureLevel::Normal)
    }

    /// [`Self::answer_budgeted`] under an overload [`PressureLevel`].
    ///
    /// The level is the serving layer's degradation ladder, applied
    /// uniformly to every member of this pass: a non-`Normal` level clamps
    /// each member's admitted rewrite plan to its rank-ordered top
    /// fraction (shed entries charge [`Degradation::overload_sheds`] and
    /// the member's [`SourceMeter::shed`](qpiad_db::SourceMeter) cell),
    /// and at `High` or above hedging is disabled outright — a hedge
    /// doubles source queries, the first expense to cut when capacity is
    /// scarce. Certain answers are never shed: `Critical` still executes
    /// every member's base query.
    pub fn answer_under(
        &self,
        query: &SelectQuery,
        budget: QueryBudget,
        pressure: PressureLevel,
    ) -> Result<NetworkAnswer, SourceError> {
        // Scope every sleep in this pass (retry backoff, injected latency)
        // to the network's own clock; fan-out workers inherit it via `par`.
        let _clock = install_clock(self.clock.clone().or_else(qpiad_db::health::current_clock));
        // Sequential pre-pass: tick the pass clock (half-opening cooled
        // breakers), pin every member's knowledge generation, snapshot
        // views, pick hedge partners, snapshot each member's drift state
        // (an empty pass-local probe plus the sticky drifted flag —
        // demotion decisions must not depend on which worker finishes
        // first). The knowledge pin is the admission point of the epoch
        // protocol: a refresh published after this line is invisible to
        // this pass and fully visible to the next.
        if let Some(h) = &self.health {
            h.begin_pass();
        }
        let pk = self.pin_pass();
        let views: Vec<BreakerView> = self
            .members
            .iter()
            .map(|m| match &self.health {
                Some(h) => h.view(m.source.name()),
                None => BreakerView::disabled(),
            })
            .collect();
        let hedges = if pressure.allows_hedging() {
            self.hedge_partners(query, &views, &pk)
        } else {
            vec![None; self.members.len()]
        };
        let drift_states: Vec<MemberDrift> = self
            .members
            .iter()
            .map(|m| MemberDrift {
                probe: self.drift.as_ref().and_then(|d| d.probe(m.source.name())),
                demoted: self.drift.as_ref().is_some_and(|d| d.is_drifted(m.source.name())),
            })
            .collect();

        // The pass-local plan cache: the configured cache when one is
        // attached, an ephemeral one otherwise. Either way, a supporting
        // member and a deficient member served through it plan each
        // (source, template) pair at most once per pass. Races only cost a
        // duplicate computation — the cached artifact is a pure function
        // of (query, base, knowledge, α, k), so answers stay
        // thread-count-independent.
        let pass_cache: Arc<PlanCache> = match &self.plan_cache {
            Some(cache) => Arc::clone(cache),
            None => Arc::new(PlanCache::new()),
        };

        let n = self.members.len();
        type MemberResult =
            (Result<SourceAnswers, SourceError>, Vec<Observation>, Option<DriftProbe>);
        let results: Vec<MemberResult> = if n > 1 && par::num_threads() > 1 {
            par::parallel_map_indexed(n, |i| {
                self.answer_member(
                    i,
                    query,
                    views[i],
                    hedges[i],
                    budget,
                    pressure,
                    drift_states[i].clone(),
                    &pass_cache,
                    &pk,
                )
            })
        } else {
            (0..n)
                .zip(drift_states)
                .map(|(i, drift)| {
                    self.answer_member(
                        i, query, views[i], hedges[i], budget, pressure, drift, &pass_cache, &pk,
                    )
                })
                .collect()
        };

        // Sequential post-pass: absorb observation logs and drift probes
        // in registration order, then assemble contributions.
        let mut out = NetworkAnswer::default();
        for (member, (r, observations, drift_probe)) in self.members.iter().zip(results) {
            if let Some(h) = &self.health {
                h.absorb(member.source.name(), &observations);
            }
            if let (Some(d), Some(probe)) = (&self.drift, drift_probe) {
                if let Some(verdict) = d.absorb(member.source.name(), probe) {
                    member.source.note_drift();
                    out.drift_verdicts.push(verdict);
                }
            }
            out.per_source.push(match r {
                Ok(answers) => {
                    // Charge ladder-shed rewrites to the member's meter so
                    // overload cost is visible next to breaker skips.
                    if let SourceOutcome::Degraded(d) = &answers.outcome {
                        if d.overload_sheds > 0 {
                            member.source.note_shed(d.overload_sheds);
                        }
                    }
                    answers
                }
                Err(e @ (SourceError::CircuitOpen | SourceError::BudgetExhausted)) => {
                    // Mediator-side refusal: the member was skipped whole,
                    // not failed — no query reached the source.
                    let mut d = Degradation::default();
                    match e {
                        SourceError::CircuitOpen => d.breaker_skips = 1,
                        _ => {
                            // The deadline could not fund even this
                            // member's base query: refused at the cheapest
                            // layer, before any fan-out.
                            member.source.note_deadline_refused();
                            d.budget_skips = 1;
                        }
                    }
                    d.last_error = Some(e);
                    SourceAnswers {
                        source: member.source.name().to_string(),
                        certain: Vec::new(),
                        possible: Vec::new(),
                        via_correlated: None,
                        outcome: SourceOutcome::Degraded(d),
                    }
                }
                Err(e) => {
                    member.source.note_degraded();
                    SourceAnswers::failed(member.source, e)
                }
            });
        }
        Ok(out)
    }

    /// Renders the network's full mediation plan for `query` — EXPLAIN —
    /// without issuing a single source query.
    ///
    /// Mirrors one [`Self::answer`] pass: the same breaker snapshot (read
    /// without ticking the pass clock, so explaining is side-effect-free),
    /// the same hedge-partner selection, and per member either the direct
    /// QPIAD plan (speculative: the base set is approximated from the
    /// mined sample, and the plan cache is bypassed), a
    /// certain-answers-only plan, or the plan a deficient member would be
    /// served through its best correlated source. Breaker refusals show up
    /// as per-entry skip reasons.
    pub fn explain(&self, query: &SelectQuery) -> String {
        self.explain_under(query, PressureLevel::Normal)
    }

    /// [`Self::explain`] under an overload [`PressureLevel`]: renders the
    /// plan a pass at that rung would run — ladder-shed entries show as
    /// per-entry `SKIP — shed by overload ladder` lines with their
    /// F-measure mass, and hedge partners disappear once the rung disables
    /// hedging — still issuing zero source queries.
    pub fn explain_under(&self, query: &SelectQuery, pressure: PressureLevel) -> String {
        use std::fmt::Write as _;
        let _clock = install_clock(self.clock.clone().or_else(qpiad_db::health::current_clock));
        let pk = self.pin_pass();
        let views: Vec<BreakerView> = self
            .members
            .iter()
            .map(|m| match &self.health {
                Some(h) => h.view(m.source.name()),
                None => BreakerView::disabled(),
            })
            .collect();
        let hedges = if pressure.allows_hedging() {
            self.hedge_partners(query, &views, &pk)
        } else {
            vec![None; self.members.len()]
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "EXPLAIN over {} member(s) — query {}",
            self.members.len(),
            query.display(&self.global)
        );
        if pressure != PressureLevel::Normal {
            let _ = writeln!(
                out,
                "  overload pressure: {} (rewrite fraction {:.2}, hedging {})",
                pressure.label(),
                pressure.rewrite_fraction(),
                if pressure.allows_hedging() { "on" } else { "off" }
            );
        }
        for i in 0..self.members.len() {
            let _ = writeln!(out);
            out.push_str(&self.explain_member(i, query, views[i], hedges[i], pressure, &pk));
        }
        out
    }

    /// One member's section of [`Self::explain`].
    fn explain_member(
        &self,
        index: usize,
        query: &SelectQuery,
        view: BreakerView,
        hedge: Option<usize>,
        pressure: PressureLevel,
        pk: &PassKnowledge,
    ) -> String {
        use std::fmt::Write as _;
        let member = &self.members[index];
        let knowledge = &pk.pins[index];
        let name = member.source.name();
        if Self::member_supports_all(member, query) {
            let Ok(local) = member.binding.translate_query(query) else {
                return format!(
                    "plan for source `{name}` — query untranslatable to local schema\n"
                );
            };
            if let Some(stats) = knowledge.stats.as_ref() {
                let qpiad = self.member_qpiad(stats, pk.versions[index]);
                let mut ctx = QueryContext::unbounded()
                    .with_probe(BreakerProbe::new(view))
                    .with_pressure(pressure);
                let mut plan = qpiad.plan_speculative(member.source, &local, &mut ctx);
                plan.hedge = hedge.map(|j| self.members[j].source.name().to_string());
                let mut out = plan.render(member.source.schema());
                if knowledge.stale {
                    let _ = writeln!(
                        out,
                        "  note: statistics restored from a snapshot (stale knowledge)"
                    );
                }
                if let Some(pass) = knowledge.refreshed_at_pass {
                    let _ = write!(
                        out,
                        "  note: knowledge refreshed at pass {pass} (epoch {})",
                        knowledge.epoch
                    );
                    if let Some(kind) = knowledge.refresh_kind {
                        let _ = write!(out, " via {kind}");
                    }
                    let _ = writeln!(out);
                }
                return out;
            }
            // No mined statistics: certain answers only — render the
            // base-only plan with the same admission preview.
            let mut base_plan =
                MediationPlan::new(name, local, self.config.retry, AdmissionMode::PlanTime);
            base_plan.cache = CacheStatus::Speculative;
            base_plan.base_status = if view.state() == BreakerState::Open {
                EntryStatus::Skipped(SkipReason::BreakerOpen)
            } else {
                EntryStatus::Admitted(self.config.retry)
            };
            let mut out = base_plan.render(member.source.schema());
            let why = if knowledge.unavailable {
                "knowledge unavailable"
            } else {
                "no mined statistics"
            };
            let _ = writeln!(out, "  note: certain answers only ({why}; nothing to rewrite with)");
            return out;
        }
        // Deficient for this query: the plan lives on the correlated
        // source's statistics; rewrites are issued to this member.
        match self.correlated_for(index, query, pk) {
            Some(j) => {
                let correlated = &self.members[j];
                let Some(stats) = pk.pins[j].stats.as_ref() else {
                    return format!(
                        "plan for source `{name}` — correlated member `{}` has no statistics\n",
                        correlated.source.name()
                    );
                };
                let mut ctx = QueryContext::unbounded()
                    .with_probe(BreakerProbe::new(view))
                    .with_pressure(pressure);
                let plan = plan_from_correlated_speculative(
                    stats,
                    name,
                    &member.binding,
                    query,
                    &RankConfig { alpha: self.config.alpha, k: self.config.k },
                    &self.config.retry,
                    &mut ctx,
                );
                let mut out = format!(
                    "(member `{name}` cannot bind the query — plan built from correlated \
                     source `{}`'s statistics)\n",
                    correlated.source.name()
                );
                out.push_str(&plan.render(&self.global));
                out
            }
            None => format!(
                "plan for source `{name}` — no usable correlated source; empty contribution\n"
            ),
        }
    }
}

/// Applies a degradation tag to an outcome: a Healthy outcome becomes
/// Degraded iff the tag actually degrades it, a Degraded outcome gains the
/// tag, a Failed outcome is left alone (the member contributed nothing to
/// tag).
fn tag_degradation(outcome: SourceOutcome, tag: impl FnOnce(&mut Degradation)) -> SourceOutcome {
    match outcome {
        SourceOutcome::Healthy => {
            let mut d = Degradation::default();
            tag(&mut d);
            SourceOutcome::from_degradation(d)
        }
        SourceOutcome::Degraded(mut d) => {
            tag(&mut d);
            SourceOutcome::Degraded(d)
        }
        failed => failed,
    }
}

/// `true` iff the two schemas agree positionally on attribute names and
/// types, so a query phrased against one is valid verbatim against the
/// other. Hedging requires this: the same local rewrite goes to both
/// sources.
fn schemas_aligned(a: &Schema, b: &Schema) -> bool {
    a.arity() == b.arity()
        && a.attr_ids().all(|id| {
            a.attr(id).name() == b.attr(id).name() && a.attr(id).ty() == b.attr(id).ty()
        })
}

/// A primary source doubled by a correlated fallback for one mediation
/// pass (hedged queries). Every query is issued to *both* sources — in
/// parallel when workers are available, sequentially otherwise, so meters
/// accrue identically at any thread count — and the primary's response is
/// preferred deterministically. Only when the primary *fails* (not a
/// rejection) and the fallback serves does the fallback's response stand
/// in, deduplicated by tuple id and counted on the primary's meter as a
/// hedge.
struct HedgedSource<'a> {
    primary: &'a dyn AutonomousSource,
    fallback: &'a dyn AutonomousSource,
}

impl AutonomousSource for HedgedSource<'_> {
    fn name(&self) -> &str {
        self.primary.name()
    }

    fn schema(&self) -> &Arc<Schema> {
        self.primary.schema()
    }

    // Planning is the primary's: the hedge must not change which rewrites
    // are generated or admitted, only who ends up serving them.
    fn supports(&self, attr: AttrId) -> bool {
        self.primary.supports(attr)
    }

    fn allows_null_binding(&self) -> bool {
        self.primary.allows_null_binding()
    }

    fn has_query_budget(&self) -> bool {
        // Either budget makes issue order significant: serve sequentially.
        self.primary.has_query_budget() || self.fallback.has_query_budget()
    }

    fn query(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError> {
        let hedgeable = q.predicates().iter().all(|p| self.fallback.supports(p.attr))
            && (!q.requires_null_binding() || self.fallback.allows_null_binding());
        if !hedgeable {
            return self.primary.query(q);
        }
        let lost = || SourceError::Internal { message: "hedge fan-out lost a result".into() };
        let (primary, fallback) = if par::num_threads() > 1 {
            let mut results = par::parallel_map_indexed(2, |i| {
                if i == 0 {
                    self.primary.query(q)
                } else {
                    self.fallback.query(q)
                }
            });
            let fallback = results.pop().unwrap_or_else(|| Err(lost()));
            let primary = results.pop().unwrap_or_else(|| Err(lost()));
            (primary, fallback)
        } else {
            (self.primary.query(q), self.fallback.query(q))
        };
        match primary {
            Ok(tuples) => Ok(tuples),
            Err(e) if e.is_failure() => match fallback {
                Ok(mut tuples) => {
                    self.primary.note_hedge();
                    let mut seen: HashSet<qpiad_db::TupleId> = HashSet::new();
                    tuples.retain(|t| seen.insert(t.id()));
                    Ok(tuples)
                }
                Err(_) => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    fn meter(&self) -> SourceMeter {
        self.primary.meter()
    }

    fn reset_meter(&self) {
        self.primary.reset_meter();
    }

    fn note_retries(&self, n: usize) {
        self.primary.note_retries(n);
    }

    fn note_failure(&self) {
        self.primary.note_failure();
    }

    fn note_degraded(&self) {
        self.primary.note_degraded();
    }

    fn note_quarantined(&self, n: usize) {
        self.primary.note_quarantined(n);
    }

    fn note_hedge(&self) {
        self.primary.note_hedge();
    }

    fn note_breaker_skip(&self) {
        self.primary.note_breaker_skip();
    }

    fn note_shed(&self, n: usize) {
        self.primary.note_shed(n);
    }

    fn note_deadline_refused(&self) {
        self.primary.note_deadline_refused();
    }

    fn note_knowledge_unavailable(&self) {
        self.primary.note_knowledge_unavailable();
    }

    fn note_plan_cache_hit(&self) {
        self.primary.note_plan_cache_hit();
    }

    fn note_plan_cache_miss(&self) {
        self.primary.note_plan_cache_miss();
    }

    fn note_drift(&self) {
        self.primary.note_drift();
    }

    fn note_refresh(&self) {
        self.primary.note_refresh();
    }

    fn note_refresh_failure(&self) {
        self.primary.note_refresh_failure();
    }

    fn note_latency(&self, d: std::time::Duration) {
        self.primary.note_latency(d);
    }
}

/// The Definition-4 score component: the minimum best-AFD confidence over
/// the given attributes, or `None` when any attribute has no AFD at all —
/// a candidate correlated source that cannot explain every constrained
/// attribute must be disqualified, not scored on the attributes it happens
/// to cover.
fn min_afd_confidence(afds: &AfdSet, attrs: &[AttrId]) -> Option<f64> {
    let mut conf = f64::INFINITY;
    for a in attrs {
        conf = conf.min(afds.best(*a)?.confidence);
    }
    conf.is_finite().then_some(conf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::{Predicate, Relation, Value, WebSource};
    use qpiad_learn::knowledge::MiningConfig;

    fn mined(ed: &Relation, seed: u64) -> SourceStats {
        let sample = uniform_sample(ed, 0.10, seed);
        SourceStats::mine(&sample, ed.len(), &MiningConfig::default())
    }

    struct Fixture {
        global: Arc<Schema>,
        cars: WebSource,
        cars_stats: SourceStats,
        yahoo: WebSource,
        yahoo_ground: Relation,
    }

    fn fixture() -> Fixture {
        let cars_gd = CarsConfig::default().with_rows(6_000).generate(61);
        let global = cars_gd.schema().clone();
        let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
        let cars_stats = mined(&cars_ed, 2);
        let cars = WebSource::new("cars.com", cars_ed);

        let yahoo_ground = CarsConfig::default().with_rows(6_000).generate(62);
        let keep: Vec<_> = global
            .attr_ids()
            .filter(|a| global.attr(*a).name() != "body_style")
            .collect();
        let yahoo_local = yahoo_ground.project_to("yahoo_autos", &keep);
        let yahoo = WebSource::new("yahoo_autos", yahoo_local);

        Fixture { global, cars, cars_stats, yahoo, yahoo_ground }
    }

    #[test]
    fn network_answers_from_all_sources() {
        let f = fixture();
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting(&f.cars, f.cars_stats.clone())
            .add_deficient(&f.yahoo);
        assert_eq!(network.len(), 2);

        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answer = network.answer(&q).unwrap();
        assert_eq!(answer.per_source.len(), 2);

        // Cars.com contributes certain + possible answers directly.
        let cars_part = &answer.per_source[0];
        assert_eq!(cars_part.source, "cars.com");
        assert!(cars_part.via_correlated.is_none());
        assert!(!cars_part.certain.is_empty());
        assert!(!cars_part.possible.is_empty());

        // Yahoo contributes possible answers via the correlated source.
        let yahoo_part = &answer.per_source[1];
        assert_eq!(yahoo_part.source, "yahoo_autos");
        assert_eq!(yahoo_part.via_correlated.as_deref(), Some("cars.com"));
        assert!(yahoo_part.certain.is_empty());
        assert!(!yahoo_part.possible.is_empty());
        // All lifted to the global schema with a null on body_style.
        for a in &yahoo_part.possible {
            assert_eq!(a.tuple.arity(), f.global.arity());
            assert!(a.tuple.value(body).is_null());
        }
        assert!(answer.certain_count() > 0);
        assert!(answer.possible_count() > cars_part.possible.len());
    }

    #[test]
    fn correlated_answers_are_mostly_relevant() {
        let f = fixture();
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting(&f.cars, f.cars_stats.clone())
            .add_deficient(&f.yahoo);
        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "SUV")]);
        let answer = network.answer(&q).unwrap();
        let yahoo_part = &answer.per_source[1];
        let hits = yahoo_part
            .possible
            .iter()
            .filter(|a| {
                f.yahoo_ground
                    .by_id(a.tuple.id())
                    .map(|t| t.value(body) == &Value::str("SUV"))
                    .unwrap_or(false)
            })
            .count();
        let precision = hits as f64 / yahoo_part.possible.len().max(1) as f64;
        assert!(precision > 0.6, "correlated precision {precision}");
    }

    #[test]
    fn queries_on_supported_attrs_hit_deficient_sources_directly() {
        let f = fixture();
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default())
            .add_supporting(&f.cars, f.cars_stats.clone())
            .add_deficient(&f.yahoo);
        let model = f.global.expect_attr("model");
        let q = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);
        let answer = network.answer(&q).unwrap();
        // Yahoo supports model: it serves certain answers itself (no stats →
        // no possible answers from it).
        let yahoo_part = &answer.per_source[1];
        assert!(yahoo_part.via_correlated.is_none());
        assert!(!yahoo_part.certain.is_empty());
    }

    #[test]
    fn unreachable_queries_yield_empty_contributions() {
        let f = fixture();
        // Network with ONLY the deficient source: no correlated member.
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default())
            .add_deficient(&f.yahoo);
        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answer = network.answer(&q).unwrap();
        assert_eq!(answer.certain_count(), 0);
        assert_eq!(answer.possible_count(), 0);
    }

    #[test]
    fn missing_afd_disqualifies_a_correlated_candidate() {
        // Regression for the Definition-4 scoring bug: a candidate with an
        // AFD for only one of two constrained attributes used to be scored
        // on that one attribute alone (the gap was silently filtered out),
        // inflating its minimum-confidence score. A missing AFD must
        // disqualify the candidate outright.
        use qpiad_learn::afd::Afd;
        let a0 = AttrId(0);
        let a1 = AttrId(1);
        let a2 = AttrId(2);
        let afds = AfdSet::new(vec![Afd::new(vec![a0], a1, 0.9)]);
        // Fully covered: the single attribute's best AFD scores it.
        assert_eq!(min_afd_confidence(&afds, &[a1]), Some(0.9));
        // a2 has no AFD: the candidate is disqualified, not scored 0.9.
        assert_eq!(min_afd_confidence(&afds, &[a1, a2]), None);
        // No constrained attributes: nothing to certify, disqualified.
        assert_eq!(min_afd_confidence(&afds, &[]), None);
        // Minimum over attributes, not average or maximum.
        let afds = AfdSet::new(vec![Afd::new(vec![a0], a1, 0.9), Afd::new(vec![a0], a2, 0.4)]);
        assert_eq!(min_afd_confidence(&afds, &[a1, a2]), Some(0.4));
    }

    #[test]
    fn healthy_network_reports_healthy_outcomes() {
        let f = fixture();
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting(&f.cars, f.cars_stats.clone())
            .add_deficient(&f.yahoo);
        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answer = network.answer(&q).unwrap();
        assert!(answer.fully_healthy());
        assert!(answer.failed_sources().is_empty());
        assert_eq!(answer.degraded_count(), 0);
    }

    #[test]
    #[should_panic(expected = "lacks global attribute")]
    fn add_supporting_rejects_partial_schemas() {
        let f = fixture();
        let _ = MediatorNetwork::new(f.global.clone(), QpiadConfig::default())
            .add_supporting(&f.yahoo, f.cars_stats.clone());
    }

    fn scratch_store(name: &str) -> KnowledgeStore {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-knowledge-store")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        KnowledgeStore::open(dir).unwrap()
    }

    #[test]
    fn corrupt_snapshot_degrades_member_to_certain_answers_only() {
        let f = fixture();
        let store = scratch_store("network-corrupt");
        std::fs::write(store.path_for("cars.com"), "not a snapshot at all").unwrap();

        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting_from_store(&f.cars, &store);
        let failures = network.knowledge_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "cars.com");
        assert_eq!(failures[0].1.kind(), "corrupt");

        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        f.cars.reset_meter();
        let answer = network.answer(&q).unwrap();
        let part = &answer.per_source[0];
        // Certain answers survive; with no statistics there is nothing to
        // rewrite with, so no possible answers — and the loss is charged.
        assert!(!part.certain.is_empty());
        assert!(part.possible.is_empty());
        match &part.outcome {
            SourceOutcome::Degraded(d) => {
                assert_eq!(d.knowledge_unavailable, 1);
                assert!(d.is_degraded());
            }
            other => panic!("expected degraded outcome, got {other:?}"),
        }
        assert_eq!(f.cars.meter().knowledge_unavailable, 1);
    }

    #[test]
    fn refresh_member_heals_a_knowledge_unavailable_member() {
        let f = fixture();
        let store = scratch_store("network-heal");
        std::fs::write(store.path_for("cars.com"), "QPIAD-KNOWLEDGE v1 truncated").unwrap();

        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting_from_store(&f.cars, &store);
        assert_eq!(network.knowledge_failures().len(), 1);

        let config = MiningConfig::default();
        network
            .refresh_member("cars.com", |_| Ok(f.cars_stats.clone()), Some((&store, &config)))
            .unwrap();
        assert!(network.knowledge_failures().is_empty());
        // The refreshed knowledge was persisted and loads cleanly now.
        assert!(store.load_for("cars.com", f.cars.schema()).is_ok());

        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answer = network.answer(&q).unwrap();
        let part = &answer.per_source[0];
        assert!(!part.certain.is_empty());
        assert!(!part.possible.is_empty());
        assert!(part.outcome.is_healthy());
    }

    #[test]
    fn refresh_member_requires_a_registered_member() {
        let f = fixture();
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default())
            .add_supporting(&f.cars, f.cars_stats.clone());
        let err = network.refresh_member("nope.example", |_| Ok(f.cars_stats.clone()), None);
        assert!(err.is_err());
        // A failing mine keeps the old knowledge in place.
        let err = network
            .refresh_member("cars.com", |_| Err(SourceError::Timeout { waited_ms: 10 }), None);
        assert!(err.is_err());
        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answer = network.answer(&q).unwrap();
        assert!(!answer.per_source[0].possible.is_empty());
    }
}
