//! Multi-source mediation: one global schema, many autonomous sources.
//!
//! The paper's mediator (Figures 1–2) fronts several web databases at once:
//! some support every global attribute, others lack a few. For each query,
//! [`MediatorNetwork::answer`] gathers certain and possible answers from
//! *every* registered source:
//!
//! * a source supporting all constrained attributes is served by the plain
//!   QPIAD pipeline with its own mined statistics;
//! * a source lacking a constrained attribute is served via the best
//!   **correlated source** per Definition 4 — the supporting source whose
//!   AFD for the missing attribute has the highest confidence and whose
//!   determining set the deficient source can bind.
//!
//! Mediation is **fault-isolated per member**: sources are autonomous and
//! flaky, so a member that fails (after retries) contributes a recorded
//! [`SourceOutcome::Failed`] instead of poisoning every other source's
//! answers, and a member whose rewrite plan partially failed is marked
//! [`SourceOutcome::Degraded`] with the dropped F-measure mass.

use std::sync::Arc;

use qpiad_db::par;
use qpiad_db::{AttrId, AutonomousSource, Schema, SelectQuery, SourceBinding, SourceError, Tuple};
use qpiad_learn::afd::AfdSet;
use qpiad_learn::knowledge::SourceStats;

use crate::correlated::{answer_from_correlated, is_correlated_source_usable};
use crate::mediator::{Degradation, Qpiad, QpiadConfig, RankedAnswer};
use crate::rank::RankConfig;

/// One registered source.
struct Member<'a> {
    source: &'a dyn AutonomousSource,
    binding: SourceBinding,
    /// Statistics mined from this source's sample, if the source supports
    /// the full global schema (statistics live in global-attribute space).
    stats: Option<SourceStats>,
}

/// How one member's contribution to a network answer went.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SourceOutcome {
    /// Full contribution: every planned query was answered.
    #[default]
    Healthy,
    /// Partial contribution: some rewritten queries were dropped after
    /// exhausting retries; the degradation records what was lost.
    Degraded(Degradation),
    /// No contribution: the member's base retrieval failed after retries.
    /// The other members' answers are unaffected.
    Failed(SourceError),
}

impl SourceOutcome {
    /// `true` iff the member contributed everything it was asked for.
    pub fn is_healthy(&self) -> bool {
        matches!(self, SourceOutcome::Healthy)
    }

    /// `true` iff the member contributed nothing because it failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, SourceOutcome::Failed(_))
    }

    /// `true` iff the member's contribution is partial.
    pub fn is_degraded(&self) -> bool {
        matches!(self, SourceOutcome::Degraded(_))
    }

    fn from_degradation(d: Degradation) -> Self {
        if d.is_degraded() {
            SourceOutcome::Degraded(d)
        } else {
            SourceOutcome::Healthy
        }
    }
}

/// Answers contributed by one source.
#[derive(Debug, Clone)]
pub struct SourceAnswers {
    /// The contributing source's name.
    pub source: String,
    /// Certain answers (global schema).
    pub certain: Vec<Tuple>,
    /// Ranked possible answers (global schema).
    pub possible: Vec<RankedAnswer>,
    /// Name of the correlated source whose statistics drove retrieval, if
    /// this source could not bind the query directly.
    pub via_correlated: Option<String>,
    /// How this member's retrieval went (healthy, degraded, or failed).
    pub outcome: SourceOutcome,
}

impl SourceAnswers {
    fn failed(source: &dyn AutonomousSource, error: SourceError) -> Self {
        SourceAnswers {
            source: source.name().to_string(),
            certain: Vec::new(),
            possible: Vec::new(),
            via_correlated: None,
            outcome: SourceOutcome::Failed(error),
        }
    }
}

/// The combined mediation result.
#[derive(Debug, Clone, Default)]
pub struct NetworkAnswer {
    /// Per-source contributions, in registration order.
    pub per_source: Vec<SourceAnswers>,
}

impl NetworkAnswer {
    /// Total certain answers across sources.
    pub fn certain_count(&self) -> usize {
        self.per_source.iter().map(|s| s.certain.len()).sum()
    }

    /// Total possible answers across sources.
    pub fn possible_count(&self) -> usize {
        self.per_source.iter().map(|s| s.possible.len()).sum()
    }

    /// `true` iff every member contributed its full answer set.
    pub fn fully_healthy(&self) -> bool {
        self.per_source.iter().all(|s| s.outcome.is_healthy())
    }

    /// The members that failed outright, with their errors.
    pub fn failed_sources(&self) -> Vec<(&str, &SourceError)> {
        self.per_source
            .iter()
            .filter_map(|s| match &s.outcome {
                SourceOutcome::Failed(e) => Some((s.source.as_str(), e)),
                _ => None,
            })
            .collect()
    }

    /// Number of members whose contribution was degraded (partial).
    pub fn degraded_count(&self) -> usize {
        self.per_source.iter().filter(|s| s.outcome.is_degraded()).count()
    }
}

/// A mediator over several autonomous sources sharing a global schema.
pub struct MediatorNetwork<'a> {
    global: Arc<Schema>,
    members: Vec<Member<'a>>,
    config: QpiadConfig,
}

impl<'a> MediatorNetwork<'a> {
    /// Creates an empty network over the global schema.
    pub fn new(global: Arc<Schema>, config: QpiadConfig) -> Self {
        MediatorNetwork { global, members: Vec::new(), config }
    }

    /// Registers a source that supports the full global schema, together
    /// with its mined statistics.
    ///
    /// # Panics
    ///
    /// Panics if the source's schema does not cover every global attribute
    /// by name.
    pub fn add_supporting(mut self, source: &'a dyn AutonomousSource, stats: SourceStats) -> Self {
        let binding = SourceBinding::by_name(source.name(), &self.global, source.schema());
        for g in self.global.attr_ids() {
            assert!(
                binding.supports(g),
                "source `{}` lacks global attribute `{}`; register it with add_deficient",
                source.name(),
                self.global.attr(g).name()
            );
        }
        self.members.push(Member { source, binding, stats: Some(stats) });
        self
    }

    /// Registers a source whose local schema lacks some global attributes;
    /// queries on those attributes are served through a correlated source.
    pub fn add_deficient(mut self, source: &'a dyn AutonomousSource) -> Self {
        let binding = SourceBinding::by_name(source.name(), &self.global, source.schema());
        self.members.push(Member { source, binding, stats: None });
        self
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` iff no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Picks the best correlated member for a query against a deficient
    /// member (Definition 4): among members with statistics whose best AFD
    /// for each constrained attribute has a determining set the deficient
    /// member supports, the one with the highest (minimum-over-attributes)
    /// AFD confidence. A candidate missing an AFD for *any* constrained
    /// attribute is disqualified — ignoring the gap would inflate its
    /// minimum-confidence score.
    fn correlated_for(&self, target: &Member<'a>, query: &SelectQuery) -> Option<&Member<'a>> {
        let mut best: Option<(f64, &Member<'a>)> = None;
        for m in &self.members {
            let Some(stats) = &m.stats else { continue };
            if std::ptr::eq(m, target) {
                continue;
            }
            if !is_correlated_source_usable(stats, &target.binding, query) {
                continue;
            }
            let Some(conf) = min_afd_confidence(stats.afds(), &query.constrained_attrs()) else {
                continue;
            };
            if best.as_ref().map(|(c, _)| conf > *c).unwrap_or(true) {
                best = Some((conf, m));
            }
        }
        best.map(|(_, m)| m)
    }

    /// Serves one member, directly or through a correlated source.
    fn answer_member(
        &self,
        member: &Member<'a>,
        query: &SelectQuery,
    ) -> Result<SourceAnswers, SourceError> {
        // A member "supports" the query only if the binding carries every
        // constrained attribute AND the source's web form can actually bind
        // it (local schemas may store attributes they expose no field for).
        let supports_all = query.constrained_attrs().iter().all(|a| {
            member
                .binding
                .local_attr(*a)
                .is_some_and(|local| member.source.supports(local))
        });
        let answers = if supports_all {
            if let Some(stats) = &member.stats {
                // Direct QPIAD. Statistics and query share the global
                // schema; supporting members map attributes 1:1.
                let local = member.binding.translate_query(query)?;
                let qpiad = Qpiad::new(stats.clone(), self.config);
                let set = qpiad.answer(member.source, &local)?;
                SourceAnswers {
                    source: member.source.name().to_string(),
                    certain: set.certain.iter().map(|t| member.binding.lift_tuple(t)).collect(),
                    possible: set
                        .possible
                        .into_iter()
                        .map(|mut a| {
                            a.tuple = member.binding.lift_tuple(&a.tuple);
                            a
                        })
                        .collect(),
                    via_correlated: None,
                    outcome: SourceOutcome::from_degradation(set.degraded),
                }
            } else {
                // Supports the attributes but has no statistics: certain
                // answers only.
                let local = member.binding.translate_query(query)?;
                let certain =
                    qpiad_db::fault::query_with_retry(member.source, &local, &self.config.retry)?;
                SourceAnswers {
                    source: member.source.name().to_string(),
                    certain: certain.iter().map(|t| member.binding.lift_tuple(t)).collect(),
                    possible: Vec::new(),
                    via_correlated: None,
                    outcome: SourceOutcome::Healthy,
                }
            }
        } else {
            // Deficient for this query: try a correlated source.
            match self.correlated_for(member, query) {
                Some(correlated) => {
                    // `correlated_for` only returns members with statistics;
                    // if that invariant ever breaks it must surface as a
                    // recorded failure for this member, not a panic.
                    let stats = correlated.stats.as_ref().ok_or_else(|| {
                        SourceError::Internal {
                            message: format!(
                                "correlated member `{}` has no statistics",
                                correlated.source.name()
                            ),
                        }
                    })?;
                    let result = answer_from_correlated(
                        correlated.source,
                        stats,
                        member.source,
                        &member.binding,
                        query,
                        &RankConfig { alpha: self.config.alpha, k: self.config.k },
                        &self.config.retry,
                    )?;
                    SourceAnswers {
                        source: member.source.name().to_string(),
                        certain: Vec::new(),
                        possible: result.possible,
                        via_correlated: Some(correlated.source.name().to_string()),
                        outcome: SourceOutcome::from_degradation(result.degraded),
                    }
                }
                None => SourceAnswers {
                    source: member.source.name().to_string(),
                    certain: Vec::new(),
                    possible: Vec::new(),
                    via_correlated: None,
                    outcome: SourceOutcome::Healthy,
                },
            }
        };
        Ok(answers)
    }

    /// Answers a global-schema query against every registered source.
    ///
    /// Sources that can neither bind the query nor be reached through a
    /// correlated source contribute an empty answer set (exactly what a
    /// conventional mediator would return for them).
    ///
    /// Sources are interrogated concurrently on the [`par`] worker pool
    /// (each is independent; meters and lazy indexes sit behind locks) and
    /// contributions are assembled in registration order, identical to
    /// sequential mediation.
    ///
    /// **Failures are isolated per member**: a member whose retrieval fails
    /// (after the configured retries) contributes an empty answer set with
    /// [`SourceOutcome::Failed`] recorded, instead of aborting the whole
    /// mediation — the best partial answer the network can certify is
    /// always returned. The `Result` return type is kept for API stability;
    /// the current implementation always returns `Ok`.
    pub fn answer(&self, query: &SelectQuery) -> Result<NetworkAnswer, SourceError> {
        let results: Vec<Result<SourceAnswers, SourceError>> =
            if self.members.len() > 1 && par::num_threads() > 1 {
                par::parallel_map(&self.members, |m| self.answer_member(m, query))
            } else {
                self.members.iter().map(|m| self.answer_member(m, query)).collect()
            };
        let mut out = NetworkAnswer::default();
        for (member, r) in self.members.iter().zip(results) {
            out.per_source.push(r.unwrap_or_else(|e| {
                member.source.note_degraded();
                SourceAnswers::failed(member.source, e)
            }));
        }
        Ok(out)
    }
}

/// The Definition-4 score component: the minimum best-AFD confidence over
/// the given attributes, or `None` when any attribute has no AFD at all —
/// a candidate correlated source that cannot explain every constrained
/// attribute must be disqualified, not scored on the attributes it happens
/// to cover.
fn min_afd_confidence(afds: &AfdSet, attrs: &[AttrId]) -> Option<f64> {
    let mut conf = f64::INFINITY;
    for a in attrs {
        conf = conf.min(afds.best(*a)?.confidence);
    }
    conf.is_finite().then_some(conf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::{Predicate, Relation, Value, WebSource};
    use qpiad_learn::knowledge::MiningConfig;

    fn mined(ed: &Relation, seed: u64) -> SourceStats {
        let sample = uniform_sample(ed, 0.10, seed);
        SourceStats::mine(&sample, ed.len(), &MiningConfig::default())
    }

    struct Fixture {
        global: Arc<Schema>,
        cars: WebSource,
        cars_stats: SourceStats,
        yahoo: WebSource,
        yahoo_ground: Relation,
    }

    fn fixture() -> Fixture {
        let cars_gd = CarsConfig::default().with_rows(6_000).generate(61);
        let global = cars_gd.schema().clone();
        let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
        let cars_stats = mined(&cars_ed, 2);
        let cars = WebSource::new("cars.com", cars_ed);

        let yahoo_ground = CarsConfig::default().with_rows(6_000).generate(62);
        let keep: Vec<_> = global
            .attr_ids()
            .filter(|a| global.attr(*a).name() != "body_style")
            .collect();
        let yahoo_local = yahoo_ground.project_to("yahoo_autos", &keep);
        let yahoo = WebSource::new("yahoo_autos", yahoo_local);

        Fixture { global, cars, cars_stats, yahoo, yahoo_ground }
    }

    #[test]
    fn network_answers_from_all_sources() {
        let f = fixture();
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting(&f.cars, f.cars_stats.clone())
            .add_deficient(&f.yahoo);
        assert_eq!(network.len(), 2);

        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answer = network.answer(&q).unwrap();
        assert_eq!(answer.per_source.len(), 2);

        // Cars.com contributes certain + possible answers directly.
        let cars_part = &answer.per_source[0];
        assert_eq!(cars_part.source, "cars.com");
        assert!(cars_part.via_correlated.is_none());
        assert!(!cars_part.certain.is_empty());
        assert!(!cars_part.possible.is_empty());

        // Yahoo contributes possible answers via the correlated source.
        let yahoo_part = &answer.per_source[1];
        assert_eq!(yahoo_part.source, "yahoo_autos");
        assert_eq!(yahoo_part.via_correlated.as_deref(), Some("cars.com"));
        assert!(yahoo_part.certain.is_empty());
        assert!(!yahoo_part.possible.is_empty());
        // All lifted to the global schema with a null on body_style.
        for a in &yahoo_part.possible {
            assert_eq!(a.tuple.arity(), f.global.arity());
            assert!(a.tuple.value(body).is_null());
        }
        assert!(answer.certain_count() > 0);
        assert!(answer.possible_count() > cars_part.possible.len());
    }

    #[test]
    fn correlated_answers_are_mostly_relevant() {
        let f = fixture();
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting(&f.cars, f.cars_stats.clone())
            .add_deficient(&f.yahoo);
        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "SUV")]);
        let answer = network.answer(&q).unwrap();
        let yahoo_part = &answer.per_source[1];
        let hits = yahoo_part
            .possible
            .iter()
            .filter(|a| {
                f.yahoo_ground
                    .by_id(a.tuple.id())
                    .map(|t| t.value(body) == &Value::str("SUV"))
                    .unwrap_or(false)
            })
            .count();
        let precision = hits as f64 / yahoo_part.possible.len().max(1) as f64;
        assert!(precision > 0.6, "correlated precision {precision}");
    }

    #[test]
    fn queries_on_supported_attrs_hit_deficient_sources_directly() {
        let f = fixture();
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default())
            .add_supporting(&f.cars, f.cars_stats.clone())
            .add_deficient(&f.yahoo);
        let model = f.global.expect_attr("model");
        let q = SelectQuery::new(vec![Predicate::eq(model, "Civic")]);
        let answer = network.answer(&q).unwrap();
        // Yahoo supports model: it serves certain answers itself (no stats →
        // no possible answers from it).
        let yahoo_part = &answer.per_source[1];
        assert!(yahoo_part.via_correlated.is_none());
        assert!(!yahoo_part.certain.is_empty());
    }

    #[test]
    fn unreachable_queries_yield_empty_contributions() {
        let f = fixture();
        // Network with ONLY the deficient source: no correlated member.
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default())
            .add_deficient(&f.yahoo);
        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answer = network.answer(&q).unwrap();
        assert_eq!(answer.certain_count(), 0);
        assert_eq!(answer.possible_count(), 0);
    }

    #[test]
    fn missing_afd_disqualifies_a_correlated_candidate() {
        // Regression for the Definition-4 scoring bug: a candidate with an
        // AFD for only one of two constrained attributes used to be scored
        // on that one attribute alone (the gap was silently filtered out),
        // inflating its minimum-confidence score. A missing AFD must
        // disqualify the candidate outright.
        use qpiad_learn::afd::Afd;
        let a0 = AttrId(0);
        let a1 = AttrId(1);
        let a2 = AttrId(2);
        let afds = AfdSet::new(vec![Afd::new(vec![a0], a1, 0.9)]);
        // Fully covered: the single attribute's best AFD scores it.
        assert_eq!(min_afd_confidence(&afds, &[a1]), Some(0.9));
        // a2 has no AFD: the candidate is disqualified, not scored 0.9.
        assert_eq!(min_afd_confidence(&afds, &[a1, a2]), None);
        // No constrained attributes: nothing to certify, disqualified.
        assert_eq!(min_afd_confidence(&afds, &[]), None);
        // Minimum over attributes, not average or maximum.
        let afds = AfdSet::new(vec![Afd::new(vec![a0], a1, 0.9), Afd::new(vec![a0], a2, 0.4)]);
        assert_eq!(min_afd_confidence(&afds, &[a1, a2]), Some(0.4));
    }

    #[test]
    fn healthy_network_reports_healthy_outcomes() {
        let f = fixture();
        let network = MediatorNetwork::new(f.global.clone(), QpiadConfig::default().with_k(8))
            .add_supporting(&f.cars, f.cars_stats.clone())
            .add_deficient(&f.yahoo);
        let body = f.global.expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answer = network.answer(&q).unwrap();
        assert!(answer.fully_healthy());
        assert!(answer.failed_sources().is_empty());
        assert_eq!(answer.degraded_count(), 0);
    }

    #[test]
    #[should_panic(expected = "lacks global attribute")]
    fn add_supporting_rejects_partial_schemas() {
        let f = fixture();
        let _ = MediatorNetwork::new(f.global.clone(), QpiadConfig::default())
            .add_supporting(&f.yahoo, f.cars_stats.clone());
    }
}
