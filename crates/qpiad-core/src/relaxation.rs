//! Imprecise queries via data-driven relaxation (the paper's §7 pointer to
//! QUIC \[16\] / AIMQ \[25\]).
//!
//! QPIAD handles *data* incompleteness; its sibling problem is *query*
//! imprecision: a user asking for `Model = Z4` would usually accept other
//! two-seat convertibles in the same price band. This module implements the
//! AFD-grounded flavour of relaxation those systems use: two values of an
//! attribute are similar when the **conditional distributions of the other
//! attributes given each value** (learned from the mediator's sample) are
//! close. The relaxed answer set returns exact matches at relevance 1.0,
//! then certain answers for the most similar values, ranked by similarity —
//! all through the same restricted source interface as QPIAD itself.

use std::collections::HashMap;

use qpiad_db::fault::RetryPolicy;
use qpiad_db::{AttrId, AutonomousSource, Predicate, Relation, SelectQuery, SourceError, Tuple, Value};
use qpiad_learn::knowledge::SourceStats;

use crate::mediator::{Degradation, QueryContext};
use crate::plan::{self, AdmissionMode, BaseGate, EntryStatus, MediationPlan, PlanEntry};
use crate::rewrite::RewrittenQuery;

/// Learned value-similarity model for one attribute.
#[derive(Debug, Clone)]
pub struct SimilarityModel {
    attr: AttrId,
    features: Vec<AttrId>,
    /// Per value: per feature, the conditional distribution `P(feature |
    /// attr = value)`.
    profiles: HashMap<Value, Vec<HashMap<Value, f64>>>,
}

impl SimilarityModel {
    /// Learns value profiles for `attr` from a sample, using the given
    /// feature attributes (typically all others).
    ///
    /// Profiles are Laplace-smoothed over each feature's *global* active
    /// domain: without smoothing, two rare values with sparse, barely
    /// overlapping empirical distributions look dissimilar to everything
    /// except high-frequency values — a small-sample artifact, not a
    /// semantic signal.
    pub fn learn(sample: &Relation, attr: AttrId, features: Vec<AttrId>) -> Self {
        assert!(!features.contains(&attr), "attr cannot be its own feature");
        const LAMBDA: f64 = 0.5;

        let domains: Vec<Vec<Value>> = features
            .iter()
            .map(|f| sample.active_domain(*f))
            .collect();
        let mut counts: HashMap<Value, Vec<HashMap<Value, f64>>> = HashMap::new();
        for t in sample.tuples() {
            let v = t.value(attr);
            if v.is_null() {
                continue;
            }
            let entry = counts
                .entry(v.clone())
                .or_insert_with(|| vec![HashMap::new(); features.len()]);
            for (fi, f) in features.iter().enumerate() {
                let fv = t.value(*f);
                if !fv.is_null() {
                    *entry[fi].entry(fv.clone()).or_default() += 1.0;
                }
            }
        }
        let profiles = counts
            .into_iter()
            .map(|(v, mut dists)| {
                for (dist, domain) in dists.iter_mut().zip(&domains) {
                    let total: f64 = dist.values().sum();
                    let denom = total + LAMBDA * domain.len() as f64;
                    if denom > 0.0 {
                        for value in domain {
                            let smoothed =
                                (dist.get(value).copied().unwrap_or(0.0) + LAMBDA) / denom;
                            dist.insert(value.clone(), smoothed);
                        }
                    }
                }
                (v, dists)
            })
            .collect();
        SimilarityModel { attr, features, profiles }
    }

    /// Learns a model using the mined statistics' schema (all attributes
    /// except `attr` as features).
    pub fn from_stats(stats: &SourceStats, attr: AttrId) -> Self {
        let features = stats.schema().attr_ids().filter(|a| *a != attr).collect();
        SimilarityModel::learn(stats.selectivity().sample(), attr, features)
    }

    /// The profiled attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The known values (observed in the sample).
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.profiles.keys()
    }

    /// Similarity in `[0, 1]`: mean, over features, of the distributional
    /// overlap `1 − ½·Σ|P(f|a) − P(f|b)|`. Unknown values score 0.
    pub fn similarity(&self, a: &Value, b: &Value) -> f64 {
        if a == b {
            return 1.0;
        }
        let (Some(pa), Some(pb)) = (self.profiles.get(a), self.profiles.get(b)) else {
            return 0.0;
        };
        if self.features.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (da, db) in pa.iter().zip(pb) {
            let mut l1 = 0.0;
            for (v, p) in da {
                l1 += (p - db.get(v).copied().unwrap_or(0.0)).abs();
            }
            for (v, p) in db {
                if !da.contains_key(v) {
                    l1 += p;
                }
            }
            total += 1.0 - 0.5 * l1;
        }
        (total / self.features.len() as f64).clamp(0.0, 1.0)
    }

    /// The `k` most similar known values to `v` (excluding `v` itself),
    /// best first, with their similarities.
    pub fn neighbors(&self, v: &Value, k: usize) -> Vec<(Value, f64)> {
        let mut scored: Vec<(Value, f64)> = self
            .profiles
            .keys()
            .filter(|candidate| *candidate != v)
            .map(|candidate| (candidate.clone(), self.similarity(v, candidate)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

/// An answer of a relaxed (imprecise) query.
#[derive(Debug, Clone)]
pub struct RelaxedAnswer {
    /// The retrieved tuple (a certain answer of some `attr = value'`).
    pub tuple: Tuple,
    /// Relevance: 1.0 for exact matches, the value similarity otherwise.
    pub relevance: f64,
    /// The attribute value this tuple matched.
    pub matched_value: Value,
}

/// Answers the imprecise query `attr ≈ value`: exact matches first, then
/// certain answers for the `k_neighbors` most similar values, in relevance
/// order. Stops early if the source's query budget runs out.
pub fn answer_imprecise(
    stats: &SourceStats,
    source: &dyn AutonomousSource,
    attr: AttrId,
    value: &Value,
    k_neighbors: usize,
) -> Result<Vec<RelaxedAnswer>, SourceError> {
    let model = SimilarityModel::from_stats(stats, attr);
    let mut out = Vec::new();

    // Relaxation runs unguarded; the shared executor sees an unbounded
    // context and a single-attempt policy. The exact query plays the role
    // of the base retrieval, the neighbor queries form a hand-built plan
    // in best-first neighbor order (their "F-measure mass" is the value
    // similarity the plan would lose by dropping them).
    let mut ctx = QueryContext::unbounded();
    let mut degraded = Degradation::default();
    let retry = RetryPolicy::none();
    let exact_query = SelectQuery::new(vec![Predicate::eq(attr, value.clone())]);
    let exact =
        plan::execute_base(source, &exact_query, &retry, &mut ctx, &mut degraded, BaseGate::Guarded)?;
    for tuple in exact {
        out.push(RelaxedAnswer { tuple, relevance: 1.0, matched_value: value.clone() });
    }

    let neighbors: Vec<(Value, f64)> = model
        .neighbors(value, k_neighbors)
        .into_iter()
        .take_while(|(_, similarity)| *similarity > 0.0)
        .collect();
    let mut relax_plan = MediationPlan::new(
        source.name().to_string(),
        exact_query,
        retry,
        AdmissionMode::PlanTime,
    );
    for (neighbor, similarity) in &neighbors {
        let query = SelectQuery::new(vec![Predicate::eq(attr, neighbor.clone())]);
        relax_plan.push(PlanEntry {
            rewrite: RewrittenQuery {
                query: query.clone(),
                target_attr: attr,
                precision: *similarity,
                est_selectivity: 0.0,
                afd: None,
            },
            issue: query,
            fmeasure: *similarity,
            status: EntryStatus::Deferred,
        });
    }
    relax_plan.admit(&mut ctx, &mut degraded);
    plan::execute(source, &relax_plan, &mut ctx, &mut degraded, |rank, _, result, _| {
        let (neighbor, similarity) = &neighbors[rank];
        for tuple in result {
            out.push(RelaxedAnswer {
                tuple,
                relevance: *similarity,
                matched_value: neighbor.clone(),
            });
        }
    });
    // Neighbors were visited best-first, so the list is already in
    // non-increasing relevance order; make it explicit for robustness.
    out.sort_by(|a, b| b.relevance.total_cmp(&a.relevance));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::WebSource;
    use qpiad_learn::knowledge::MiningConfig;

    fn setup() -> (WebSource, SourceStats) {
        let ground = CarsConfig::default().with_rows(12_000).generate(91);
        let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
        let sample = uniform_sample(&ed, 0.15, 7);
        let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
        (WebSource::new("cars.com", ed), stats)
    }

    #[test]
    fn similarity_is_reflexive_symmetric_and_bounded() {
        let (_, stats) = setup();
        let model = stats.schema().expect_attr("model");
        let sim = SimilarityModel::from_stats(&stats, model);
        let values: Vec<Value> = sim.values().take(8).cloned().collect();
        for a in &values {
            assert_eq!(sim.similarity(a, a), 1.0);
            for b in &values {
                let ab = sim.similarity(a, b);
                assert!((0.0..=1.0).contains(&ab));
                assert!((ab - sim.similarity(b, a)).abs() < 1e-12);
            }
        }
        // Unknown values have no profile.
        assert_eq!(sim.similarity(&Value::str("Z4"), &Value::str("Warp Drive")), 0.0);
    }

    #[test]
    fn convertibles_are_each_others_neighbors() {
        let (_, stats) = setup();
        let model_attr = stats.schema().expect_attr("model");
        let sim = SimilarityModel::from_stats(&stats, model_attr);
        // A dedicated convertible should be closer to another convertible
        // than to a pickup truck.
        let z4 = Value::str("Z4");
        let boxster = Value::str("Boxster");
        let f150 = Value::str("F150");
        let s_convt = sim.similarity(&z4, &boxster);
        let s_truck = sim.similarity(&z4, &f150);
        assert!(
            s_convt > s_truck,
            "Z4~Boxster {s_convt:.3} should beat Z4~F150 {s_truck:.3}"
        );
    }

    #[test]
    fn imprecise_answers_rank_exact_matches_first() {
        let (source, stats) = setup();
        let model_attr = stats.schema().expect_attr("model");
        let answers =
            answer_imprecise(&stats, &source, model_attr, &Value::str("Z4"), 5).unwrap();
        assert!(!answers.is_empty());
        // Relevance is non-increasing, exact matches lead at 1.0.
        assert_eq!(answers[0].relevance, 1.0);
        assert_eq!(answers[0].matched_value, Value::str("Z4"));
        for w in answers.windows(2) {
            assert!(w[0].relevance >= w[1].relevance);
        }
        // Relaxation brought in other models too.
        assert!(answers.iter().any(|a| a.matched_value != Value::str("Z4")));
        // Every returned tuple certainly matches its matched value.
        for a in &answers {
            assert_eq!(a.tuple.value(model_attr), &a.matched_value);
        }
    }

    #[test]
    fn neighbor_budget_is_respected() {
        let (source, stats) = setup();
        let model_attr = stats.schema().expect_attr("model");
        let answers =
            answer_imprecise(&stats, &source, model_attr, &Value::str("Z4"), 2).unwrap();
        let distinct: std::collections::BTreeSet<String> = answers
            .iter()
            .map(|a| a.matched_value.to_string())
            .collect();
        assert!(distinct.len() <= 3); // Z4 + at most two neighbors
    }
}
