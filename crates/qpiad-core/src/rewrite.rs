//! Rewritten-query generation (§4.1, §4.2 step 2a, multi-attribute
//! extension).
//!
//! For each constrained attribute `Ai` with a mined determining set
//! `dtrSet(Ai)`, project the base set onto `dtrSet(Ai)`; every distinct
//! (null-free) value combination yields one rewritten query:
//!
//! * drop the original predicate on `Ai`,
//! * keep every other original predicate,
//! * add `Ax = t.vx` for each `Ax ∈ dtrSet(Ai)` (replacing any original
//!   predicate on `Ax` — the combination came from a certain answer, so the
//!   equality is a refinement of it).
//!
//! Each rewritten query carries its expected **precision** — the classifier
//! probability that a tuple with these determining-set values has a missing
//! `Ai` satisfying the original predicate — and its estimated
//! **selectivity** (expected number of incomplete tuples it retrieves).

use qpiad_db::hash::FastHashMap;

use qpiad_db::{AttrId, Predicate, Relation, SelectQuery, Tuple, Value};
use qpiad_learn::afd::Afd;
use qpiad_learn::knowledge::SourceStats;

/// A rewritten query, ready for ordering and retrieval.
#[derive(Debug, Clone)]
pub struct RewrittenQuery {
    /// The query to issue to the source.
    pub query: SelectQuery,
    /// The constrained attribute whose missing values this query chases.
    pub target_attr: AttrId,
    /// Expected precision: `P(target satisfies the original predicate |
    /// determining-set values)`.
    pub precision: f64,
    /// Estimated number of incomplete tuples the query retrieves (§5.4).
    pub est_selectivity: f64,
    /// The AFD that produced the determining set (the answer explanation).
    pub afd: Option<Afd>,
}

/// Generates rewritten queries for a (possibly multi-attribute) selection
/// query from its base set, per §4.2 step 2(a).
///
/// Returns an empty vector when no constrained attribute has a usable AFD
/// or the base set offers no null-free determining-set combinations.
///
/// ```
/// use qpiad_core::generate_rewrites;
/// use qpiad_data::{cars::CarsConfig, corrupt::{corrupt, CorruptionConfig}, sample::uniform_sample};
/// use qpiad_db::{Predicate, SelectQuery};
/// use qpiad_learn::knowledge::{MiningConfig, SourceStats};
///
/// let ground = CarsConfig::default().with_rows(3_000).generate(7);
/// let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
/// let stats = SourceStats::mine(&uniform_sample(&ed, 0.1, 1), ed.len(), &MiningConfig::default());
///
/// let body = ed.schema().expect_attr("body_style");
/// let query = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
/// let base = ed.select(&query);
/// for rq in generate_rewrites(&query, &base, &stats) {
///     // the whole point: rewritten queries never constrain the target
///     assert!(rq.query.predicate_on(body).is_none());
/// }
/// ```
pub fn generate_rewrites(
    query: &SelectQuery,
    base_set: &[Tuple],
    stats: &SourceStats,
) -> Vec<RewrittenQuery> {
    let mut out: Vec<RewrittenQuery> = Vec::new();
    // Dedup across iterations: a structurally identical rewritten query can
    // arise from different constrained attributes. With a single
    // constrained attribute distinct combinations already yield distinct
    // queries (each differs in at least one determining-set equality), so
    // the map — and its per-candidate query hashing — is skipped.
    let targets = query.constrained_attrs();
    let needs_dedup = targets.len() > 1;
    let mut seen: FastHashMap<SelectQuery, usize> = FastHashMap::default();

    for target in targets {
        let Some(dtr) = stats.determining_set(target) else {
            continue;
        };
        let dtr: Vec<AttrId> = dtr.to_vec();
        // The original predicate on the target. `constrained_attrs` is
        // derived from the predicate list, so this is always present; if
        // that coupling ever breaks, skipping the attribute degrades the
        // rewrite plan instead of panicking mid-mediation.
        let Some(target_pred) = query.predicate_on(target).cloned() else {
            continue;
        };
        let afd = stats.afds().best(target).cloned();

        // Hoisted out of the per-combination loop: the predicates every
        // rewrite for this target keeps, and the evidence template for
        // precision scoring — per combination only the determining-set
        // slots change (values are interned, so these clones are refcount
        // bumps, not string copies).
        let kept_preds: Vec<Predicate> = query
            .predicates()
            .iter()
            .filter(|p| p.attr != target && !dtr.contains(&p.attr))
            .cloned()
            .collect();
        let mut evidence = vec![Value::Null; stats.schema().arity()];
        for p in query.predicates() {
            if p.attr == target {
                continue;
            }
            if let qpiad_db::PredOp::Eq(v) = &p.op {
                evidence[p.attr.index()] = v.clone();
            }
        }

        // Reusable scorer seeded with the evidence template. Every
        // combination overwrites every determining-set slot, so state never
        // carries over; only the touched feature re-resolves its
        // log-likelihood table instead of re-hashing the whole row.
        let mut scorer = stats.predictor().row_matcher(target, &evidence);
        for combo in Relation::distinct_projections(base_set, &dtr) {
            // Build the rewritten predicate list.
            let mut preds = kept_preds.clone();
            for (ax, vx) in dtr.iter().zip(combo.iter()) {
                preds.push(Predicate::eq(*ax, vx.clone()));
            }
            let rewritten = SelectQuery::new(preds);
            if &rewritten == query {
                continue;
            }

            for (ax, vx) in dtr.iter().zip(combo.iter()) {
                scorer.set(*ax, vx);
            }
            let precision = scorer.prob_matching(&target_pred.op);
            let est_selectivity = stats.selectivity().estimate_smoothed(&rewritten);

            if needs_dedup {
                if let Some(&idx) = seen.get(&rewritten) {
                    // Keep the higher-precision interpretation.
                    if precision > out[idx].precision {
                        out[idx].precision = precision;
                        out[idx].target_attr = target;
                        out[idx].afd = afd.clone();
                    }
                    continue;
                }
                seen.insert(rewritten.clone(), out.len());
            }
            out.push(RewrittenQuery {
                query: rewritten,
                target_attr: target,
                precision,
                est_selectivity,
                afd: afd.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::{PredOp, Relation};
    use qpiad_learn::knowledge::MiningConfig;

    fn setup() -> (Relation, SourceStats) {
        let ground = CarsConfig::default().with_rows(8_000).generate(31);
        let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
        let sample = uniform_sample(&ed, 0.10, 13);
        let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
        (ed, stats)
    }

    #[test]
    fn single_attribute_rewrites_follow_the_paper_example() {
        let (ed, stats) = setup();
        let body = ed.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let base = ed.select(&q);
        let rewrites = generate_rewrites(&q, &base, &stats);
        assert!(!rewrites.is_empty());
        for rq in &rewrites {
            // No rewritten query may constrain the target attribute —
            // that is the whole point (it must retrieve null targets).
            assert!(rq.query.predicate_on(body).is_none());
            assert_eq!(rq.target_attr, body);
            assert!((0.0..=1.0).contains(&rq.precision));
            assert!(rq.est_selectivity >= 0.0);
            assert!(rq.afd.is_some());
        }
        // Every distinct model among the certain answers produced a query
        // (the determining set includes model).
        let dtr = stats.determining_set(body).unwrap().to_vec();
        let combos = Relation::distinct_projections(&base, &dtr);
        assert_eq!(rewrites.len(), combos.len());
    }

    #[test]
    fn convertible_models_score_higher_precision() {
        let (ed, stats) = setup();
        let body = ed.schema().expect_attr("body_style");
        let model = ed.schema().expect_attr("model");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let base = ed.select(&q);
        let rewrites = generate_rewrites(&q, &base, &stats);
        let precision_of = |m: &str| {
            rewrites
                .iter()
                .find(|rq| {
                    rq.query.predicate_on(model).map(|p| &p.op)
                        == Some(&PredOp::Eq(Value::str(m)))
                })
                .map(|rq| rq.precision)
        };
        // Solara is a dedicated convertible with decent popularity; Mustang
        // is mostly a coupe that enters the base set through body-style
        // noise.
        let solara = precision_of("Solara").expect("Solara rewrite");
        assert!(solara > 0.6, "Solara precision {solara}");
        if let Some(mustang) = precision_of("Mustang") {
            assert!(solara > mustang);
        }
    }

    #[test]
    fn multi_attribute_rewrites_drop_one_constraint_each() {
        let (ed, stats) = setup();
        let body = ed.schema().expect_attr("body_style");
        let year = ed.schema().expect_attr("year");
        let q = SelectQuery::new(vec![
            Predicate::eq(body, "Sedan"),
            Predicate::eq(year, 2003i64),
        ]);
        let base = ed.select(&q);
        let rewrites = generate_rewrites(&q, &base, &stats);
        assert!(!rewrites.is_empty());
        for rq in &rewrites {
            // The target attribute is unconstrained; at least one original
            // non-target predicate (or its refinement) survives.
            assert!(rq.query.predicate_on(rq.target_attr).is_none());
            assert!(!rq.query.predicates().is_empty());
        }
        // Both constrained attributes should be rewriting targets (year is
        // determined by {model, price}-ish sets; body by model).
        let targets: std::collections::BTreeSet<AttrId> =
            rewrites.iter().map(|r| r.target_attr).collect();
        assert!(targets.contains(&body));
    }

    #[test]
    fn no_afd_means_no_rewrites() {
        let (ed, stats) = setup();
        // certified is weakly correlated; if it has no AFD the query yields
        // nothing — otherwise rewrites must still avoid constraining it.
        let cert = ed.schema().expect_attr("certified");
        let q = SelectQuery::new(vec![Predicate::eq(cert, "Yes")]);
        let base = ed.select(&q);
        let rewrites = generate_rewrites(&q, &base, &stats);
        for rq in &rewrites {
            assert!(rq.query.predicate_on(cert).is_none());
        }
    }

    #[test]
    fn empty_base_set_generates_nothing() {
        let (ed, stats) = setup();
        let model = ed.schema().expect_attr("model");
        let q = SelectQuery::new(vec![Predicate::eq(model, "Batmobile")]);
        let base = ed.select(&q);
        assert!(base.is_empty());
        assert!(generate_rewrites(&q, &base, &stats).is_empty());
    }

    #[test]
    fn rewrites_are_unique() {
        let (ed, stats) = setup();
        let body = ed.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let base = ed.select(&q);
        let rewrites = generate_rewrites(&q, &base, &stats);
        let mut queries: Vec<&SelectQuery> = rewrites.iter().map(|r| &r.query).collect();
        let before = queries.len();
        queries.sort_by_key(|q| format!("{q:?}"));
        queries.dedup();
        assert_eq!(queries.len(), before);
    }

    #[test]
    fn between_predicates_use_range_probability() {
        let (ed, stats) = setup();
        let price = ed.schema().expect_attr("price");
        let q = SelectQuery::new(vec![Predicate::between(price, 15_000i64, 20_000i64)]);
        let base = ed.select(&q);
        assert!(!base.is_empty());
        let rewrites = generate_rewrites(&q, &base, &stats);
        // Price has a {year, model}-flavoured determining set; rewrites
        // must exist and have meaningful precision.
        assert!(!rewrites.is_empty());
        assert!(rewrites.iter().any(|r| r.precision > 0.3));
    }
}
