//! Aggregate queries over incomplete sources (§4.4).
//!
//! The certain aggregate (computed over the base set only) undercounts as
//! incompleteness grows. QPIAD additionally issues rewritten queries and
//! folds a rewritten query's result into the aggregate **only when the most
//! likely completion of the missing constrained value equals the queried
//! value** — the paper found this gating more accurate than weighting every
//! tuple by its precision (§4.4, footnote 4).
//!
//! Tuples whose *aggregated* attribute is missing (e.g. `SUM(price)` over a
//! tuple with a null price) contribute their most likely predicted value.

use std::collections::HashSet;

use qpiad_db::fault::RetryPolicy;
use qpiad_db::{AggFunc, AggregateQuery, AutonomousSource, SourceError, Tuple, TupleId};
use qpiad_learn::knowledge::SourceStats;

use crate::mediator::{value_or_predicted, Degradation, QueryContext};
use crate::plan::{self, AdmissionMode, BaseGate, EntryStatus, MediationPlan, PlanEntry};
use crate::rank::{order_rewrites, RankConfig};
use crate::rewrite::generate_rewrites;

/// The outcome of an aggregate query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateAnswer {
    /// Aggregate over certain answers only, nulls skipped (what a
    /// conventional mediator reports).
    pub certain: f64,
    /// Aggregate including predicted completions of incomplete tuples.
    pub with_prediction: f64,
    /// Number of certain tuples aggregated.
    pub certain_count: usize,
    /// Number of possible (incomplete) tuples folded in by the gating rule.
    pub possible_count: usize,
}

/// Configuration for aggregate processing.
#[derive(Debug, Clone, Copy)]
pub struct AggregateConfig {
    /// F-measure α for ordering the rewritten queries.
    pub alpha: f64,
    /// Rewritten-query budget.
    pub k: usize,
}

impl Default for AggregateConfig {
    fn default() -> Self {
        AggregateConfig { alpha: 1.0, k: 10 }
    }
}

/// Answers an aggregate query over an incomplete autonomous source.
pub fn answer_aggregate(
    stats: &SourceStats,
    config: &AggregateConfig,
    source: &dyn AutonomousSource,
    query: &AggregateQuery,
) -> Result<AggregateAnswer, SourceError> {
    // Aggregates run unguarded (no breaker/budget of their own): the
    // shared executor sees an unbounded context and a single-attempt
    // policy; a rewrite the source still fails is dropped, not fatal.
    let mut ctx = QueryContext::unbounded();
    let mut degraded = Degradation::default();
    let retry = RetryPolicy::none();
    let base = plan::execute_base(
        source,
        &query.select,
        &retry,
        &mut ctx,
        &mut degraded,
        BaseGate::Guarded,
    )?;
    let certain = query.evaluate(base.iter());

    // Accumulators for the predicted aggregate, expressed as (count, sum) so
    // COUNT/SUM/AVG all derive from them.
    let mut count = 0f64;
    let mut sum = 0f64;
    let mut possible_count = 0usize;

    let mut fold = |t: &Tuple, stats: &SourceStats| -> bool {
        match query.attr {
            None => {
                count += 1.0;
                true
            }
            Some(attr) => match value_or_predicted(stats, attr, t) {
                Some((v, _)) => match v.as_int() {
                    Some(i) => {
                        count += 1.0;
                        sum += i as f64;
                        true
                    }
                    None => false,
                },
                None => false,
            },
        }
    };

    let mut seen: HashSet<TupleId> = HashSet::new();
    for t in &base {
        seen.insert(t.id());
        fold(t, stats);
    }

    // Rewritten queries bring incomplete candidates; the gating rule keeps a
    // query's tuples only if the most likely completion of its target
    // attribute equals the queried value.
    let rewrites = generate_rewrites(&query.select, &base, stats);
    let ordered = order_rewrites(rewrites, &RankConfig { alpha: config.alpha, k: config.k });
    let constrained = query.select.constrained_attrs();

    let mut agg_plan = MediationPlan::new(
        source.name().to_string(),
        query.select.clone(),
        retry,
        AdmissionMode::PlanTime,
    );
    for scored in ordered {
        agg_plan.push(PlanEntry {
            issue: scored.rewrite.query.clone(),
            rewrite: scored.rewrite,
            fmeasure: scored.fmeasure,
            status: EntryStatus::Deferred,
        });
    }
    agg_plan.admit(&mut ctx, &mut degraded);

    plan::execute(source, &agg_plan, &mut ctx, &mut degraded, |_, entry, result, _| {
        // §4.4: accept the whole query iff the argmax completion satisfies
        // the original predicate on the target attribute. A rewrite whose
        // target is somehow unconstrained cannot be gated — skip it rather
        // than panic mid-aggregation.
        let Some(target_pred) = query.select.predicate_on(entry.rewrite.target_attr) else {
            return;
        };
        for t in result {
            if !seen.insert(t.id()) {
                continue;
            }
            if !query.select.possibly_matches(&t) {
                continue;
            }
            if t.null_count_among(&constrained) > 1 {
                continue;
            }
            let Some((most_likely, _)) = stats.predictor().predict(entry.rewrite.target_attr, &t)
            else {
                continue;
            };
            if !target_pred.op.matches(&most_likely) {
                continue;
            }
            if fold(&t, stats) {
                possible_count += 1;
            }
        }
    });

    let with_prediction = match query.func {
        AggFunc::Count => count,
        AggFunc::Sum => sum,
        AggFunc::Avg => {
            if count == 0.0 {
                0.0
            } else {
                sum / count
            }
        }
    };

    Ok(AggregateAnswer {
        certain,
        with_prediction,
        certain_count: base.len(),
        possible_count,
    })
}

/// Relative accuracy of an aggregate estimate against the true value:
/// `1 − |estimate − truth| / truth` clamped to `[0, 1]` (the measure behind
/// Figure 12). A zero truth with a zero estimate counts as exact.
pub fn aggregate_accuracy(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return if estimate == 0.0 { 1.0 } else { 0.0 };
    }
    (1.0 - (estimate - truth).abs() / truth.abs()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::{Predicate, Relation, SelectQuery, WebSource};
    use qpiad_learn::knowledge::MiningConfig;

    fn setup() -> (Relation, WebSource, SourceStats) {
        let ground = CarsConfig::default().with_rows(10_000).generate(61);
        let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
        let sample = uniform_sample(&ed, 0.10, 31);
        let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
        (ground, WebSource::new("cars.com", ed), stats)
    }

    #[test]
    fn count_with_prediction_beats_certain_only() {
        let (ground, source, stats) = setup();
        let body = source.schema().expect_attr("body_style");
        let select = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let truth = ground.count(&select) as f64;

        let q = AggregateQuery::count(select);
        let ans = answer_aggregate(&stats, &AggregateConfig::default(), &source, &q).unwrap();
        assert!(ans.certain < truth, "incompleteness must depress the certain count");
        assert!(ans.possible_count > 0);
        let acc_certain = aggregate_accuracy(ans.certain, truth);
        let acc_pred = aggregate_accuracy(ans.with_prediction, truth);
        assert!(
            acc_pred >= acc_certain,
            "prediction should improve accuracy: {acc_pred} vs {acc_certain}"
        );
    }

    #[test]
    fn sum_with_prediction_moves_toward_truth() {
        let (ground, source, stats) = setup();
        let body = ground.schema().expect_attr("body_style");
        let price = ground.schema().expect_attr("price");
        let select = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let truth = AggregateQuery::sum(select.clone(), price)
            .evaluate(ground.tuples().iter().filter(|t| select.matches(t)));

        let q = AggregateQuery::sum(select, price);
        let ans = answer_aggregate(&stats, &AggregateConfig::default(), &source, &q).unwrap();
        let acc_certain = aggregate_accuracy(ans.certain, truth);
        let acc_pred = aggregate_accuracy(ans.with_prediction, truth);
        assert!(acc_pred >= acc_certain, "{acc_pred} vs {acc_certain}");
    }

    #[test]
    fn avg_is_ratio_of_sum_and_count() {
        let (_, source, stats) = setup();
        let make = source.schema().expect_attr("make");
        let price = source.schema().expect_attr("price");
        let select = SelectQuery::new(vec![Predicate::eq(make, "Honda")]);
        let avg = answer_aggregate(
            &stats,
            &AggregateConfig::default(),
            &source,
            &AggregateQuery::avg(select.clone(), price),
        )
        .unwrap();
        assert!(avg.with_prediction > 1_000.0 && avg.with_prediction < 50_000.0);
    }

    #[test]
    fn between_predicates_gate_by_range_membership() {
        // COUNT over a price band: incomplete tuples join the aggregate iff
        // their most likely price falls inside the band.
        let (ground, source, stats) = setup();
        let price = ground.schema().expect_attr("price");
        let select = SelectQuery::new(vec![Predicate::between(price, 10_000i64, 20_000i64)]);
        let truth = ground.count(&select) as f64;
        let q = AggregateQuery::count(select);
        let ans = answer_aggregate(&stats, &AggregateConfig::default(), &source, &q).unwrap();
        assert!(ans.certain < truth);
        assert!(ans.possible_count > 0, "range gating admitted nothing");
        assert!(
            aggregate_accuracy(ans.with_prediction, truth)
                >= aggregate_accuracy(ans.certain, truth)
        );
    }

    #[test]
    fn query_budget_exhaustion_degrades_gracefully() {
        let (_, _, stats) = setup();
        let ground = CarsConfig::default().with_rows(3_000).generate(62);
        let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
        let body = ed.schema().expect_attr("body_style");
        // Budget covers the base query plus two rewrites only.
        let source = WebSource::new("limited", ed).with_query_limit(3);
        let q = AggregateQuery::count(SelectQuery::new(vec![Predicate::eq(body, "Convt")]));
        let ans = answer_aggregate(&stats, &AggregateConfig::default(), &source, &q).unwrap();
        assert!(ans.with_prediction >= ans.certain);
    }

    #[test]
    fn accuracy_measure_behaves() {
        assert_eq!(aggregate_accuracy(100.0, 100.0), 1.0);
        assert!((aggregate_accuracy(90.0, 100.0) - 0.9).abs() < 1e-12);
        assert_eq!(aggregate_accuracy(250.0, 100.0), 0.0); // clamped
        assert_eq!(aggregate_accuracy(0.0, 0.0), 1.0);
        assert_eq!(aggregate_accuracy(5.0, 0.0), 0.0);
    }
}
