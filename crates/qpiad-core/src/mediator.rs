//! The end-to-end QPIAD mediator for selection queries (§4.2).

use qpiad_db::hash::FastHashSet;
use std::sync::Arc;

use qpiad_db::fault::{query_fingerprint, RetryPolicy};
use qpiad_db::health::{BreakerProbe, PressureLevel, QueryBudget};
use qpiad_db::{AutonomousSource, SelectQuery, SourceError, Tuple, TupleId, Value};
use qpiad_learn::afd::Afd;
use qpiad_learn::cache::PredictionCache;
use qpiad_learn::drift::DriftProbe;
use qpiad_learn::knowledge::SourceStats;

use crate::plan::{
    self, AdmissionMode, BaseGate, CacheStatus, EntryStatus, MediationPlan, PlanCache,
    PlanCandidate, PlanEntry, SkipReason,
};
use crate::rank::{order_rewrites, rescore, RankConfig};
use crate::rewrite::{generate_rewrites, RewrittenQuery};

/// Mediator configuration.
#[derive(Debug, Clone, Copy)]
pub struct QpiadConfig {
    /// F-measure α for rewritten-query ordering.
    pub alpha: f64,
    /// Maximum number of rewritten queries to issue per user query.
    pub k: usize,
    /// Possible answers below this confidence are suppressed (Figure 9's
    /// user-side filter); 0 disables filtering.
    pub confidence_threshold: f64,
    /// How transient source failures are retried at the query-issue
    /// boundary (autonomous sources are flaky; §4.1's access constraints
    /// mean the mediator cannot do better than retry and degrade).
    pub retry: RetryPolicy,
}

impl Default for QpiadConfig {
    fn default() -> Self {
        QpiadConfig {
            alpha: 0.0,
            k: 10,
            confidence_threshold: 0.0,
            retry: RetryPolicy::default(),
        }
    }
}

impl QpiadConfig {
    /// Overrides α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the query budget K.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides the confidence threshold.
    pub fn with_confidence_threshold(mut self, t: f64) -> Self {
        self.confidence_threshold = t;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// A possible answer with its relevance assessment.
#[derive(Debug, Clone)]
pub struct RankedAnswer {
    /// The retrieved incomplete tuple.
    pub tuple: Tuple,
    /// The answer's assessed degree of relevance: the probability that its
    /// missing constrained value(s) satisfy the query.
    pub confidence: f64,
    /// The expected precision of the rewritten query that retrieved the
    /// tuple — all tuples of one query share this rank (§4.2 step 2d).
    pub query_precision: f64,
    /// Index of the retrieving query in [`AnswerSet::issued`].
    pub query_index: usize,
    /// The AFD justifying the assessment (§6.1's explanation).
    pub explanation: Option<Afd>,
}

/// What a retrieval pass lost to source failures: rewritten queries that
/// still failed after retries are *skipped*, not fatal, and their planned
/// contribution is accounted for here so a degraded answer quantifies what
/// it is missing. The availability layer adds its own loss accounting:
/// rewrites skipped by an open circuit breaker or an exhausted
/// [`QueryBudget`] also charge their F-measure mass here, quarantined
/// response tuples are counted, and answers served from stale (snapshot)
/// statistics are flagged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Degradation {
    /// Rewritten queries dropped after exhausting retries.
    pub dropped_rewrites: usize,
    /// The F-measure mass of all lost queries (dropped, breaker-skipped,
    /// or budget-skipped), scored like [`crate::rank::order_rewrites`]
    /// against the issued plan's cumulative throughput.
    pub dropped_fmeasure: f64,
    /// Rewritten queries skipped up front because the source's circuit
    /// breaker did not admit them.
    pub breaker_skips: usize,
    /// Rewritten queries skipped because the caller's [`QueryBudget`]
    /// could not fund even a single attempt.
    pub budget_skips: usize,
    /// Rewritten queries shed by the overload degradation ladder: the
    /// pass ran under a non-`Normal`
    /// [`PressureLevel`], which clamped
    /// the admitted plan to its top-ranked fraction. Shed entries charge
    /// their F-measure mass to `dropped_fmeasure` exactly like breaker
    /// skips, so EXPLAIN and metrics state what recall mass overload cost.
    pub overload_sheds: usize,
    /// Returned tuples quarantined by response validation.
    pub quarantined: usize,
    /// `true` iff this answer was produced from snapshot statistics
    /// because the source could not be mined live (its breaker was open or
    /// mining failed).
    pub stale_knowledge: bool,
    /// Mediation passes served certain-answers-only because the source's
    /// persisted knowledge failed to load (missing, corrupt, wrong
    /// version, or wrong schema — see `qpiad_learn::store`). With no
    /// statistics there is nothing to rewrite with, so every such pass
    /// loses its whole possible-answer contribution.
    pub knowledge_unavailable: usize,
    /// `true` iff the source's mined knowledge has drifted past the
    /// configured threshold (see `qpiad_learn::drift`) and awaits
    /// re-mining; the answers' precision weight was demoted accordingly.
    pub drift_demoted: bool,
    /// The last error that caused a drop (diagnostics).
    pub last_error: Option<SourceError>,
}

impl Degradation {
    /// `true` iff any planned retrieval was lost, any response tuple was
    /// quarantined, or the answer rests on stale, unavailable, or drifted
    /// knowledge.
    pub fn is_degraded(&self) -> bool {
        self.dropped_rewrites > 0
            || self.breaker_skips > 0
            || self.budget_skips > 0
            || self.overload_sheds > 0
            || self.quarantined > 0
            || self.stale_knowledge
            || self.knowledge_unavailable > 0
            || self.drift_demoted
    }

    pub(crate) fn record(&mut self, fmeasure: f64, error: SourceError) {
        self.dropped_rewrites += 1;
        self.dropped_fmeasure += fmeasure;
        self.last_error = Some(error);
    }

    pub(crate) fn record_breaker_skip(&mut self, fmeasure: f64) {
        self.breaker_skips += 1;
        self.dropped_fmeasure += fmeasure;
        self.last_error = Some(SourceError::CircuitOpen);
    }

    pub(crate) fn record_budget_skip(&mut self, fmeasure: f64) {
        self.budget_skips += 1;
        self.dropped_fmeasure += fmeasure;
        self.last_error = Some(SourceError::BudgetExhausted);
    }

    pub(crate) fn record_overload_shed(&mut self, fmeasure: f64) {
        self.overload_sheds += 1;
        self.dropped_fmeasure += fmeasure;
    }
}

/// Per-pass availability state threaded through one mediation pass against
/// one source: the caller's [`QueryBudget`] and the source's local
/// [`BreakerProbe`] (built from a sequentially taken snapshot; see
/// [`qpiad_db::health`] for the determinism protocol). The default context
/// is fully transparent — unlimited budget, disabled probe — so
/// [`Qpiad::answer`] behaves exactly as before the availability layer.
#[derive(Debug)]
pub struct QueryContext {
    /// Remaining deadline/attempt budget for this pass.
    pub budget: QueryBudget,
    /// The source's pass-local circuit-breaker probe.
    pub probe: BreakerProbe,
    /// Pass-local drift probe: every *validated* live response observed
    /// during this pass is folded into it, giving the drift detector an
    /// unbiased view of what the source actually returns
    /// (see [`qpiad_learn::drift`]). `None` disables observation.
    pub drift: Option<DriftProbe>,
    /// The overload pressure this pass runs under. A non-`Normal` level
    /// clamps plan admission to the rank-ordered top fraction the rung
    /// allows ([`PressureLevel::rewrite_fraction`]); clamped entries are
    /// charged to [`Degradation::overload_sheds`]. Defaults to `Normal` —
    /// no clamping, mediation exactly as unmanaged.
    pub pressure: PressureLevel,
}

impl QueryContext {
    /// Unlimited budget, no breaker: mediation exactly as unmanaged.
    pub fn unbounded() -> Self {
        QueryContext {
            budget: QueryBudget::unlimited(),
            probe: BreakerProbe::disabled(),
            drift: None,
            pressure: PressureLevel::Normal,
        }
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the breaker probe.
    pub fn with_probe(mut self, probe: BreakerProbe) -> Self {
        self.probe = probe;
        self
    }

    /// Installs a drift probe; validated responses observed during the
    /// pass accumulate into it.
    pub fn with_drift(mut self, probe: DriftProbe) -> Self {
        self.drift = Some(probe);
        self
    }

    /// Sets the overload pressure the pass runs under.
    pub fn with_pressure(mut self, pressure: PressureLevel) -> Self {
        self.pressure = pressure;
        self
    }
}

impl Default for QueryContext {
    fn default() -> Self {
        QueryContext::unbounded()
    }
}

/// The mediator's reply to a selection query.
#[derive(Debug, Clone, Default)]
pub struct AnswerSet {
    /// Certain answers (the base result set), returned first.
    pub certain: Vec<Tuple>,
    /// Relevant possible answers in retrieval (= rank) order.
    pub possible: Vec<RankedAnswer>,
    /// Tuples with more than one null among the constrained attributes —
    /// output unranked after the ranked answers (paper, Assumptions).
    pub deferred: Vec<Tuple>,
    /// The rewritten queries that were issued, in issue order.
    pub issued: Vec<RewrittenQuery>,
    /// What the retrieval pass lost to source failures (empty when every
    /// planned query was answered).
    pub degraded: Degradation,
}

/// The QPIAD mediator for one source.
#[derive(Debug, Clone)]
pub struct Qpiad {
    stats: SourceStats,
    config: QpiadConfig,
    /// Shared plan cache; `None` plans from scratch every pass.
    plan_cache: Option<Arc<PlanCache>>,
    /// The knowledge version the cache key is stamped with — whoever
    /// attaches the cache must bump this whenever `stats` changes meaning
    /// (re-mine, drift demotion), or stale plans would be served.
    knowledge_version: u64,
}

impl Qpiad {
    /// Creates a mediator from mined statistics.
    pub fn new(stats: SourceStats, config: QpiadConfig) -> Self {
        Qpiad { stats, config, plan_cache: None, knowledge_version: 0 }
    }

    /// Attaches a shared plan cache, stamping this mediator's entries with
    /// `version` (the source's current knowledge version).
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>, version: u64) -> Self {
        self.plan_cache = Some(cache);
        self.knowledge_version = version;
        self
    }

    /// The mined statistics.
    pub fn stats(&self) -> &SourceStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &QpiadConfig {
        &self.config
    }

    /// Answers a selection query: certain answers plus ranked relevant
    /// possible answers (§4.2 steps 1–2).
    ///
    /// Every query is issued through the retry boundary
    /// ([`qpiad_db::fault::query_with_retry`], configured by
    /// [`QpiadConfig::retry`]). Retrieval degrades rather than aborts:
    /// retrieval stops gracefully when the source's query budget runs out,
    /// and a rewritten query that still fails after retries is *skipped* —
    /// its planned contribution is recorded in [`AnswerSet::degraded`] so
    /// the caller knows what the answer is missing. Only a failure of the
    /// *base* query (no certain answers at all) propagates as an error.
    ///
    /// Against a budget-free source the rewritten queries are issued
    /// concurrently over the [`crate::par`] worker pool; the results are then
    /// merged sequentially in rank order, which makes the answer set
    /// byte-identical to single-threaded retrieval. Budgeted sources are
    /// always served sequentially, because which queries fit under the
    /// budget depends on issue order.
    pub fn answer(
        &self,
        source: &dyn AutonomousSource,
        query: &SelectQuery,
    ) -> Result<AnswerSet, SourceError> {
        self.answer_in(source, query, &mut QueryContext::unbounded())
    }

    /// [`Self::answer`] under an explicit availability context: the
    /// caller's [`QueryBudget`] funds (and clamps) every query's retry
    /// schedule, and the source's [`BreakerProbe`] gates admission.
    ///
    /// Admission happens at *plan time*, in rank order, before any fan-out:
    /// each candidate deducts its worst-case cost from the budget and
    /// consumes a probe slot, so the admitted plan — and therefore the
    /// answer — is identical whether retrieval then runs sequentially or
    /// concurrently. Candidates the budget cannot fund, or the breaker
    /// does not admit, charge their F-measure mass to
    /// [`AnswerSet::degraded`] instead. Every response is validated
    /// against the source schema and the issued query; quarantined tuples
    /// are dropped, counted, and fed to the probe as failures.
    pub fn answer_in(
        &self,
        source: &dyn AutonomousSource,
        query: &SelectQuery,
        ctx: &mut QueryContext,
    ) -> Result<AnswerSet, SourceError> {
        // Step 1: base result set (certain answers), under admission.
        let mut degraded = Degradation::default();
        let certain =
            plan::execute_base(source, query, &self.config.retry, ctx, &mut degraded, BaseGate::Guarded)?;
        if let Some(dp) = &mut ctx.drift {
            dp.observe(&self.sample_matches(query), &certain);
        }

        // Steps 2a–2c: build the plan — candidate rewrites (served from
        // the plan cache when the template and knowledge version match)
        // plus plan-time admission in rank order.
        let plan = self.plan(source, query, &certain, ctx, &mut degraded);

        // Steps 2d–2e: execute the plan and merge results in rank order.
        // The classifier memo lives for exactly this query (§5.3 cost: one
        // classification per distinct determining-set combination).
        let cache = PredictionCache::new();
        let mut merge = AnswerMerge {
            seen: certain.iter().map(Tuple::id).collect(),
            constrained: query.constrained_attrs(),
            possible: Vec::new(),
            deferred: Vec::new(),
            issued: Vec::new(),
        };
        plan::execute(source, &plan, ctx, &mut degraded, |_, entry, kept, ctx| {
            if let Some(dp) = &mut ctx.drift {
                dp.observe(&self.sample_matches(&entry.rewrite.query), &kept);
            }
            self.merge_retrieval(query, &entry.rewrite, kept, &mut merge, &cache);
        });
        if degraded.is_degraded() {
            source.note_degraded();
        }

        let mut possible = merge.possible;
        if self.config.confidence_threshold > 0.0 {
            possible.retain(|a| a.confidence >= self.config.confidence_threshold);
        }

        Ok(AnswerSet {
            certain,
            possible,
            deferred: merge.deferred,
            issued: merge.issued,
            degraded,
        })
    }

    /// Builds the admitted [`MediationPlan`] for `query`: candidate
    /// rewrites (from the plan cache when the (template, knowledge
    /// version) key matches, re-planned and cached otherwise) followed by
    /// plan-time admission against the context's probe and budget.
    pub fn plan(
        &self,
        source: &dyn AutonomousSource,
        query: &SelectQuery,
        certain: &[Tuple],
        ctx: &mut QueryContext,
        degraded: &mut Degradation,
    ) -> MediationPlan {
        let (candidates, cache_status) = self.candidate_set(source, query, certain);
        let mut plan = self.plan_from_candidates(source, query, &candidates);
        plan.cache = cache_status;
        plan.admit(ctx, degraded);
        plan
    }

    /// A *speculative* plan for EXPLAIN: the base result set is
    /// approximated by the mined sample's certain matches, the plan cache
    /// is deliberately bypassed (a sample-based candidate list must never
    /// be served to a real pass), and admission runs against the given
    /// context without charging any degradation record. Issues zero
    /// source queries.
    pub fn plan_speculative(
        &self,
        source: &dyn AutonomousSource,
        query: &SelectQuery,
        ctx: &mut QueryContext,
    ) -> MediationPlan {
        let certain = self.sample_matches(query);
        let candidates = self.compute_candidates(source, query, &certain);
        let mut plan = self.plan_from_candidates(source, query, &candidates);
        plan.cache = CacheStatus::Speculative;
        // Base admission is simulated first, mirroring the real pass: a
        // base the breaker or budget refuses means nothing at all runs.
        if !ctx.probe.admits() {
            plan.base_status = EntryStatus::Skipped(SkipReason::BreakerOpen);
            plan.skip_all(SkipReason::BreakerOpen);
            return plan;
        }
        match ctx.budget.admit(&self.config.retry, query_fingerprint(query)) {
            Some(policy) => {
                ctx.probe.note_issued();
                plan.base_status = EntryStatus::Admitted(policy);
            }
            None => {
                plan.base_status = EntryStatus::Skipped(SkipReason::BudgetExhausted);
                plan.skip_all(SkipReason::BudgetExhausted);
                return plan;
            }
        }
        let mut scratch = Degradation::default();
        plan.admit(ctx, &mut scratch);
        plan
    }

    /// Renders the admitted plan for `query` against `source` without
    /// issuing a single source query (EXPLAIN).
    pub fn explain(&self, source: &dyn AutonomousSource, query: &SelectQuery) -> String {
        self.explain_in(source, query, &mut QueryContext::unbounded())
    }

    /// [`Self::explain`] under an explicit availability context, so breaker
    /// and budget refusals show up as skip reasons.
    pub fn explain_in(
        &self,
        source: &dyn AutonomousSource,
        query: &SelectQuery,
        ctx: &mut QueryContext,
    ) -> String {
        self.plan_speculative(source, query, ctx).render(source.schema())
    }

    /// Wraps a candidate list as an unadmitted plan (all supported entries
    /// deferred, unsupported ones skipped).
    fn plan_from_candidates(
        &self,
        source: &dyn AutonomousSource,
        query: &SelectQuery,
        candidates: &[PlanCandidate],
    ) -> MediationPlan {
        let mut plan = MediationPlan::new(
            source.name().to_string(),
            query.clone(),
            self.config.retry,
            AdmissionMode::PlanTime,
        );
        if self.plan_cache.is_some() {
            plan.knowledge_version = Some(self.knowledge_version);
        }
        for c in candidates {
            plan.push(PlanEntry {
                issue: c.scored.rewrite.query.clone(),
                rewrite: c.scored.rewrite.clone(),
                fmeasure: c.scored.fmeasure,
                status: if c.supported {
                    EntryStatus::Deferred
                } else {
                    EntryStatus::Skipped(SkipReason::Unsupported)
                },
            });
        }
        plan
    }

    /// The candidate rewrites for `query`, served from the plan cache when
    /// one is attached and the (source, template, knowledge version, α, k)
    /// key matches; planned from scratch (and inserted) otherwise. Hits
    /// and misses are metered on the source.
    ///
    /// `pub(crate)`: the correlated-retrieval path plans through the
    /// correlated member's mediator so a network pass computes each
    /// (source, template) candidate list at most once.
    pub(crate) fn candidate_set(
        &self,
        source: &dyn AutonomousSource,
        query: &SelectQuery,
        certain: &[Tuple],
    ) -> (Arc<Vec<PlanCandidate>>, CacheStatus) {
        if let Some(cache) = &self.plan_cache {
            if let Some(hit) = cache.lookup(
                source.name(),
                query,
                self.knowledge_version,
                self.config.alpha,
                self.config.k,
            ) {
                source.note_plan_cache_hit();
                return (hit, CacheStatus::Hit);
            }
            source.note_plan_cache_miss();
            let computed = self.compute_candidates(source, query, certain);
            let arc = cache.insert(
                source.name(),
                query,
                self.knowledge_version,
                self.config.alpha,
                self.config.k,
                computed,
            );
            (arc, CacheStatus::Miss)
        } else {
            (
                Arc::new(self.compute_candidates(source, query, certain)),
                CacheStatus::Bypassed,
            )
        }
    }

    /// The planning half proper: generate rewrites from the certain
    /// answers, select and order the top K (step 2a–2c), mark candidates
    /// the source's web form cannot answer (the determining set came from
    /// global statistics, so such queries exist; they are skipped, not
    /// fatal), and normalize the issuable candidates' F-measure masses
    /// over the supported subset.
    fn compute_candidates(
        &self,
        source: &dyn AutonomousSource,
        query: &SelectQuery,
        certain: &[Tuple],
    ) -> Vec<PlanCandidate> {
        let rewrites = generate_rewrites(query, certain, &self.stats);
        let selected = order_rewrites(
            rewrites,
            &RankConfig { alpha: self.config.alpha, k: self.config.k },
        );
        let mut candidates: Vec<PlanCandidate> = selected
            .into_iter()
            .map(|scored| {
                let supported = scored
                    .rewrite
                    .query
                    .predicates()
                    .iter()
                    .all(|p| source.supports(p.attr));
                PlanCandidate { scored, supported }
            })
            .collect();
        let mut issuable: Vec<_> = candidates
            .iter()
            .filter(|c| c.supported)
            .map(|c| c.scored.clone())
            .collect();
        rescore(&mut issuable, self.config.alpha);
        // Pair positionally with `zip`-style exhaustion instead of an
        // `expect`: rescoring is in-place and length-preserving, but a
        // serving process must degrade (keep the pre-rescore score) rather
        // than abort if that invariant is ever violated.
        let mut rescored = issuable.into_iter();
        for c in candidates.iter_mut().filter(|c| c.supported) {
            if let Some(scored) = rescored.next() {
                c.scored = scored;
            }
        }
        candidates
    }

    /// The mined-sample tuples certainly matching `query` — the reference
    /// side of a paired drift observation. Filtering the sample by the
    /// same query the live response answered gives both sides identical
    /// conditioning, so a selective query does not read as drift.
    fn sample_matches(&self, query: &SelectQuery) -> Vec<Tuple> {
        plan::stats_sample_matches(&self.stats, query)
    }

    /// Folds one rewritten query's result into the answer under
    /// construction: dedup against earlier (higher-ranked) retrievals,
    /// post-filter, defer multi-null tuples, assess confidence (§4.2 steps
    /// 2d–2e). Always called in rank order, whether retrieval ran
    /// sequentially or concurrently.
    fn merge_retrieval(
        &self,
        query: &SelectQuery,
        rq: &RewrittenQuery,
        tuples: Vec<Tuple>,
        merge: &mut AnswerMerge,
        cache: &PredictionCache,
    ) {
        let query_index = merge.issued.len();
        for t in tuples {
            if !merge.seen.insert(t.id()) {
                continue; // already retrieved by a higher-ranked query
            }
            if query.matches(&t) {
                // A certain answer the base query already covers; the
                // source returned it again because the rewritten query
                // subsumes it. Post-filtering drops it (§4.2 step 2e).
                continue;
            }
            if !query.possibly_matches(&t) {
                // Non-null constrained value contradicting the query.
                continue;
            }
            if t.null_count_among(&merge.constrained) > 1 {
                merge.deferred.push(t);
                continue;
            }
            let confidence = self.tuple_confidence_cached(cache, query, &t);
            merge.possible.push(RankedAnswer {
                tuple: t,
                confidence,
                query_precision: rq.precision,
                query_index,
                explanation: rq.afd.clone(),
            });
        }
        merge.issued.push(rq.clone());
    }

    /// The assessed relevance of a possible answer: the product, over every
    /// constrained attribute the tuple is missing, of the classifier
    /// probability that the missing value satisfies the predicate.
    pub fn tuple_confidence(&self, query: &SelectQuery, tuple: &Tuple) -> f64 {
        let mut confidence = 1.0;
        for p in query.predicates() {
            if tuple.value(p.attr).is_null() {
                confidence *= self
                    .stats
                    .predictor()
                    .prob_matching(p.attr, tuple, &p.op);
            }
        }
        confidence
    }

    /// [`Self::tuple_confidence`] through a per-query memo: tuples sharing
    /// a determining-set combination are classified once.
    fn tuple_confidence_cached(
        &self,
        cache: &PredictionCache,
        query: &SelectQuery,
        tuple: &Tuple,
    ) -> f64 {
        let mut confidence = 1.0;
        for p in query.predicates() {
            if tuple.value(p.attr).is_null() {
                confidence *=
                    cache.prob_matching(self.stats.predictor(), p.attr, tuple, &p.op);
            }
        }
        confidence
    }
}

/// Working state of an answer merge, fed one rewritten query at a time in
/// rank order.
struct AnswerMerge {
    seen: FastHashSet<TupleId>,
    constrained: Vec<qpiad_db::AttrId>,
    possible: Vec<RankedAnswer>,
    deferred: Vec<Tuple>,
    issued: Vec<RewrittenQuery>,
}

/// Convenience: flattens an answer set into the user-visible order —
/// certain answers, then ranked possible answers, then deferred tuples.
pub fn flatten_answers(answers: &AnswerSet) -> Vec<&Tuple> {
    answers
        .certain
        .iter()
        .chain(answers.possible.iter().map(|a| &a.tuple))
        .chain(answers.deferred.iter())
        .collect()
}

/// Renders a short human-readable justification of a possible answer, e.g.
/// `confidence 0.91 via {model} ⇝ body_style (0.88)` (§6.1).
pub fn explain(answer: &RankedAnswer, schema: &qpiad_db::Schema) -> String {
    match &answer.explanation {
        Some(afd) => format!(
            "confidence {:.3} via {}",
            answer.confidence,
            afd.display(schema)
        ),
        None => format!("confidence {:.3} (no AFD; all-attribute classifier)", answer.confidence),
    }
}

/// Reusable check used by tests and the evaluation harness: `true` iff the
/// possible answer's tuple is missing exactly one constrained value and
/// contradicts no predicate.
pub fn is_well_formed_possible(query: &SelectQuery, tuple: &Tuple) -> bool {
    let constrained = query.constrained_attrs();
    tuple.null_count_among(&constrained) == 1 && query.possibly_matches(tuple)
}

/// A value-level helper the aggregate and join modules share: the most
/// likely completion of `attr` for a tuple, or the actual value when
/// present.
pub fn value_or_predicted(
    stats: &SourceStats,
    attr: qpiad_db::AttrId,
    tuple: &Tuple,
) -> Option<(Value, f64)> {
    let v = tuple.value(attr);
    if !v.is_null() {
        return Some((v.clone(), 1.0));
    }
    stats.predictor().predict(attr, tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::{Predicate, WebSource};
    use qpiad_learn::knowledge::MiningConfig;

    fn setup() -> (WebSource, Qpiad) {
        let ground = CarsConfig::default().with_rows(8_000).generate(41);
        let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
        let sample = uniform_sample(&ed, 0.10, 17);
        let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
        (
            WebSource::new("cars.com", ed),
            Qpiad::new(stats, QpiadConfig::default()),
        )
    }

    fn convt_query(source: &WebSource) -> SelectQuery {
        let body = source.schema().expect_attr("body_style");
        SelectQuery::new(vec![Predicate::eq(body, "Convt")])
    }

    #[test]
    fn returns_certain_and_possible_answers() {
        let (source, qpiad) = setup();
        let q = convt_query(&source);
        let answers = qpiad.answer(&source, &q).unwrap();
        assert!(!answers.certain.is_empty());
        assert!(!answers.possible.is_empty());
        assert!(answers.issued.len() <= qpiad.config().k);
        // Certain answers certainly match; possible answers possibly match.
        assert!(answers.certain.iter().all(|t| q.matches(t)));
        assert!(answers
            .possible
            .iter()
            .all(|a| is_well_formed_possible(&q, &a.tuple)));
    }

    #[test]
    fn possible_answers_have_null_on_constrained_attr() {
        let (source, qpiad) = setup();
        let q = convt_query(&source);
        let body = source.schema().expect_attr("body_style");
        let answers = qpiad.answer(&source, &q).unwrap();
        for a in &answers.possible {
            assert!(a.tuple.value(body).is_null());
            assert!((0.0..=1.0).contains(&a.confidence));
            assert!(a.explanation.is_some());
        }
    }

    #[test]
    fn possible_answers_arrive_in_query_precision_order() {
        let (source, qpiad) = setup();
        let q = convt_query(&source);
        let answers = qpiad.answer(&source, &q).unwrap();
        let precisions: Vec<f64> = answers.possible.iter().map(|a| a.query_precision).collect();
        for w in precisions.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "precision order violated: {w:?}");
        }
    }

    #[test]
    fn no_duplicate_tuples_across_answers() {
        let (source, qpiad) = setup();
        let q = convt_query(&source);
        let answers = qpiad.answer(&source, &q).unwrap();
        let mut ids: Vec<TupleId> = flatten_answers(&answers).iter().map(|t| t.id()).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn respects_source_query_limit() {
        let ground = CarsConfig::default().with_rows(4_000).generate(43);
        let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
        let sample = uniform_sample(&ed, 0.10, 19);
        let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
        // 1 base query + 3 rewritten queries allowed.
        let source = WebSource::new("limited", ed).with_query_limit(4);
        let qpiad = Qpiad::new(stats, QpiadConfig::default().with_k(100));
        let q = convt_query(&source);
        let answers = qpiad.answer(&source, &q).unwrap();
        assert_eq!(answers.issued.len(), 3);
        assert_eq!(source.meter().queries, 4);
    }

    #[test]
    fn confidence_threshold_filters_answers() {
        let (source, qpiad) = setup();
        let q = convt_query(&source);
        let all = qpiad.answer(&source, &q).unwrap();
        let strict = Qpiad::new(
            qpiad.stats().clone(),
            QpiadConfig::default().with_confidence_threshold(0.9),
        );
        source.reset_meter();
        let filtered = strict.answer(&source, &q).unwrap();
        assert!(filtered.possible.len() <= all.possible.len());
        assert!(filtered.possible.iter().all(|a| a.confidence >= 0.9));
    }

    #[test]
    fn multi_null_tuples_are_deferred() {
        let ground = CarsConfig::default().with_rows(8_000).generate(44);
        // Corrupt aggressively so two-null tuples exist across body & year.
        let body = ground.schema().expect_attr("body_style");
        let year = ground.schema().expect_attr("year");
        let (ed1, _) = corrupt(
            &ground,
            &CorruptionConfig::default()
                .with_fraction(0.25)
                .with_attrs(vec![body])
                .with_seed(1),
        );
        let (ed, _) = corrupt(
            &ed1,
            &CorruptionConfig::default()
                .with_fraction(0.25)
                .with_attrs(vec![year])
                .with_seed(2),
        );
        let sample = uniform_sample(&ed, 0.10, 23);
        let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
        let source = WebSource::new("cars.com", ed);
        let qpiad = Qpiad::new(stats, QpiadConfig::default().with_k(30));
        let q = SelectQuery::new(vec![
            Predicate::eq(body, "Sedan"),
            Predicate::eq(year, 2003i64),
        ]);
        let answers = qpiad.answer(&source, &q).unwrap();
        for t in &answers.deferred {
            assert_eq!(t.null_count_among(&[body, year]), 2);
        }
        for a in &answers.possible {
            assert_eq!(a.tuple.null_count_among(&[body, year]), 1);
        }
        assert!(!answers.deferred.is_empty() || !answers.possible.is_empty());
    }

    #[test]
    fn value_or_predicted_prefers_stored_values() {
        let (source, qpiad) = setup();
        let schema = source.relation().schema().clone();
        let body = schema.expect_attr("body_style");
        let model = schema.expect_attr("model");
        // Stored value: returned verbatim with probability 1.
        let stored = source
            .relation()
            .tuples()
            .iter()
            .find(|t| !t.value(body).is_null())
            .unwrap();
        let (v, p) = value_or_predicted(qpiad.stats(), body, stored).unwrap();
        assert_eq!(&v, stored.value(body));
        assert_eq!(p, 1.0);
        // Missing value: predicted from the model evidence.
        let missing = stored
            .with_value(body, qpiad_db::Value::Null)
            .with_value(model, qpiad_db::Value::str("Miata"));
        let (v, p) = value_or_predicted(qpiad.stats(), body, &missing).unwrap();
        assert_eq!(v, qpiad_db::Value::str("Convt"));
        assert!(p < 1.0 && p > 0.3);
    }

    #[test]
    fn unsupported_rewrite_attributes_are_skipped_not_fatal() {
        let ground = CarsConfig::default().with_rows(4_000).generate(45);
        let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
        let sample = uniform_sample(&ed, 0.10, 21);
        let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
        let schema = ed.schema().clone();
        let body = schema.expect_attr("body_style");
        let model = schema.expect_attr("model");
        // The web form only exposes body_style and year: model-based
        // rewrites cannot be issued there.
        let year = schema.expect_attr("year");
        let source = WebSource::new("narrow", ed).with_queryable(&[body, year]);
        let qpiad = Qpiad::new(stats, QpiadConfig::default().with_k(20));
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answers = qpiad.answer(&source, &q).expect("must not error");
        for rq in &answers.issued {
            assert!(rq.query.predicate_on(model).is_none());
        }
    }

    #[test]
    fn explain_renders_confidence_and_afd() {
        let (source, qpiad) = setup();
        let q = convt_query(&source);
        let answers = qpiad.answer(&source, &q).unwrap();
        let text = explain(&answers.possible[0], source.schema());
        assert!(text.contains("confidence"), "{text}");
        assert!(text.contains("body_style"), "{text}");
    }
}
