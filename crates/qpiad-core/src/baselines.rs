//! The paper's comparison baselines (§1, §6.2).
//!
//! * **AllReturned** — return every tuple with a missing value on a
//!   constrained attribute (that contradicts no other predicate), unranked.
//!   High recall, poor precision.
//! * **AllRanked** — same retrieval, but rank the tuples by their assessed
//!   relevance using the §5 classifiers.
//!
//! Both require *null binding* (`attr IS NULL` queries), which real web
//! databases do not support — they only run against a
//! [`qpiad_db::DirectSource`]. Their costs (every null-valued tuple is
//! transferred) are what Figure 8 compares QPIAD against.

use std::collections::HashSet;

use qpiad_db::{AutonomousSource, Predicate, SelectQuery, SourceError, Tuple, TupleId};
use qpiad_learn::knowledge::SourceStats;

use crate::mediator::RankedAnswer;

/// Retrieves all possible answers of a query by binding nulls: for each
/// constrained attribute, ask for tuples null on it that satisfy the other
/// predicates. Tuples are returned in source order, unranked.
pub fn all_returned(
    source: &dyn AutonomousSource,
    query: &SelectQuery,
) -> Result<Vec<Tuple>, SourceError> {
    let mut seen: HashSet<TupleId> = HashSet::new();
    let mut out: Vec<Tuple> = Vec::new();
    for target in query.constrained_attrs() {
        let mut preds: Vec<Predicate> = query
            .predicates()
            .iter()
            .filter(|p| p.attr != target)
            .cloned()
            .collect();
        preds.push(Predicate::is_null(target));
        let q = SelectQuery::new(preds);
        for t in source.query(&q)? {
            // Keep the paper's ranking assumption: only tuples missing a
            // single constrained value are (possible) answers here; others
            // would be deferred by every method alike.
            if query.possibly_matches(&t) && seen.insert(t.id()) {
                out.push(t);
            }
        }
    }
    Ok(out)
}

/// AllRanked: the [`all_returned`] retrieval followed by ranking on the
/// classifier-assessed relevance of each tuple.
pub fn all_ranked(
    source: &dyn AutonomousSource,
    query: &SelectQuery,
    stats: &SourceStats,
) -> Result<Vec<RankedAnswer>, SourceError> {
    let tuples = all_returned(source, query)?;
    let mut answers: Vec<RankedAnswer> = tuples
        .into_iter()
        .map(|t| {
            let mut confidence = 1.0;
            for p in query.predicates() {
                if t.value(p.attr).is_null() {
                    confidence *= stats.predictor().prob_matching(p.attr, &t, &p.op);
                }
            }
            RankedAnswer {
                tuple: t,
                confidence,
                query_precision: 0.0,
                query_index: 0,
                explanation: None,
            }
        })
        .collect();
    answers.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then_with(|| a.tuple.id().cmp(&b.tuple.id()))
    });
    Ok(answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig, Provenance};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::{DirectSource, Value, WebSource};
    use qpiad_learn::knowledge::MiningConfig;

    fn setup() -> (DirectSource, SourceStats, Provenance) {
        let ground = CarsConfig::default().with_rows(8_000).generate(51);
        let (ed, prov) = corrupt(&ground, &CorruptionConfig::default());
        let sample = uniform_sample(&ed, 0.10, 29);
        let stats = SourceStats::mine(&sample, ed.len(), &MiningConfig::default());
        (DirectSource::new("oracle", ed), stats, prov)
    }

    #[test]
    fn all_returned_fetches_every_null_candidate() {
        let (source, _, _) = setup();
        let body = source.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let got = all_returned(&source, &q).unwrap();
        let expected = source
            .relation()
            .tuples()
            .iter()
            .filter(|t| t.value(body).is_null())
            .count();
        assert_eq!(got.len(), expected);
        assert!(got.iter().all(|t| t.value(body).is_null()));
    }

    #[test]
    fn all_returned_respects_other_predicates() {
        let (source, _, _) = setup();
        let body = source.schema().expect_attr("body_style");
        let year = source.schema().expect_attr("year");
        let q = SelectQuery::new(vec![
            Predicate::eq(body, "Convt"),
            Predicate::eq(year, 2003i64),
        ]);
        let got = all_returned(&source, &q).unwrap();
        for t in &got {
            assert!(q.possibly_matches(t));
        }
    }

    #[test]
    fn all_ranked_orders_by_confidence() {
        let (source, stats, _) = setup();
        let body = source.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let ranked = all_ranked(&source, &q, &stats).unwrap();
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn all_ranked_puts_relevant_tuples_first() {
        let (source, stats, prov) = setup();
        let body = source.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let ranked = all_ranked(&source, &q, &stats).unwrap();
        let relevant = |t: &Tuple| prov.true_value(t.id(), body) == Some(&Value::str("Convt"));
        let n = ranked.len();
        let top = &ranked[..n / 4];
        let bottom = &ranked[3 * n / 4..];
        let top_rel = top.iter().filter(|a| relevant(&a.tuple)).count() as f64 / top.len() as f64;
        let bottom_rel =
            bottom.iter().filter(|a| relevant(&a.tuple)).count() as f64 / bottom.len() as f64;
        assert!(
            top_rel > bottom_rel,
            "ranking should concentrate relevance: top {top_rel} vs bottom {bottom_rel}"
        );
    }

    #[test]
    fn baselines_fail_on_web_sources() {
        let ground = CarsConfig::default().with_rows(500).generate(52);
        let source = WebSource::new("cars.com", ground);
        let body = source.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        assert!(matches!(
            all_returned(&source, &q),
            Err(SourceError::NullBindingUnsupported { .. })
        ));
    }
}
