//! Multi-way (chain) joins over incomplete autonomous sources.
//!
//! §4.5's footnote notes that the two-way techniques "are applicable to
//! cases involving multi-way joins"; this module is that generalization
//! for left-deep chains `R1 ⋈ R2 ⋈ ... ⋈ Rn`, each hop an equi-join
//! between adjacent relations.
//!
//! Stage `i` retrieves relation `R_{i+1}`'s certain answers plus the
//! possible answers of its top-K rewritten queries (ordered by F-measure,
//! as in the two-way case), predicts missing join values with the side's
//! classifiers — pinning them when the selection constrains the join
//! attribute itself — and hash-joins against the accumulated intermediate
//! result. Confidences multiply along the chain.

use std::collections::HashMap;

use qpiad_db::fault::RetryPolicy;
use qpiad_db::{AttrId, PredOp, SelectQuery, SourceError, Tuple, TupleId, Value};

use crate::join::JoinSide;
use crate::mediator::{Degradation, QueryContext};
use crate::plan::{self, AdmissionMode, BaseGate, EntryStatus, MediationPlan, PlanEntry};
use crate::rank::{order_rewrites, RankConfig};
use crate::rewrite::generate_rewrites;

/// A left-deep chain join query.
#[derive(Debug, Clone)]
pub struct ChainJoinQuery {
    /// One selection per relation, in chain order.
    pub selects: Vec<SelectQuery>,
    /// One hop per adjacent pair: `(attr in relation i, attr in relation
    /// i+1)`. Must have `selects.len() - 1` entries.
    pub hops: Vec<(AttrId, AttrId)>,
}

/// One joined row of the chain: a tuple per relation.
#[derive(Debug, Clone)]
pub struct ChainRow {
    /// One tuple from each relation, in chain order.
    pub tuples: Vec<Tuple>,
    /// Product of per-tuple relevance confidences (1.0 when every tuple is
    /// a certain answer with stored join values).
    pub confidence: f64,
    /// `true` iff every component is a certain answer with a stored join
    /// value.
    pub certain: bool,
}

/// The chain-join answer.
#[derive(Debug, Clone, Default)]
pub struct ChainJoinAnswer {
    /// Joined rows, certain-heavy prefixes first (sides are retrieved in
    /// precision order).
    pub rows: Vec<ChainRow>,
}

/// Per-side retrieval configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChainJoinConfig {
    /// F-measure α for per-side rewritten-query ordering.
    pub alpha: f64,
    /// Rewritten queries issued per side.
    pub k_per_side: usize,
}

impl Default for ChainJoinConfig {
    fn default() -> Self {
        ChainJoinConfig { alpha: 0.5, k_per_side: 8 }
    }
}

/// One retrieved tuple with its relevance confidence and certainty flag.
struct SideTuple {
    tuple: Tuple,
    confidence: f64,
    certain: bool,
}

/// Retrieves a side's certain answers plus the possible answers of its
/// top-K rewrites, with confidences.
fn retrieve_side(
    side: &JoinSide<'_>,
    select: &SelectQuery,
    config: &ChainJoinConfig,
) -> Result<Vec<SideTuple>, SourceError> {
    // Chain joins run unguarded (no breaker/budget of their own), so the
    // shared executor sees an unbounded context and a single-attempt
    // policy; a rewrite the source still fails is degraded, not fatal.
    let mut ctx = QueryContext::unbounded();
    let mut degraded = Degradation::default();
    let retry = RetryPolicy::none();
    let base =
        plan::execute_base(side.source, select, &retry, &mut ctx, &mut degraded, BaseGate::Guarded)?;
    let mut seen: HashMap<TupleId, ()> = base.iter().map(|t| (t.id(), ())).collect();
    let mut out: Vec<SideTuple> = base
        .into_iter()
        .map(|tuple| SideTuple { tuple, confidence: 1.0, certain: true })
        .collect();

    let rewrites = generate_rewrites(select, &out.iter().map(|s| s.tuple.clone()).collect::<Vec<_>>(), side.stats);
    let ordered = order_rewrites(
        rewrites,
        &RankConfig { alpha: config.alpha, k: config.k_per_side },
    );
    let mut plan = MediationPlan::new(
        side.source.name().to_string(),
        select.clone(),
        retry,
        AdmissionMode::PlanTime,
    );
    for scored in ordered {
        plan.push(PlanEntry {
            issue: scored.rewrite.query.clone(),
            rewrite: scored.rewrite,
            fmeasure: scored.fmeasure,
            status: EntryStatus::Deferred,
        });
    }
    plan.admit(&mut ctx, &mut degraded);

    let constrained = select.constrained_attrs();
    plan::execute(side.source, &plan, &mut ctx, &mut degraded, |_, _, result, _| {
        for t in result {
            if seen.insert(t.id(), ()).is_some() {
                continue;
            }
            if select.matches(&t) {
                out.push(SideTuple { tuple: t, confidence: 1.0, certain: true });
                continue;
            }
            if !select.possibly_matches(&t) || t.null_count_among(&constrained) > 1 {
                continue;
            }
            let mut confidence = 1.0;
            for p in select.predicates() {
                if t.value(p.attr).is_null() {
                    confidence *= side.stats.predictor().prob_matching(p.attr, &t, &p.op);
                }
            }
            out.push(SideTuple { tuple: t, confidence, certain: false });
        }
    });
    Ok(out)
}

/// The join key of one tuple: actual value, pinned selection value, or most
/// likely completion — mirroring the two-way semantics.
fn join_key(
    side: &JoinSide<'_>,
    select: &SelectQuery,
    join_attr: AttrId,
    tuple: &Tuple,
) -> Option<(Value, f64, bool)> {
    let v = tuple.value(join_attr);
    if !v.is_null() {
        return Some((v.clone(), 1.0, true));
    }
    if let Some(PredOp::Eq(pinned)) = select.predicate_on(join_attr).map(|p| &p.op) {
        // The possible-answer hypothesis already carries the probability.
        return Some((pinned.clone(), 1.0, false));
    }
    side.stats
        .predictor()
        .predict(join_attr, tuple)
        .map(|(v, p)| (v, p, false))
}

/// Answers a left-deep chain join.
///
/// # Panics
///
/// Panics if `sides`, `query.selects` and `query.hops` lengths are
/// inconsistent or fewer than two relations are given.
pub fn answer_chain_join(
    sides: &[JoinSide<'_>],
    config: &ChainJoinConfig,
    query: &ChainJoinQuery,
) -> Result<ChainJoinAnswer, SourceError> {
    assert!(sides.len() >= 2, "a chain join needs at least two relations");
    assert_eq!(sides.len(), query.selects.len(), "one selection per relation");
    assert_eq!(sides.len() - 1, query.hops.len(), "one hop per adjacent pair");

    // Seed: relation 0.
    let first = retrieve_side(&sides[0], &query.selects[0], config)?;
    let mut rows: Vec<ChainRow> = first
        .into_iter()
        .map(|s| ChainRow { tuples: vec![s.tuple], confidence: s.confidence, certain: s.certain })
        .collect();

    for (hop, (left_attr, right_attr)) in query.hops.iter().enumerate() {
        let side = &sides[hop + 1];
        let select = &query.selects[hop + 1];
        let right = retrieve_side(side, select, config)?;

        // Bucket the new side by join key.
        let mut by_key: HashMap<Value, Vec<(usize, f64, bool)>> = HashMap::new();
        let mut keyed: Vec<SideTuple> = Vec::with_capacity(right.len());
        for s in right {
            if let Some((key, prob, stored)) = join_key(side, select, *right_attr, &s.tuple) {
                by_key.entry(key).or_default().push((
                    keyed.len(),
                    s.confidence * prob,
                    s.certain && stored,
                ));
                keyed.push(s);
            }
        }

        // Extend each intermediate row.
        let left_side = &sides[hop];
        let left_select = &query.selects[hop];
        let mut next: Vec<ChainRow> = Vec::new();
        for row in rows {
            // Rows are seeded with one tuple and only ever grow; an empty
            // row would be a construction bug — drop it, don't panic.
            let Some(left_tuple) = row.tuples.last() else { continue };
            let Some((key, prob, stored)) = join_key(left_side, left_select, *left_attr, left_tuple)
            else {
                continue;
            };
            let Some(matches) = by_key.get(&key) else { continue };
            for (idx, right_conf, right_certain) in matches {
                let mut tuples = row.tuples.clone();
                tuples.push(keyed[*idx].tuple.clone());
                next.push(ChainRow {
                    tuples,
                    confidence: row.confidence * prob * right_conf,
                    certain: row.certain && stored && *right_certain,
                });
            }
        }
        rows = next;
    }

    // Certain rows first, then by confidence.
    rows.sort_by(|a, b| {
        b.certain
            .cmp(&a.certain)
            .then_with(|| b.confidence.total_cmp(&a.confidence))
    });
    Ok(ChainJoinAnswer { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::complaints::ComplaintsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::{Predicate, Relation, WebSource};
    use qpiad_learn::knowledge::{MiningConfig, SourceStats};

    fn mine(ed: &Relation, seed: u64) -> SourceStats {
        SourceStats::mine(
            &uniform_sample(ed, 0.10, seed),
            ed.len(),
            &MiningConfig::default(),
        )
    }

    /// Chain: Cars ⋈_model Complaints ⋈_model Cars' (a second car source) —
    /// "cars of a model with engine complaints, listed on both markets".
    #[test]
    fn three_way_chain_joins() {
        let cars_gd = CarsConfig::default().with_rows(4_000).generate(81);
        let comp_gd = ComplaintsConfig { rows: 6_000 }.generate(82);
        let cars2_gd = CarsConfig::default().with_rows(4_000).generate(83);
        let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(1));
        let (comp_ed, _) = corrupt(&comp_gd, &CorruptionConfig::default().with_seed(2));
        let (cars2_ed, _) = corrupt(&cars2_gd, &CorruptionConfig::default().with_seed(3));
        let s1 = mine(&cars_ed, 4);
        let s2 = mine(&comp_ed, 5);
        let s3 = mine(&cars2_ed, 6);
        let cars = WebSource::new("cars", cars_ed);
        let comps = WebSource::new("complaints", comp_ed);
        let cars2 = WebSource::new("cars2", cars2_ed);

        let model_c = cars.relation().schema().expect_attr("model");
        let model_k = comps.relation().schema().expect_attr("model");
        let gc = comps.relation().schema().expect_attr("general_component");
        let body = cars.relation().schema().expect_attr("body_style");

        let query = ChainJoinQuery {
            selects: vec![
                SelectQuery::new(vec![Predicate::eq(body, "Truck")]),
                SelectQuery::new(vec![Predicate::eq(gc, "Power Train")]),
                SelectQuery::all(),
            ],
            hops: vec![(model_c, model_k), (model_k, model_c)],
        };
        let sides = [
            JoinSide { source: &cars, stats: &s1 },
            JoinSide { source: &comps, stats: &s2 },
            JoinSide { source: &cars2, stats: &s3 },
        ];
        let ans = answer_chain_join(&sides, &ChainJoinConfig::default(), &query).unwrap();
        assert!(!ans.rows.is_empty());

        for row in &ans.rows {
            assert_eq!(row.tuples.len(), 3);
            assert!((0.0..=1.0 + 1e-9).contains(&row.confidence));
            // Stored join values must agree along the chain.
            let m0 = row.tuples[0].value(model_c);
            let m1 = row.tuples[1].value(model_k);
            let m2 = row.tuples[2].value(model_c);
            for pair in [(m0, m1), (m1, m2)] {
                if !pair.0.is_null() && !pair.1.is_null() {
                    assert_eq!(pair.0, pair.1);
                }
            }
        }
        // Certain rows exist and are sorted first with confidence 1.
        assert!(ans.rows[0].certain);
        assert!((ans.rows[0].confidence - 1.0).abs() < 1e-9);
        let first_uncertain = ans.rows.iter().position(|r| !r.certain);
        if let Some(idx) = first_uncertain {
            assert!(ans.rows[idx..].iter().all(|r| !r.certain));
        }
    }

    #[test]
    fn two_way_chain_agrees_with_certain_join_semantics() {
        let cars_gd = CarsConfig::default().with_rows(3_000).generate(84);
        let comp_gd = ComplaintsConfig { rows: 4_000 }.generate(85);
        let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(7));
        let (comp_ed, _) = corrupt(&comp_gd, &CorruptionConfig::default().with_seed(8));
        let s1 = mine(&cars_ed, 9);
        let s2 = mine(&comp_ed, 10);
        let model_c = cars_ed.schema().expect_attr("model");
        let model_k = comp_ed.schema().expect_attr("model");
        let gc = comp_ed.schema().expect_attr("general_component");

        // Certain part of the chain join must equal the nested-loop join of
        // the two certain answer sets.
        let left_q = SelectQuery::new(vec![Predicate::eq(model_c, "F150")]);
        let right_q = SelectQuery::new(vec![Predicate::eq(gc, "Brakes")]);
        let expected: usize = {
            let l = cars_ed.select(&left_q);
            let r = comp_ed.select(&right_q);
            l.iter()
                .map(|lt| {
                    r.iter()
                        .filter(|rt| {
                            !lt.value(model_c).is_null()
                                && lt.value(model_c) == rt.value(model_k)
                        })
                        .count()
                })
                .sum()
        };

        let cars = WebSource::new("cars", cars_ed);
        let comps = WebSource::new("complaints", comp_ed);
        let query = ChainJoinQuery {
            selects: vec![left_q, right_q],
            hops: vec![(model_c, model_k)],
        };
        let sides = [
            JoinSide { source: &cars, stats: &s1 },
            JoinSide { source: &comps, stats: &s2 },
        ];
        let ans = answer_chain_join(&sides, &ChainJoinConfig::default(), &query).unwrap();
        let certain = ans.rows.iter().filter(|r| r.certain).count();
        assert_eq!(certain, expected);
    }

    #[test]
    fn pinned_join_keys_follow_the_selection_hypothesis() {
        // A side whose selection constrains the join attribute itself: its
        // null-join-value possible answers must join under the *pinned*
        // selection value, never a classifier argmax pointing elsewhere.
        let cars_gd = CarsConfig::default().with_rows(6_000).generate(87);
        let comp_gd = ComplaintsConfig { rows: 8_000 }.generate(88);
        let (cars_ed, _) = corrupt(&cars_gd, &CorruptionConfig::default().with_seed(12));
        let (comp_ed, _) = corrupt(&comp_gd, &CorruptionConfig::default().with_seed(13));
        let s1 = mine(&cars_ed, 14);
        let s2 = mine(&comp_ed, 15);
        let model_c = cars_ed.schema().expect_attr("model");
        let model_k = comp_ed.schema().expect_attr("model");
        let cars = WebSource::new("cars", cars_ed);
        let comps = WebSource::new("complaints", comp_ed);

        let query = ChainJoinQuery {
            selects: vec![
                SelectQuery::new(vec![Predicate::eq(model_c, "F150")]),
                SelectQuery::all(),
            ],
            hops: vec![(model_c, model_k)],
        };
        let sides = [
            JoinSide { source: &cars, stats: &s1 },
            JoinSide { source: &comps, stats: &s2 },
        ];
        let ans = answer_chain_join(&sides, &ChainJoinConfig::default(), &query).unwrap();
        for row in &ans.rows {
            // Any left tuple with a stored model is F150; any with a null
            // model must have been joined under the pinned hypothesis, so
            // its right partner is an F150 complaint.
            let left_model = row.tuples[0].value(model_c);
            let right_model = row.tuples[1].value(model_k);
            if left_model.is_null() {
                if !right_model.is_null() {
                    assert_eq!(right_model, &qpiad_db::Value::str("F150"));
                }
            } else {
                assert_eq!(left_model, &qpiad_db::Value::str("F150"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_relation_chains() {
        let cars_gd = CarsConfig::default().with_rows(100).generate(86);
        let stats = mine(&cars_gd, 11);
        let cars = WebSource::new("cars", cars_gd.clone());
        let query = ChainJoinQuery { selects: vec![SelectQuery::all()], hops: vec![] };
        let _ = answer_chain_join(
            &[JoinSide { source: &cars, stats: &stats }],
            &ChainJoinConfig::default(),
            &query,
        );
    }
}
