//! Retrieving possible answers from sources that do not support the
//! constrained attribute (§4.3).
//!
//! A mediator's global schema may contain attributes some local schemas
//! lack — e.g. Yahoo! Autos has no `Body Style`. For a query on such an
//! attribute, a conventional mediator returns *nothing* from that source.
//! QPIAD instead uses a **correlated source** (Definition 4): a source that
//! (i) supports the attribute, (ii) has an AFD determining it, and (iii)
//! whose AFD's determining set the deficient source does support. The base
//! set and statistics come from the correlated source; the rewritten
//! queries go to the deficient source; *every* returned tuple is a possible
//! answer (the source simply has no value for the attribute), ranked by the
//! retrieving query's precision.

use qpiad_db::hash::FastHashSet;

use qpiad_db::fault::{query_fingerprint, RetryPolicy};
use qpiad_db::{AutonomousSource, SelectQuery, SourceBinding, SourceError, Tuple, TupleId};
use qpiad_learn::knowledge::SourceStats;

use crate::mediator::{Degradation, Qpiad, QueryContext, RankedAnswer};
use crate::plan::{
    self, AdmissionMode, BaseGate, CacheStatus, EntryStatus, MediationPlan, PlanCandidate,
    PlanEntry, SkipReason,
};
use crate::rank::{order_rewrites, RankConfig};
use crate::rewrite::generate_rewrites;

/// Checks Definition 4: can `correlated_stats` (learned from a source that
/// supports every query attribute) drive retrieval from the deficient
/// source described by `binding`? All determining-set attributes of every
/// constrained attribute must be supported by the deficient source.
pub fn is_correlated_source_usable(
    correlated_stats: &SourceStats,
    binding: &SourceBinding,
    query: &SelectQuery,
) -> bool {
    query.constrained_attrs().iter().all(|attr| {
        match correlated_stats.determining_set(*attr) {
            Some(dtr) => dtr.iter().all(|a| binding.supports(*a)),
            None => false,
        }
    })
}

/// The result of a correlated-source retrieval: ranked possible answers
/// plus an account of what the plan lost to target-source failures.
#[derive(Debug, Clone, Default)]
pub struct CorrelatedAnswers {
    /// Ranked possible answers, lifted to the global schema.
    pub possible: Vec<RankedAnswer>,
    /// Rewritten queries dropped after exhausting retries against the
    /// target source (empty when the run was healthy).
    pub degraded: Degradation,
}

/// Answers a query on a global-schema attribute from a source whose local
/// schema does not support it.
///
/// * `correlated_source` — the source supporting the attribute (supplies
///   the base set); its schema must equal the global schema the query and
///   `correlated_stats` use.
/// * `target_source` + `binding` — the deficient source and its global→
///   local attribute mapping.
///
/// Returns ranked possible answers **lifted to the global schema** (the
/// unsupported attributes are null). Queries are issued through the retry
/// boundary; a rewritten query the target still fails after retries is
/// skipped and recorded in [`CorrelatedAnswers::degraded`] — only a failure
/// of the base retrieval from the correlated source is an error.
///
/// The context's breaker probe belongs to the *target* source and is
/// consulted per candidate, interleaved with retrieval: this loop is
/// inherently sequential (the dedup set orders it), so a probe tripped by
/// the first `failure_threshold` failed rewrites skips every remaining
/// candidate — a permanently down target costs at most `failure_threshold`
/// probe attempts across the whole plan, at any thread count.
#[allow(clippy::too_many_arguments)]
pub fn answer_from_correlated(
    correlated_source: &dyn AutonomousSource,
    correlated_stats: &SourceStats,
    target_source: &dyn AutonomousSource,
    binding: &SourceBinding,
    query: &SelectQuery,
    config: &RankConfig,
    retry: &RetryPolicy,
    ctx: &mut QueryContext,
) -> Result<CorrelatedAnswers, SourceError> {
    // Step 1 (modified): base set from the correlated source. Only the
    // budget gates it — the probe tracks the target's health, and the
    // correlated member's own breaker already vetted it this pass.
    let mut degraded = Degradation::default();
    let base = plan::execute_base(
        correlated_source,
        query,
        retry,
        ctx,
        &mut degraded,
        BaseGate::BudgetOnly,
    )?;

    // Step 2: an interleaved-admission plan — rewrites from the correlated
    // source's statistics, translated onto the target's local schema at
    // plan time. Deferred entries are admitted by the executor one at a
    // time, immediately before issue (the dedup set orders this loop, so
    // it is inherently sequential).
    let plan = build_plan(
        correlated_stats,
        target_source.name(),
        binding,
        query,
        config,
        retry,
        &base,
    );
    Ok(collect_possible(target_source, binding, query, &plan, ctx, degraded))
}

/// [`answer_from_correlated`] with the planning half served through the
/// correlated member's own mediator (and therefore through its plan cache,
/// when one is attached). A network pass that already planned the same
/// query for the correlated source — the supporting member's direct pass —
/// reuses that candidate list instead of regenerating and re-ordering the
/// rewrites from scratch. Budget semantics are unchanged: the base
/// retrieval is still issued here, charged to *this* member's context.
pub(crate) fn answer_from_correlated_planned(
    correlated_source: &dyn AutonomousSource,
    planner: &Qpiad,
    target_source: &dyn AutonomousSource,
    binding: &SourceBinding,
    query: &SelectQuery,
    retry: &RetryPolicy,
    ctx: &mut QueryContext,
) -> Result<CorrelatedAnswers, SourceError> {
    let mut degraded = Degradation::default();
    let base = plan::execute_base(
        correlated_source,
        query,
        retry,
        ctx,
        &mut degraded,
        BaseGate::BudgetOnly,
    )?;
    let (candidates, _cache) = planner.candidate_set(correlated_source, query, &base);
    let plan = plan_from_shared_candidates(target_source.name(), binding, query, retry, &candidates);
    Ok(collect_possible(target_source, binding, query, &plan, ctx, degraded))
}

/// Executes a correlated plan against the target source and lifts every
/// kept tuple into the global schema as a possible answer.
fn collect_possible(
    target_source: &dyn AutonomousSource,
    binding: &SourceBinding,
    query: &SelectQuery,
    plan: &MediationPlan,
    ctx: &mut QueryContext,
    mut degraded: Degradation,
) -> CorrelatedAnswers {
    let mut possible: Vec<RankedAnswer> = Vec::new();
    let mut seen: FastHashSet<TupleId> = FastHashSet::default();
    plan::execute(target_source, plan, ctx, &mut degraded, |rank, entry, kept, _ctx| {
        for local_tuple in kept {
            if !seen.insert(local_tuple.id()) {
                continue;
            }
            // Lift into the global schema; the constrained attribute comes
            // back null (the source does not store it), making the tuple a
            // possible answer by construction.
            let tuple = binding.lift_tuple(&local_tuple);
            if !query.possibly_matches(&tuple) {
                continue;
            }
            possible.push(RankedAnswer {
                tuple,
                confidence: entry.rewrite.precision,
                query_precision: entry.rewrite.precision,
                query_index: rank,
                explanation: entry.rewrite.afd.clone(),
            });
        }
    });
    if degraded.is_degraded() {
        target_source.note_degraded();
    }
    CorrelatedAnswers { possible, degraded }
}

/// Wraps a shared candidate list (the supporting pass's planning output)
/// as an interleaved correlated plan. The `supported` flag is ignored — it
/// describes the *correlated* source's web form, while these queries go to
/// the target — and each candidate is admitted or skipped purely on
/// whether the target's binding can translate it.
fn plan_from_shared_candidates(
    target_name: &str,
    binding: &SourceBinding,
    query: &SelectQuery,
    retry: &RetryPolicy,
    candidates: &[PlanCandidate],
) -> MediationPlan {
    let mut plan = MediationPlan::new(
        target_name.to_string(),
        query.clone(),
        *retry,
        AdmissionMode::Interleaved,
    );
    for c in candidates {
        let (issue, status) = match binding.translate_query(&c.scored.rewrite.query) {
            Ok(local) => (local, EntryStatus::Deferred),
            Err(_) => (
                c.scored.rewrite.query.clone(),
                EntryStatus::Skipped(SkipReason::Untranslatable),
            ),
        };
        plan.push(PlanEntry {
            rewrite: c.scored.rewrite.clone(),
            issue,
            fmeasure: c.scored.fmeasure,
            status,
        });
    }
    plan
}

/// Builds the (unadmitted) interleaved plan for a correlated retrieval:
/// rewrites generated from the correlated source's statistics, ordered by
/// F-measure, and translated onto the target's local schema at plan time.
/// An untranslatable candidate becomes a skipped entry, not an error.
fn build_plan(
    correlated_stats: &SourceStats,
    target_name: &str,
    binding: &SourceBinding,
    query: &SelectQuery,
    config: &RankConfig,
    retry: &RetryPolicy,
    base: &[Tuple],
) -> MediationPlan {
    let rewrites = generate_rewrites(query, base, correlated_stats);
    let ordered = order_rewrites(rewrites, config);
    let mut plan = MediationPlan::new(
        target_name.to_string(),
        query.clone(),
        *retry,
        AdmissionMode::Interleaved,
    );
    for scored in ordered {
        let (issue, status) = match binding.translate_query(&scored.rewrite.query) {
            Ok(local) => (local, EntryStatus::Deferred),
            Err(_) => (
                scored.rewrite.query.clone(),
                EntryStatus::Skipped(SkipReason::Untranslatable),
            ),
        };
        plan.push(PlanEntry {
            rewrite: scored.rewrite,
            issue,
            fmeasure: scored.fmeasure,
            status,
        });
    }
    plan
}

/// A *speculative* correlated plan for EXPLAIN: the base result set is
/// approximated by the correlated source's mined sample and admission is
/// previewed against `ctx` without charging any degradation record. Issues
/// zero source queries against either source.
#[allow(clippy::too_many_arguments)]
pub fn plan_from_correlated_speculative(
    correlated_stats: &SourceStats,
    target_name: &str,
    binding: &SourceBinding,
    query: &SelectQuery,
    config: &RankConfig,
    retry: &RetryPolicy,
    ctx: &mut QueryContext,
) -> MediationPlan {
    let base = plan::stats_sample_matches(correlated_stats, query);
    let mut plan = build_plan(correlated_stats, target_name, binding, query, config, retry, &base);
    plan.cache = CacheStatus::Speculative;
    // The base retrieval is gated by the budget only — the probe belongs
    // to the target source and is never consulted for the base.
    match ctx.budget.admit(retry, query_fingerprint(query)) {
        Some(policy) => plan.base_status = EntryStatus::Admitted(policy),
        None => {
            plan.base_status = EntryStatus::Skipped(SkipReason::BudgetExhausted);
            plan.skip_all(SkipReason::BudgetExhausted);
            return plan;
        }
    }
    // Preview interleaved admission: consume the probe and budget in the
    // same order the executor would, so a breaker-open target shows every
    // remaining candidate as skipped.
    let mut scratch = Degradation::default();
    plan.admit(ctx, &mut scratch);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;
    use qpiad_db::{Predicate, Relation, WebSource};
    use qpiad_learn::knowledge::MiningConfig;

    /// Builds the paper's Figure 2 scenario: Cars.com supports body_style,
    /// a Yahoo!-Autos-like source stores the same kind of data but its
    /// local schema has no body_style column.
    fn setup() -> (WebSource, SourceStats, WebSource, SourceBinding, Relation) {
        let global = CarsConfig::default().with_rows(6_000).generate(81);

        // Cars.com: incomplete, full schema.
        let (cars_ed, _) = corrupt(&global, &CorruptionConfig::default().with_seed(5));
        let stats = SourceStats::mine(
            &uniform_sample(&cars_ed, 0.10, 7),
            cars_ed.len(),
            &MiningConfig::default(),
        );
        let cars = WebSource::new("cars.com", cars_ed);

        // Yahoo! Autos: *different* car instances (fresh generation), local
        // schema without body_style. We keep the full-schema ground truth
        // around to judge precision in the evaluation crate.
        let yahoo_ground = CarsConfig::default().with_rows(6_000).generate(82);
        let schema = yahoo_ground.schema().clone();
        let keep: Vec<_> = schema
            .attr_ids()
            .filter(|a| schema.attr(*a).name() != "body_style")
            .collect();
        let yahoo_local = yahoo_ground.project_to("yahoo_autos", &keep);
        let binding = SourceBinding::by_name("yahoo", &schema, yahoo_local.schema());
        let yahoo = WebSource::new("yahoo", yahoo_local);

        (cars, stats, yahoo, binding, yahoo_ground)
    }

    #[test]
    fn definition4_check() {
        let (_, stats, yahoo, binding, _) = setup();
        let body = stats.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        // dtrSet(body_style) is model-based, which Yahoo supports.
        assert!(is_correlated_source_usable(&stats, &binding, &q));
        // The binding knows Yahoo has no body_style column (the raw global
        // AttrId would alias a different local column — see the
        // direct_query test below).
        assert!(!binding.supports(body));
        let _ = yahoo;
    }

    #[test]
    fn retrieves_possible_answers_from_deficient_source() {
        let (cars, stats, yahoo, binding, yahoo_ground) = setup();
        let body = stats.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);

        let answers = answer_from_correlated(
            &cars,
            &stats,
            &yahoo,
            &binding,
            &q,
            &RankConfig { alpha: 0.0, k: 10 },
            &RetryPolicy::default(),
            &mut QueryContext::unbounded(),
        )
        .unwrap();
        assert!(!answers.degraded.is_degraded());
        let answers = answers.possible;
        assert!(!answers.is_empty());
        // Every answer is a possible answer: null body_style after lifting.
        for a in &answers {
            assert!(a.tuple.value(body).is_null());
            assert!(a.explanation.is_some());
        }
        // Precision of the top answers against the hidden ground truth
        // should be high (this is Figure 11's measurement).
        let top = &answers[..answers.len().min(25)];
        let hits = top
            .iter()
            .filter(|a| {
                yahoo_ground
                    .by_id(a.tuple.id())
                    .map(|t| t.value(body) == &qpiad_db::Value::str("Convt"))
                    .unwrap_or(false)
            })
            .count();
        let precision = hits as f64 / top.len() as f64;
        assert!(precision > 0.6, "top-25 precision {precision}");
    }

    #[test]
    fn direct_query_to_deficient_source_fails() {
        let (_, stats, yahoo, _, _) = setup();
        let body = stats.schema().expect_attr("body_style");
        // The global attribute id does not even exist locally, or maps to a
        // different column — the binding's translate is the only safe path.
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        // body_style has global index 5; yahoo's local schema has 6 attrs
        // (indices 0..=5) where 5 is `certified`, so the raw query silently
        // asks the wrong column — exactly the bug the binding prevents.
        let raw = yahoo.query(&q).unwrap();
        assert!(raw.is_empty(), "certified=Convt matches nothing");
    }

    #[test]
    fn answers_are_ordered_by_query_precision() {
        let (cars, stats, yahoo, binding, _) = setup();
        let body = stats.schema().expect_attr("body_style");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let answers = answer_from_correlated(
            &cars,
            &stats,
            &yahoo,
            &binding,
            &q,
            &RankConfig { alpha: 0.0, k: 10 },
            &RetryPolicy::default(),
            &mut QueryContext::unbounded(),
        )
        .unwrap();
        for w in answers.possible.windows(2) {
            assert!(w[0].query_precision >= w[1].query_precision - 1e-12);
        }
    }
}
