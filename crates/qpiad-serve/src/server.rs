//! The serving front end proper: admission → coalesce → plan → execute.
//!
//! [`QpiadServer`] wraps a [`MediatorNetwork`] for long-lived, concurrent
//! use. Every request flows through four stages:
//!
//! 1. **Admission** — the tenant is resolved (unknown callers are
//!    refused) and the query is validated against the global schema, so a
//!    malformed request is a graceful [`ServeError::MalformedQuery`]
//!    instead of an out-of-bounds panic deep inside predicate matching.
//! 2. **Coalesce** — the request joins the singleflight group for its
//!    (query template, knowledge epoch, budget) key: the first caller
//!    leads, concurrent duplicates park and share the leader's answer —
//!    and its *single* source fan-out (see [`crate::coalesce`]).
//! 3. **Schedule** — a batch-class leader takes one of
//!    [`ServeConfig::batch_concurrency`] batch slots before executing;
//!    interactive leaders never queue, so a batch flood cannot starve
//!    them.
//! 4. **Execute** — one budgeted mediation pass runs on the network
//!    (which installs its own [`MediationClock`] around the pass), and
//!    the answer is published to the whole group.
//!
//! The server is `Sync`: callers invoke [`QpiadServer::query`] from as
//! many threads as they like. All answers are shared via `Arc` — the
//! determinism protocol underneath guarantees they are byte-identical to
//! a serial execution of the same requests.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use qpiad_core::network::{MediatorNetwork, NetworkAnswer};
use qpiad_db::health::MediationClock;
use qpiad_db::{SelectQuery, SourceError};

use crate::coalesce::{Flight, FlightKey, Role, SharedAnswer, Singleflight};
use crate::metrics::{MetricCells, ServeMetrics};
use crate::tenant::{Tenant, TenantClass};

/// Serving knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Most batch-class mediation passes allowed to execute at once;
    /// further batch leaders queue. Interactive passes are never gated.
    pub batch_concurrency: usize,
    /// Whether concurrent identical requests are coalesced onto one pass
    /// (default: yes). Disabling is only useful for measuring what
    /// coalescing saves.
    pub coalesce: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { batch_concurrency: 2, coalesce: true }
    }
}

impl ServeConfig {
    /// Overrides the batch concurrency cap (at least 1).
    pub fn with_batch_concurrency(mut self, n: usize) -> Self {
        self.batch_concurrency = n.max(1);
        self
    }

    /// Enables or disables request coalescing.
    pub fn with_coalesce(mut self, enabled: bool) -> Self {
        self.coalesce = enabled;
        self
    }
}

/// Why the server refused or failed a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No tenant with this name is registered.
    UnknownTenant {
        /// The name presented at admission.
        name: String,
    },
    /// The query failed admission validation against the global schema.
    MalformedQuery {
        /// What was wrong, for diagnostics.
        reason: String,
    },
    /// The mediation pass itself failed.
    Source(SourceError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant { name } => write!(f, "unknown tenant `{name}`"),
            ServeError::MalformedQuery { reason } => write!(f, "malformed query: {reason}"),
            ServeError::Source(e) => write!(f, "mediation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Locks a mutex, recovering from poisoning: every guarded state here is
/// valid at each instant, so a panicking peer must not wedge the server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Counting gate bounding concurrent batch-class passes.
#[derive(Debug, Default)]
struct BatchGate {
    used: Mutex<usize>,
    freed: Condvar,
}

impl BatchGate {
    fn acquire(&self, cap: usize) {
        let mut used = lock(&self.used);
        while *used >= cap {
            used = self.freed.wait(used).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *used += 1;
    }

    fn release(&self) {
        *lock(&self.used) -= 1;
        self.freed.notify_one();
    }
}

/// A long-lived, thread-safe serving front end over a [`MediatorNetwork`].
pub struct QpiadServer<'a> {
    network: MediatorNetwork<'a>,
    config: ServeConfig,
    tenants: Mutex<HashMap<String, Tenant>>,
    flights: Singleflight,
    batch_gate: BatchGate,
    metrics: MetricCells,
}

impl<'a> QpiadServer<'a> {
    /// Wraps `network` for serving. If the network carries no
    /// [`MediationClock`] yet, a wall clock is attached, so no pass served
    /// here ever consults the process-global time shim.
    pub fn new(network: MediatorNetwork<'a>) -> Self {
        let network = if network.clock().is_none() {
            network.with_clock(MediationClock::wall())
        } else {
            network
        };
        QpiadServer {
            network,
            config: ServeConfig::default(),
            tenants: Mutex::new(HashMap::new()),
            flights: Singleflight::default(),
            batch_gate: BatchGate::default(),
            metrics: MetricCells::default(),
        }
    }

    /// Overrides the serving knobs.
    pub fn with_config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers (or replaces) a tenant.
    pub fn register(&self, tenant: Tenant) {
        lock(&self.tenants).insert(tenant.name().to_string(), tenant);
    }

    /// The wrapped network (read-only: meters, EXPLAIN, epochs).
    pub fn network(&self) -> &MediatorNetwork<'a> {
        &self.network
    }

    /// Mutable access to the wrapped network for lifecycle operations
    /// (e.g. [`MediatorNetwork::refresh_member`]). Requires exclusive
    /// access, so no pass can be in flight — knowledge swaps stay atomic
    /// with respect to serving.
    pub fn network_mut(&mut self) -> &mut MediatorNetwork<'a> {
        &mut self.network
    }

    /// Serves one query for `tenant`: admission, coalescing, scheduling,
    /// then a budgeted mediation pass funded from the tenant's
    /// [`QueryBudget`](qpiad_db::QueryBudget).
    pub fn query(&self, tenant: &str, query: &SelectQuery) -> Result<Arc<NetworkAnswer>, ServeError> {
        let spec = match lock(&self.tenants).get(tenant) {
            Some(t) => t.clone(),
            None => {
                MetricCells::bump(&self.metrics.rejected);
                return Err(ServeError::UnknownTenant { name: tenant.to_string() });
            }
        };
        if let Err(reason) = self.validate(query) {
            MetricCells::bump(&self.metrics.rejected);
            return Err(ServeError::MalformedQuery { reason });
        }
        MetricCells::bump(&self.metrics.admitted);
        MetricCells::bump(match spec.class() {
            TenantClass::Interactive => &self.metrics.interactive,
            TenantClass::Batch => &self.metrics.batch,
        });

        let result = if self.config.coalesce {
            let key = FlightKey {
                query: query.clone(),
                epoch: self.network.knowledge_epoch(),
                budget: spec.budget().into(),
            };
            match self.flights.join(
                &key,
                || MetricCells::bump(&self.metrics.coalesce_waiters),
                || MetricCells::lower_gauge(&self.metrics.coalesce_waiters),
            ) {
                Role::Follower(result) => {
                    MetricCells::bump(&self.metrics.coalesced);
                    result
                }
                Role::Leader(flight) => self.lead(&key, &flight, &spec, query),
            }
        } else {
            MetricCells::bump(&self.metrics.leaders);
            self.execute(&spec, query)
        };

        result.map_err(|e| {
            MetricCells::bump(&self.metrics.errors);
            ServeError::Source(e)
        })
    }

    /// Renders the network's EXPLAIN for a validated query.
    pub fn explain(&self, query: &SelectQuery) -> Result<String, ServeError> {
        self.validate(query).map_err(|reason| ServeError::MalformedQuery { reason })?;
        Ok(self.network.explain(query))
    }

    /// A snapshot of the serving counters plus every member's meter.
    pub fn metrics(&self) -> ServeMetrics {
        self.metrics.snapshot(self.network.member_meters())
    }

    /// Number of mediation passes currently in flight in the coalescing
    /// layer (distinct keys being led right now).
    pub fn inflight(&self) -> usize {
        self.flights.inflight_len()
    }

    /// Runs the pass as the group's leader and publishes to every
    /// follower; a panic along the way publishes an
    /// [`SourceError::Internal`] instead of wedging them.
    fn lead(
        &self,
        key: &FlightKey,
        flight: &Flight,
        spec: &Tenant,
        query: &SelectQuery,
    ) -> SharedAnswer {
        MetricCells::bump(&self.metrics.leaders);
        let mut publish = LeaderPublish { flights: &self.flights, key, flight, published: false };
        let result = self.execute(spec, query);
        publish.publish(result)
    }

    /// One scheduled, budgeted mediation pass.
    fn execute(&self, spec: &Tenant, query: &SelectQuery) -> SharedAnswer {
        let _permit = (spec.class() == TenantClass::Batch).then(|| {
            self.batch_gate.acquire(self.config.batch_concurrency);
            MetricCells::raise_gauge(
                &self.metrics.batch_in_flight,
                &self.metrics.batch_in_flight_peak,
            );
            BatchPermit { gate: &self.batch_gate, metrics: &self.metrics }
        });
        self.network.answer_budgeted(query, spec.budget()).map(Arc::new)
    }

    /// Admission-time validation: every constrained attribute must exist
    /// in the global schema. Member-local concerns (unsupported
    /// attributes, null binding) are *not* rejected here — the mediator
    /// degrades those per member — but an attribute outside the global
    /// schema can satisfy no source and would index out of tuple bounds.
    fn validate(&self, query: &SelectQuery) -> Result<(), String> {
        let global = self.network.global_schema();
        for p in query.predicates() {
            if p.attr.index() >= global.arity() {
                return Err(format!(
                    "attribute {} out of range for global schema `{}` (arity {})",
                    p.attr,
                    global.name(),
                    global.arity()
                ));
            }
        }
        Ok(())
    }
}

/// Publishes the leader's result on the happy path, and an `Internal`
/// error if the leader unwinds first — followers must always wake.
struct LeaderPublish<'s> {
    flights: &'s Singleflight,
    key: &'s FlightKey,
    flight: &'s Flight,
    published: bool,
}

impl LeaderPublish<'_> {
    fn publish(&mut self, result: SharedAnswer) -> SharedAnswer {
        self.flights.complete(self.key, self.flight, result.clone());
        self.published = true;
        result
    }
}

impl Drop for LeaderPublish<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.flights.complete(
                self.key,
                self.flight,
                Err(SourceError::Internal {
                    message: "mediation pass aborted before publishing its answer".into(),
                }),
            );
        }
    }
}

/// RAII batch slot: releases the gate and lowers the gauge on drop (also
/// on unwind, so a panicking batch pass cannot leak its slot).
struct BatchPermit<'s> {
    gate: &'s BatchGate,
    metrics: &'s MetricCells,
}

impl Drop for BatchPermit<'_> {
    fn drop(&mut self) {
        MetricCells::lower_gauge(&self.metrics.batch_in_flight);
        self.gate.release();
    }
}
