//! The serving front end proper: admission → coalesce → plan → execute.
//!
//! [`QpiadServer`] wraps a [`MediatorNetwork`] for long-lived, concurrent
//! use. Every request flows through four stages:
//!
//! 1. **Admission** — the tenant is resolved (unknown callers are
//!    refused) and the query is validated against the global schema, so a
//!    malformed request is a graceful [`ServeError::MalformedQuery`]
//!    instead of an out-of-bounds panic deep inside predicate matching.
//! 2. **Overload control** — admitted work is bounded. Batch-class
//!    requests past [`ServeConfig::batch_queue_limit`] are refused with a
//!    typed [`ServeError::Shed`] *before any source fan-out*; interactive
//!    work is never refused but descends a degradation ladder instead: the
//!    current [`PressureLevel`] (derived from the live in-flight gauge
//!    against [`ServeConfig::pressure_capacity`]) clamps how much of the
//!    ranked rewrite plan the pass may admit, disables hedging, and at the
//!    top rung falls back to certain answers only — every shed rewrite is
//!    charged to the answer's `Degradation` so EXPLAIN and metrics state
//!    the recall mass given up. A server-wide deadline
//!    ([`ServeConfig::deadline`]) is stamped into the pass budget; a
//!    request that can no longer fund one attempt is refused with
//!    [`ServeError::DeadlineRefused`] — the cheapest possible layer.
//! 3. **Coalesce** — the request joins the singleflight group for its
//!    (query template, knowledge epoch, budget, pressure) key: the first
//!    caller leads, concurrent duplicates park and share the leader's
//!    answer — and its *single* source fan-out (see [`crate::coalesce`]).
//! 4. **Schedule** — a batch-class leader takes one of
//!    [`ServeConfig::batch_concurrency`] batch slots before executing;
//!    interactive leaders never queue, so a batch flood cannot starve
//!    them.
//! 5. **Execute** — one budgeted mediation pass runs on the network
//!    (which installs its own [`MediationClock`] around the pass), and
//!    the answer is published to the whole group.
//!
//! Every admitted request settles exactly once — completed, shed,
//! deadline-refused, or errored — even across panic unwinds (a request
//! guard charges an unsettled unwind to `errors`), so the metrics obey
//! `admitted == completed + shed + deadline_refused + errors` whenever
//! the server is quiesced.
//!
//! The server is `Sync`: callers invoke [`QpiadServer::query`] from as
//! many threads as they like. All answers are shared via `Arc` — the
//! determinism protocol underneath guarantees they are byte-identical to
//! a serial execution of the same requests.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use qpiad_core::network::{MediatorNetwork, MemberFold, NetworkAnswer};
use qpiad_db::health::{MediationClock, PressureLevel, QueryBudget};
use qpiad_db::{AutonomousSource, SelectQuery, SourceError};
use qpiad_learn::{KnowledgeStore, MiningConfig, SourceStats};

use crate::coalesce::{Flight, FlightKey, Role, SharedAnswer, Singleflight};
use crate::metrics::{MetricCells, ServeMetrics};
use crate::tenant::{Tenant, TenantClass};

/// Serving knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Most batch-class mediation passes allowed to execute at once;
    /// further batch leaders queue. Interactive passes are never gated.
    pub batch_concurrency: usize,
    /// Whether concurrent identical requests are coalesced onto one pass
    /// (default: yes). Disabling is only useful for measuring what
    /// coalescing saves.
    pub coalesce: bool,
    /// Most batch-class requests allowed in flight at once (executing
    /// *or* queued on the batch gate); further batch work is refused with
    /// [`ServeError::Shed`] before any source fan-out. Default
    /// `usize::MAX` — unbounded, batch leaders queue instead of shedding.
    pub batch_queue_limit: usize,
    /// In-flight request count at which the overload ladder reaches
    /// [`PressureLevel::Critical`]. Intermediate rungs engage at 1/2 and
    /// 3/4 of this capacity (see [`PressureLevel::from_load`]). Default
    /// `0` — the ladder is disabled and every pass runs at
    /// [`PressureLevel::Normal`].
    pub pressure_capacity: usize,
    /// Server-wide deadline stamped into every pass budget (the stricter
    /// of this and the tenant's own deadline wins). A request whose
    /// stamped budget cannot fund one mediation attempt is refused with
    /// [`ServeError::DeadlineRefused`] at admission. Default `None` — no
    /// server-side deadline.
    pub deadline: Option<Duration>,
    /// Most mine/persist attempts one [`QpiadServer::maintain`] pass
    /// spends per refresh candidate before giving up for the pass (the
    /// member keeps serving its old knowledge generation). Default 2.
    pub refresh_retries: usize,
    /// Base of the exponential backoff (counted in maintenance passes) a
    /// candidate waits after a fully failed refresh pass: after `f`
    /// consecutive failed passes the member is deferred for
    /// `min(refresh_backoff_base << (f - 1), 64)` passes. Default 1.
    pub refresh_backoff_base: u64,
    /// Whether a maintenance pass first tries to fold a candidate's
    /// streamed validated rows into its existing knowledge (an
    /// incremental delta publication) before falling back to a full
    /// re-mine. Default `true`.
    pub prefer_incremental: bool,
    /// Largest AFD/AKey confidence shift an incremental fold may publish
    /// without a TANE re-run; a fold whose worst delta crosses this
    /// bound is abandoned and the candidate is fully re-mined instead
    /// (dependency *membership* could have changed, not just
    /// confidence). Default `0.05`.
    pub refold_bound: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_concurrency: 2,
            coalesce: true,
            batch_queue_limit: usize::MAX,
            pressure_capacity: 0,
            deadline: None,
            refresh_retries: 2,
            refresh_backoff_base: 1,
            prefer_incremental: true,
            refold_bound: 0.05,
        }
    }
}

impl ServeConfig {
    /// Overrides the batch concurrency cap (at least 1).
    pub fn with_batch_concurrency(mut self, n: usize) -> Self {
        self.batch_concurrency = n.max(1);
        self
    }

    /// Enables or disables request coalescing.
    pub fn with_coalesce(mut self, enabled: bool) -> Self {
        self.coalesce = enabled;
        self
    }

    /// Bounds batch-class work in flight; excess is shed.
    pub fn with_batch_queue_limit(mut self, n: usize) -> Self {
        self.batch_queue_limit = n;
        self
    }

    /// Sets the in-flight capacity the overload ladder is scaled against
    /// (`0` disables the ladder).
    pub fn with_pressure_capacity(mut self, n: usize) -> Self {
        self.pressure_capacity = n;
        self
    }

    /// Sets the server-wide deadline stamped into every pass budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets how many mine/persist attempts a maintenance pass spends per
    /// refresh candidate (at least 1).
    pub fn with_refresh_retries(mut self, n: usize) -> Self {
        self.refresh_retries = n.max(1);
        self
    }

    /// Sets the refresh backoff base, in maintenance passes (at least 1).
    pub fn with_refresh_backoff_base(mut self, base: u64) -> Self {
        self.refresh_backoff_base = base.max(1);
        self
    }

    /// Enables or disables the incremental-fold fast path in maintenance.
    pub fn with_prefer_incremental(mut self, enabled: bool) -> Self {
        self.prefer_incremental = enabled;
        self
    }

    /// Sets the confidence-delta bound past which a fold escalates to a
    /// full re-mine (clamped to be non-negative).
    pub fn with_refold_bound(mut self, bound: f64) -> Self {
        self.refold_bound = bound.max(0.0);
        self
    }
}

/// Why the server refused or failed a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No tenant with this name is registered.
    UnknownTenant {
        /// The name presented at admission.
        name: String,
    },
    /// The query failed admission validation against the global schema.
    MalformedQuery {
        /// What was wrong, for diagnostics.
        reason: String,
    },
    /// Batch-class work refused because the class's in-flight bound
    /// ([`ServeConfig::batch_queue_limit`]) was already full. No source
    /// was contacted; retry after backing off.
    Shed {
        /// Batch requests in flight when this one was refused
        /// (including it).
        in_flight: usize,
        /// The configured bound it exceeded.
        limit: usize,
    },
    /// The stamped deadline (the stricter of the tenant's and
    /// [`ServeConfig::deadline`]) could no longer fund a single mediation
    /// attempt, so the request was refused at admission — the cheapest
    /// possible layer.
    DeadlineRefused,
    /// The mediation pass itself failed.
    Source(SourceError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant { name } => write!(f, "unknown tenant `{name}`"),
            ServeError::MalformedQuery { reason } => write!(f, "malformed query: {reason}"),
            ServeError::Shed { in_flight, limit } => write!(
                f,
                "shed: {in_flight} batch requests in flight exceed the limit of {limit}"
            ),
            ServeError::DeadlineRefused => {
                write!(f, "deadline refused: budget cannot fund a single mediation attempt")
            }
            ServeError::Source(e) => write!(f, "mediation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Locks a mutex, recovering from poisoning: every guarded state here is
/// valid at each instant, so a panicking peer must not wedge the server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Counting gate bounding concurrent batch-class passes.
#[derive(Debug, Default)]
struct BatchGate {
    used: Mutex<usize>,
    freed: Condvar,
}

impl BatchGate {
    fn acquire(&self, cap: usize) {
        let mut used = lock(&self.used);
        while *used >= cap {
            used = self.freed.wait(used).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *used += 1;
    }

    fn release(&self) {
        *lock(&self.used) -= 1;
        self.freed.notify_one();
    }
}

/// Per-candidate refresh backoff: how many consecutive maintenance passes
/// have failed for the member, and the first pass it becomes eligible
/// again.
#[derive(Debug, Clone, Copy, Default)]
struct RefreshBackoff {
    failures: u32,
    next_eligible: u64,
}

/// The maintenance side of the server: the logical maintenance-pass
/// counter and each failing candidate's backoff state. Guarded by one
/// mutex — maintenance passes are expected to be driven by one background
/// thread, but nothing breaks if several run concurrently (each candidate
/// settles under the lock).
#[derive(Debug, Default)]
struct MaintenanceState {
    pass: u64,
    backoff: BTreeMap<String, RefreshBackoff>,
}

/// What one [`QpiadServer::maintain`] pass did, per candidate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintenanceReport {
    /// The maintenance pass this report describes.
    pub pass: u64,
    /// Members whose knowledge was re-mined, persisted, and published
    /// via the full path (probe → TANE → classifiers from scratch).
    pub refreshed: Vec<String>,
    /// Members whose knowledge was updated by an incremental fold of
    /// streamed validated rows (delta count updates; no full re-mine),
    /// persisted, and published.
    pub folded: Vec<String>,
    /// Members whose refresh failed every in-pass attempt (old knowledge
    /// keeps serving; the candidate backs off), with the last error.
    pub failed: Vec<(String, SourceError)>,
    /// Members skipped this pass because their backoff window from an
    /// earlier failed pass has not elapsed yet.
    pub deferred: Vec<String>,
    /// Extra attempts spent after first in-pass failures, summed over all
    /// candidates.
    pub retries: usize,
}

impl MaintenanceReport {
    /// `true` iff the pass had nothing to do (no candidates at all).
    pub fn is_idle(&self) -> bool {
        self.refreshed.is_empty()
            && self.folded.is_empty()
            && self.failed.is_empty()
            && self.deferred.is_empty()
    }
}

/// A long-lived, thread-safe serving front end over a [`MediatorNetwork`].
pub struct QpiadServer<'a> {
    network: MediatorNetwork<'a>,
    config: ServeConfig,
    tenants: Mutex<HashMap<String, Tenant>>,
    flights: Singleflight,
    batch_gate: BatchGate,
    metrics: MetricCells,
    maintenance: Mutex<MaintenanceState>,
    /// Where [`Self::maintain`] persists refreshed knowledge before
    /// publishing it. `None` — refreshes publish in-memory only.
    store: Option<(KnowledgeStore, MiningConfig)>,
}

impl<'a> QpiadServer<'a> {
    /// Wraps `network` for serving. If the network carries no
    /// [`MediationClock`] yet, a wall clock is attached, so no pass served
    /// here ever consults the process-global time shim.
    pub fn new(network: MediatorNetwork<'a>) -> Self {
        let network = if network.clock().is_none() {
            network.with_clock(MediationClock::wall())
        } else {
            network
        };
        QpiadServer {
            network,
            config: ServeConfig::default(),
            tenants: Mutex::new(HashMap::new()),
            flights: Singleflight::default(),
            batch_gate: BatchGate::default(),
            metrics: MetricCells::default(),
            maintenance: Mutex::new(MaintenanceState::default()),
            store: None,
        }
    }

    /// Overrides the serving knobs.
    pub fn with_config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches the durable [`KnowledgeStore`] (and the mining config its
    /// snapshots are captured under) that [`Self::maintain`] persists
    /// refreshed knowledge to *before* publishing it. Without a store,
    /// refreshes publish in-memory only.
    pub fn with_knowledge_store(mut self, store: KnowledgeStore, config: MiningConfig) -> Self {
        self.store = Some((store, config));
        self
    }

    /// Registers (or replaces) a tenant.
    pub fn register(&self, tenant: Tenant) {
        lock(&self.tenants).insert(tenant.name().to_string(), tenant);
    }

    /// The wrapped network (read-only: meters, EXPLAIN, epochs).
    pub fn network(&self) -> &MediatorNetwork<'a> {
        &self.network
    }

    /// Runs one knowledge-maintenance pass **under live traffic**: drains
    /// the network's refresh candidates (drift verdicts plus contained
    /// knowledge-load failures). Each candidate is first offered the
    /// incremental path (when [`ServeConfig::prefer_incremental`] is on):
    /// its streamed validated rows are folded into the existing knowledge
    /// as delta count updates and published without a TANE re-run, unless
    /// the fold's worst confidence shift crosses
    /// [`ServeConfig::refold_bound`]. Candidates the fold cannot serve
    /// fall back to a full re-mine through `mine`, with bounded in-pass
    /// retries ([`ServeConfig::refresh_retries`]) and cross-pass
    /// exponential backoff ([`ServeConfig::refresh_backoff_base`]).
    ///
    /// Each successful candidate is persisted to the attached
    /// [`KnowledgeStore`] *first* (crash-safe: journal + temp-file +
    /// rename) and then published atomically into the member's knowledge
    /// cell — in-flight query passes keep their pinned generation, later
    /// passes see the new one whole, and the bumped epoch orphans the
    /// member's cached plans. A candidate whose every attempt fails keeps
    /// its old generation serving (a failed refresh can never produce a
    /// torn or empty answer) and is deferred for a growing number of
    /// passes.
    ///
    /// `mine` receives the candidate's name and its source; it typically
    /// re-probes the source and re-mines (or incrementally refreshes) its
    /// statistics. Takes `&self`: maintenance runs concurrently with
    /// [`Self::query`] callers.
    pub fn maintain(
        &self,
        mine: impl Fn(&str, &dyn AutonomousSource) -> Result<SourceStats, SourceError>,
    ) -> MaintenanceReport {
        let pass = {
            let mut state = lock(&self.maintenance);
            state.pass += 1;
            state.pass
        };
        self.maintain_pass(pass, mine)
    }

    /// [`Self::maintain`] at an explicit pass number — deterministic
    /// harnesses drive the maintenance clock from their own schedule. The
    /// internal pass counter is advanced to `pass` (never rewound), so
    /// interleaving with [`Self::maintain`] stays monotonic.
    pub fn maintain_at(
        &self,
        pass: u64,
        mine: impl Fn(&str, &dyn AutonomousSource) -> Result<SourceStats, SourceError>,
    ) -> MaintenanceReport {
        {
            let mut state = lock(&self.maintenance);
            state.pass = state.pass.max(pass);
        }
        self.maintain_pass(pass, mine)
    }

    fn maintain_pass(
        &self,
        pass: u64,
        mine: impl Fn(&str, &dyn AutonomousSource) -> Result<SourceStats, SourceError>,
    ) -> MaintenanceReport {
        let mut report = MaintenanceReport { pass, ..MaintenanceReport::default() };
        let mining_config =
            self.store.as_ref().map(|(_, c)| c.clone()).unwrap_or_default();
        // Candidates come back in name order, so a pass's work list — and
        // with a deterministic `mine`, its outcome — is reproducible.
        for name in self.network.refresh_candidates() {
            let eligible = {
                let state = lock(&self.maintenance);
                state.backoff.get(&name).is_none_or(|b| pass >= b.next_eligible)
            };
            if !eligible {
                report.deferred.push(name);
                continue;
            }
            // Cheap path first: fold the member's streamed validated rows
            // into its existing knowledge. Any reason the fold cannot or
            // must not publish — no stream, no statistics, confidence
            // drift past the bound, a persist fault — falls through to
            // the full re-mine below.
            if self.config.prefer_incremental {
                if let Ok(MemberFold::Folded { .. }) = self.network.refresh_member_incremental_at(
                    &name,
                    &mining_config,
                    self.store.as_ref().map(|(s, c)| (s, c)),
                    self.config.refold_bound,
                    Some(pass),
                ) {
                    lock(&self.maintenance).backoff.remove(&name);
                    MetricCells::bump(&self.metrics.refresh_success);
                    MetricCells::bump(&self.metrics.refresh_incremental);
                    self.metrics.last_refresh_pass.fetch_max(pass, Ordering::Relaxed);
                    report.folded.push(name);
                    continue;
                }
            }
            let mut last_err = None;
            for attempt in 0..self.config.refresh_retries.max(1) {
                if attempt > 0 {
                    MetricCells::bump(&self.metrics.refresh_retries);
                    report.retries += 1;
                }
                match self.network.refresh_member_at(
                    &name,
                    |src| mine(&name, src),
                    self.store.as_ref().map(|(s, c)| (s, c)),
                    Some(pass),
                ) {
                    Ok(()) => {
                        last_err = None;
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            match last_err {
                None => {
                    lock(&self.maintenance).backoff.remove(&name);
                    MetricCells::bump(&self.metrics.refresh_success);
                    MetricCells::bump(&self.metrics.refresh_full);
                    self.metrics.last_refresh_pass.fetch_max(pass, Ordering::Relaxed);
                    report.refreshed.push(name);
                }
                Some(e) => {
                    {
                        let mut state = lock(&self.maintenance);
                        let b = state.backoff.entry(name.clone()).or_default();
                        b.failures += 1;
                        // Exponential in failed passes, capped at 64 so a
                        // long outage cannot exile a member forever.
                        let shift = u64::from(b.failures - 1).min(6);
                        let wait = (self.config.refresh_backoff_base.max(1) << shift).min(64);
                        b.next_eligible = pass + wait;
                    }
                    MetricCells::bump(&self.metrics.refresh_failure);
                    report.failed.push((name, e));
                }
            }
        }
        report
    }

    /// Serves one query for `tenant`: admission, overload control,
    /// coalescing, scheduling, then a budgeted mediation pass funded from
    /// the tenant's [`QueryBudget`]. The ladder rung is derived from live
    /// load; use [`Self::query_under`] to pin it.
    pub fn query(&self, tenant: &str, query: &SelectQuery) -> Result<Arc<NetworkAnswer>, ServeError> {
        self.serve(tenant, query, None)
    }

    /// [`Self::query`] at an explicitly pinned [`PressureLevel`],
    /// bypassing load derivation. Deterministic harnesses use this to
    /// drive the ladder from a schedule instead of live thread timing.
    pub fn query_under(
        &self,
        tenant: &str,
        query: &SelectQuery,
        pressure: PressureLevel,
    ) -> Result<Arc<NetworkAnswer>, ServeError> {
        self.serve(tenant, query, Some(pressure))
    }

    /// The overload-ladder rung the server is at right now, derived from
    /// the live in-flight gauge against [`ServeConfig::pressure_capacity`].
    pub fn pressure(&self) -> PressureLevel {
        PressureLevel::from_load(
            self.metrics.in_flight.load(Ordering::Relaxed),
            self.config.pressure_capacity,
        )
    }

    fn serve(
        &self,
        tenant: &str,
        query: &SelectQuery,
        pinned: Option<PressureLevel>,
    ) -> Result<Arc<NetworkAnswer>, ServeError> {
        let spec = match lock(&self.tenants).get(tenant) {
            Some(t) => t.clone(),
            None => {
                MetricCells::bump(&self.metrics.rejected);
                return Err(ServeError::UnknownTenant { name: tenant.to_string() });
            }
        };
        if let Err(reason) = self.validate(query) {
            MetricCells::bump(&self.metrics.rejected);
            return Err(ServeError::MalformedQuery { reason });
        }
        MetricCells::bump(&self.metrics.admitted);
        MetricCells::bump(match spec.class() {
            TenantClass::Interactive => &self.metrics.interactive,
            TenantClass::Batch => &self.metrics.batch,
        });
        // From here every path must settle exactly once; the guard charges
        // an unsettled unwind to `errors` and keeps the gauges exact.
        let guard = RequestGuard::begin(&self.metrics, spec.class());

        // Bounded admission: batch work past the class limit is shed
        // before any source fan-out. Interactive work is never shed — it
        // descends the degradation ladder below instead.
        if spec.class() == TenantClass::Batch {
            let live = self.metrics.batch_live.load(Ordering::Relaxed);
            if live > self.config.batch_queue_limit {
                MetricCells::bump(&self.metrics.shed);
                guard.settle();
                return Err(ServeError::Shed { in_flight: live, limit: self.config.batch_queue_limit });
            }
        }

        let pressure = pinned.unwrap_or_else(|| self.pressure());

        // Deadline propagation: the stricter of the tenant's deadline and
        // the server-wide one funds the pass. A budget that cannot fund
        // one attempt is refused here — nothing cheaper exists.
        let mut budget = spec.budget();
        if let Some(deadline) = self.config.deadline {
            budget.deadline = budget.deadline.min(deadline);
        }
        if budget.is_exhausted() {
            MetricCells::bump(&self.metrics.deadline_refused);
            guard.settle();
            return Err(ServeError::DeadlineRefused);
        }

        let result = if self.config.coalesce {
            let key = FlightKey {
                query: query.clone(),
                epoch: self.network.knowledge_epoch(),
                budget: budget.into(),
                pressure,
            };
            match self.flights.join(
                &key,
                || MetricCells::bump(&self.metrics.coalesce_waiters),
                || MetricCells::lower_gauge(&self.metrics.coalesce_waiters),
            ) {
                Role::Follower(result) => {
                    MetricCells::bump(&self.metrics.coalesced);
                    result
                }
                Role::Leader(flight) => self.lead(&key, &flight, &spec, query, budget, pressure),
            }
        } else {
            MetricCells::bump(&self.metrics.leaders);
            self.execute(&spec, query, budget, pressure)
        };

        match result {
            Ok(answer) => {
                MetricCells::bump(&self.metrics.completed);
                guard.settle();
                Ok(answer)
            }
            Err(e) => {
                MetricCells::bump(&self.metrics.errors);
                guard.settle();
                Err(ServeError::Source(e))
            }
        }
    }

    /// Renders the network's EXPLAIN for a validated query.
    pub fn explain(&self, query: &SelectQuery) -> Result<String, ServeError> {
        self.validate(query).map_err(|reason| ServeError::MalformedQuery { reason })?;
        Ok(self.network.explain(query))
    }

    /// Renders EXPLAIN as it would plan under `pressure`: the overload
    /// header plus every rewrite the ladder would shed, with its recall
    /// mass, marked `shed by overload ladder`.
    pub fn explain_under(
        &self,
        query: &SelectQuery,
        pressure: PressureLevel,
    ) -> Result<String, ServeError> {
        self.validate(query).map_err(|reason| ServeError::MalformedQuery { reason })?;
        Ok(self.network.explain_under(query, pressure))
    }

    /// A snapshot of the serving counters, every member's meter, and the
    /// knowledge-lifecycle state (per-member epochs, refresh outcomes,
    /// pending refresh queue depth).
    pub fn metrics(&self) -> ServeMetrics {
        self.metrics.snapshot(
            self.network.member_meters(),
            self.network.member_epochs(),
            self.network.refresh_candidates().len(),
            self.network.drift().map(|d| d.stream_stats()).unwrap_or_default(),
        )
    }

    /// Number of mediation passes currently in flight in the coalescing
    /// layer (distinct keys being led right now).
    pub fn inflight(&self) -> usize {
        self.flights.inflight_len()
    }

    /// Runs the pass as the group's leader and publishes to every
    /// follower; a panic along the way publishes an
    /// [`SourceError::Internal`] instead of wedging them.
    fn lead(
        &self,
        key: &FlightKey,
        flight: &Flight,
        spec: &Tenant,
        query: &SelectQuery,
        budget: QueryBudget,
        pressure: PressureLevel,
    ) -> SharedAnswer {
        MetricCells::bump(&self.metrics.leaders);
        let mut publish = LeaderPublish { flights: &self.flights, key, flight, published: false };
        let result = self.execute(spec, query, budget, pressure);
        publish.publish(result)
    }

    /// One scheduled, budgeted mediation pass at the given ladder rung.
    fn execute(
        &self,
        spec: &Tenant,
        query: &SelectQuery,
        budget: QueryBudget,
        pressure: PressureLevel,
    ) -> SharedAnswer {
        let _permit = (spec.class() == TenantClass::Batch).then(|| {
            self.batch_gate.acquire(self.config.batch_concurrency);
            MetricCells::raise_gauge(
                &self.metrics.batch_in_flight,
                &self.metrics.batch_in_flight_peak,
            );
            BatchPermit { gate: &self.batch_gate, metrics: &self.metrics }
        });
        self.network.answer_under(query, budget, pressure).map(Arc::new)
    }

    /// Admission-time validation: every constrained attribute must exist
    /// in the global schema. Member-local concerns (unsupported
    /// attributes, null binding) are *not* rejected here — the mediator
    /// degrades those per member — but an attribute outside the global
    /// schema can satisfy no source and would index out of tuple bounds.
    fn validate(&self, query: &SelectQuery) -> Result<(), String> {
        let global = self.network.global_schema();
        for p in query.predicates() {
            if p.attr.index() >= global.arity() {
                return Err(format!(
                    "attribute {} out of range for global schema `{}` (arity {})",
                    p.attr,
                    global.name(),
                    global.arity()
                ));
            }
        }
        Ok(())
    }
}

/// Publishes the leader's result on the happy path, and an `Internal`
/// error if the leader unwinds first — followers must always wake.
struct LeaderPublish<'s> {
    flights: &'s Singleflight,
    key: &'s FlightKey,
    flight: &'s Flight,
    published: bool,
}

impl LeaderPublish<'_> {
    fn publish(&mut self, result: SharedAnswer) -> SharedAnswer {
        self.flights.complete(self.key, self.flight, result.clone());
        self.published = true;
        result
    }
}

impl Drop for LeaderPublish<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.flights.complete(
                self.key,
                self.flight,
                Err(SourceError::Internal {
                    message: "mediation pass aborted before publishing its answer".into(),
                }),
            );
        }
    }
}

/// RAII batch slot: releases the gate and lowers the gauge on drop (also
/// on unwind, so a panicking batch pass cannot leak its slot).
struct BatchPermit<'s> {
    gate: &'s BatchGate,
    metrics: &'s MetricCells,
}

impl Drop for BatchPermit<'_> {
    fn drop(&mut self) {
        MetricCells::lower_gauge(&self.metrics.batch_in_flight);
        self.gate.release();
    }
}

/// Accounting guard for one admitted request: raises the live gauges at
/// admission, lowers them on every exit, and — if the request unwinds
/// before settling into completed/shed/deadline_refused/errors — charges
/// it to `errors`, so the conservation equation survives panics.
struct RequestGuard<'s> {
    metrics: &'s MetricCells,
    batch: bool,
    settled: bool,
}

impl<'s> RequestGuard<'s> {
    fn begin(metrics: &'s MetricCells, class: TenantClass) -> Self {
        MetricCells::raise_gauge(&metrics.in_flight, &metrics.in_flight_peak);
        let batch = class == TenantClass::Batch;
        if batch {
            metrics.batch_live.fetch_add(1, Ordering::Relaxed);
        }
        RequestGuard { metrics, batch, settled: false }
    }

    /// Marks the request's outcome as already counted; the drop that
    /// follows only lowers the gauges.
    fn settle(mut self) {
        self.settled = true;
    }
}

impl Drop for RequestGuard<'_> {
    fn drop(&mut self) {
        if !self.settled {
            MetricCells::bump(&self.metrics.errors);
        }
        if self.batch {
            MetricCells::lower_gauge(&self.metrics.batch_live);
        }
        MetricCells::lower_gauge(&self.metrics.in_flight);
    }
}
