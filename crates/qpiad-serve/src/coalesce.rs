//! In-flight request coalescing (singleflight).
//!
//! Repeated query templates are QPIAD's dominant workload, and a mediation
//! pass is a pure function of (query, knowledge version, budget): two
//! passes over the same key plan the same rewrites, issue the same source
//! queries, and assemble the same answer. So when N callers ask for the
//! same key *while a pass is already in flight*, running N passes buys
//! nothing but N× source cost. This module lets the first caller (the
//! **leader**) run the pass while the rest (**followers**) park on a
//! condvar and share the leader's `Arc`'d answer — the coalesced group
//! charges its source fan-out exactly once.
//!
//! Keying on the [`knowledge epoch`](qpiad_core::network::MediatorNetwork::knowledge_epoch)
//! keeps coalescing sound across re-mining: a refresh bumps the epoch, so
//! a caller racing a knowledge swap can only join a flight planned against
//! the same knowledge it would have used itself. The budget is part of the
//! key for the same reason — different budgets can admit different
//! rewrites, hence different answers.
//!
//! # Poisoning and leader crashes
//!
//! All waiting uses `std::sync::Condvar`; lock poisoning is explicitly
//! recovered (the guarded state is a plain `Option`, valid at every
//! instant), and a leader that unwinds without publishing a result is
//! caught by a drop guard in the server, which publishes an
//! [`Internal`](qpiad_db::SourceError::Internal) error so followers wake
//! instead of waiting forever.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use qpiad_core::network::NetworkAnswer;
use qpiad_db::health::PressureLevel;
use qpiad_db::{QueryBudget, SelectQuery, SourceError};

/// The result one flight publishes to every caller in its group.
pub(crate) type SharedAnswer = Result<Arc<NetworkAnswer>, SourceError>;

/// Locks a mutex, recovering from poisoning: the guarded state is valid at
/// every instant, so a panicking peer must not take the server down.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Identity of one coalescable unit of work.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct FlightKey {
    pub query: SelectQuery,
    /// [`MediatorNetwork::knowledge_epoch`] at admission time.
    ///
    /// [`MediatorNetwork::knowledge_epoch`]: qpiad_core::network::MediatorNetwork::knowledge_epoch
    pub epoch: u64,
    /// The pass budget, flattened to hashable integers.
    pub budget: BudgetKey,
    /// The overload-ladder rung the pass executes under. Different rungs
    /// clamp different rewrite prefixes — their answers differ, so they
    /// must not coalesce.
    pub pressure: PressureLevel,
}

/// [`QueryBudget`] flattened for hashing (`Duration` as nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BudgetKey {
    deadline_nanos: u128,
    attempts: u32,
    query_cost_nanos: u128,
}

impl From<QueryBudget> for BudgetKey {
    fn from(b: QueryBudget) -> Self {
        BudgetKey {
            deadline_nanos: b.deadline.as_nanos(),
            attempts: b.attempts,
            query_cost_nanos: b.query_cost.as_nanos(),
        }
    }
}

/// One in-flight pass: the slot its result is published into, and the
/// condvar followers park on.
#[derive(Debug, Default)]
pub(crate) struct Flight {
    slot: Mutex<Option<SharedAnswer>>,
    done: Condvar,
}

impl Flight {
    /// Parks until the leader publishes, then returns a clone of the
    /// shared result.
    fn wait(&self) -> SharedAnswer {
        let mut slot = lock(&self.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            // A timed wait guards against a lost wakeup ever wedging a
            // follower; the loop re-checks the slot either way.
            let (guard, _) = self
                .done
                .wait_timeout(slot, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Publishes the result and wakes every follower.
    fn publish(&self, result: SharedAnswer) {
        *lock(&self.slot) = Some(result);
        self.done.notify_all();
    }
}

/// What [`Singleflight::join`] made of a caller.
pub(crate) enum Role {
    /// First in: run the pass, then [`Singleflight::complete`] the key.
    Leader(Arc<Flight>),
    /// Coalesced onto an in-flight pass; the shared result is ready.
    Follower(SharedAnswer),
}

/// The in-flight map: at most one live [`Flight`] per [`FlightKey`].
#[derive(Debug, Default)]
pub(crate) struct Singleflight {
    inflight: Mutex<HashMap<FlightKey, Arc<Flight>>>,
}

impl Singleflight {
    /// Joins the flight for `key`: the first caller becomes the leader
    /// (and must later call [`Self::complete`]); every caller arriving
    /// while that flight is live blocks until the result is published and
    /// returns it as a follower. `on_wait` runs just before a follower
    /// parks (and is balanced by `on_wake` after it returns) so the server
    /// can keep a live waiter gauge.
    pub(crate) fn join(
        &self,
        key: &FlightKey,
        on_wait: impl FnOnce(),
        on_wake: impl FnOnce(),
    ) -> Role {
        let flight = {
            let mut map = lock(&self.inflight);
            match map.get(key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight::default());
                    map.insert(key.clone(), Arc::clone(&flight));
                    return Role::Leader(flight);
                }
            }
        };
        on_wait();
        let result = flight.wait();
        on_wake();
        Role::Follower(result)
    }

    /// Publishes the leader's result and retires the key. Followers
    /// already parked receive this result; callers arriving after the
    /// removal start a fresh flight (the answer may be stale the moment
    /// it is published — coalescing only spans the in-flight window).
    pub(crate) fn complete(&self, key: &FlightKey, flight: &Flight, result: SharedAnswer) {
        lock(&self.inflight).remove(key);
        flight.publish(result);
    }

    /// Number of live flights (diagnostics).
    pub(crate) fn inflight_len(&self) -> usize {
        lock(&self.inflight).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_db::{AttrId, Predicate};

    fn key(marker: &str) -> FlightKey {
        FlightKey {
            query: SelectQuery::new(vec![Predicate::eq(AttrId(0), marker)]),
            epoch: 0,
            budget: QueryBudget::unlimited().into(),
            pressure: PressureLevel::Normal,
        }
    }

    #[test]
    fn leader_then_followers_share_one_result() {
        let sf = Arc::new(Singleflight::default());
        let k = key("Convt");
        let Role::Leader(flight) = sf.join(&k, || {}, || {}) else {
            panic!("first caller must lead");
        };
        assert_eq!(sf.inflight_len(), 1);

        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let (sf, k) = (Arc::clone(&sf), k.clone());
                std::thread::spawn(move || match sf.join(&k, || {}, || {}) {
                    Role::Follower(result) => result,
                    Role::Leader(_) => panic!("in-flight key must coalesce"),
                })
            })
            .collect();

        // Give followers a moment to park, then publish.
        std::thread::sleep(Duration::from_millis(20));
        sf.complete(&k, &flight, Err(SourceError::CircuitOpen));
        for w in waiters {
            assert_eq!(w.join().unwrap().unwrap_err(), SourceError::CircuitOpen);
        }
        assert_eq!(sf.inflight_len(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf = Singleflight::default();
        let (a, b) = (key("Convt"), key("Sedan"));
        assert!(matches!(sf.join(&a, || {}, || {}), Role::Leader(_)));
        assert!(matches!(sf.join(&b, || {}, || {}), Role::Leader(_)));
        // Same template, different epoch: knowledge moved, no coalescing.
        let refreshed = FlightKey { epoch: a.epoch + 1, ..a.clone() };
        assert!(matches!(sf.join(&refreshed, || {}, || {}), Role::Leader(_)));
        // Same template, different ladder rung: clamped plans answer
        // differently, so pressure is part of the key.
        let pressured = FlightKey { pressure: PressureLevel::High, ..a.clone() };
        assert!(matches!(sf.join(&pressured, || {}, || {}), Role::Leader(_)));
        assert_eq!(sf.inflight_len(), 4);
    }

    #[test]
    fn completed_key_admits_a_fresh_leader() {
        let sf = Singleflight::default();
        let k = key("Convt");
        let Role::Leader(flight) = sf.join(&k, || {}, || {}) else { panic!() };
        sf.complete(&k, &flight, Err(SourceError::BudgetExhausted));
        assert!(matches!(sf.join(&k, || {}, || {}), Role::Leader(_)));
    }
}
