//! Tenancy: who is asking, and how much mediation work they may buy.
//!
//! QPIAD's mediator absorbs two very different workloads at once: a human
//! waiting on a result page (latency-sensitive, shallow retry schedules)
//! and offline consumers re-running query batteries against refreshed
//! knowledge (throughput-oriented, happy to queue). A [`Tenant`] names the
//! caller, assigns it a [`TenantClass`], and pins the [`QueryBudget`]
//! every one of its mediation passes is funded from — so a flood of batch
//! work can never spend an interactive caller's deadline, and the server
//! can cap how many batch passes run concurrently without touching
//! interactive admission.

use qpiad_db::QueryBudget;

/// The two service classes the server schedules between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantClass {
    /// Latency-sensitive callers: admitted immediately, never queued
    /// behind batch work.
    Interactive,
    /// Throughput-oriented callers: at most
    /// [`ServeConfig::batch_concurrency`](crate::ServeConfig::batch_concurrency)
    /// of their passes execute at once; the rest queue.
    Batch,
}

impl TenantClass {
    /// Human-readable label (metrics, diagnostics).
    pub fn label(&self) -> &'static str {
        match self {
            TenantClass::Interactive => "interactive",
            TenantClass::Batch => "batch",
        }
    }
}

/// A registered caller: name, service class, and the per-query
/// [`QueryBudget`] its passes are funded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tenant {
    name: String,
    class: TenantClass,
    budget: QueryBudget,
}

impl Tenant {
    /// An interactive tenant with an unlimited per-query budget.
    pub fn interactive(name: impl Into<String>) -> Self {
        Tenant { name: name.into(), class: TenantClass::Interactive, budget: QueryBudget::unlimited() }
    }

    /// A batch tenant with an unlimited per-query budget.
    pub fn batch(name: impl Into<String>) -> Self {
        Tenant { name: name.into(), class: TenantClass::Batch, budget: QueryBudget::unlimited() }
    }

    /// Overrides the per-query budget every pass for this tenant is funded
    /// from. Each pass receives a fresh copy, so one expensive query never
    /// drains a later one.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's service class.
    pub fn class(&self) -> TenantClass {
        self.class
    }

    /// The per-query budget.
    pub fn budget(&self) -> QueryBudget {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn builders_pin_class_and_budget() {
        let t = Tenant::interactive("alice");
        assert_eq!(t.class(), TenantClass::Interactive);
        assert_eq!(t.budget(), QueryBudget::unlimited());

        let b = Tenant::batch("nightly")
            .with_budget(QueryBudget::unlimited().with_deadline(Duration::from_millis(50)));
        assert_eq!(b.class(), TenantClass::Batch);
        assert_eq!(b.budget().deadline, Duration::from_millis(50));
        assert_eq!(TenantClass::Batch.label(), "batch");
        assert_eq!(TenantClass::Interactive.label(), "interactive");
    }
}
