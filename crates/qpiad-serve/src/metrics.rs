//! The server's metrics surface.
//!
//! Serving counters live in lock-free atomic cells ([`MetricCells`],
//! crate-private) and are exported as a plain [`ServeMetrics`] snapshot
//! together with every member source's [`SourceMeter`] — one call captures
//! admission, coalescing, tenancy scheduling, and per-source mediation
//! cost. Snapshots are per-field consistent (a reader racing a live query
//! may see `admitted` bumped before `leaders`); quiesced reads are exact.

use std::sync::atomic::{AtomicUsize, Ordering};

use qpiad_db::SourceMeter;

/// Lock-free accumulation cells behind [`ServeMetrics`].
#[derive(Debug, Default)]
pub(crate) struct MetricCells {
    pub admitted: AtomicUsize,
    pub rejected: AtomicUsize,
    pub leaders: AtomicUsize,
    pub coalesced: AtomicUsize,
    pub coalesce_waiters: AtomicUsize,
    pub interactive: AtomicUsize,
    pub batch: AtomicUsize,
    pub batch_in_flight: AtomicUsize,
    pub batch_in_flight_peak: AtomicUsize,
    pub errors: AtomicUsize,
}

impl MetricCells {
    pub(crate) fn bump(cell: &AtomicUsize) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises a gauge and folds the new value into its peak cell.
    pub(crate) fn raise_gauge(gauge: &AtomicUsize, peak: &AtomicUsize) {
        let now = gauge.fetch_add(1, Ordering::Relaxed) + 1;
        peak.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn lower_gauge(gauge: &AtomicUsize) {
        gauge.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, per_source: Vec<(String, SourceMeter)>) -> ServeMetrics {
        ServeMetrics {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            leaders: self.leaders.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            coalesce_waiters: self.coalesce_waiters.load(Ordering::Relaxed),
            interactive: self.interactive.load(Ordering::Relaxed),
            batch: self.batch.load(Ordering::Relaxed),
            batch_in_flight_peak: self.batch_in_flight_peak.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            per_source,
        }
    }
}

/// A point-in-time snapshot of the server's counters plus every member
/// source's access meter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Requests admitted past tenant lookup and query validation.
    pub admitted: usize,
    /// Requests refused at admission (unknown tenant, malformed query).
    pub rejected: usize,
    /// Admitted requests that ran a mediation pass themselves.
    pub leaders: usize,
    /// Admitted requests served by coalescing onto an in-flight pass —
    /// each shared its leader's single source fan-out.
    pub coalesced: usize,
    /// Followers currently parked on an in-flight pass (live gauge).
    pub coalesce_waiters: usize,
    /// Admitted requests from interactive-class tenants.
    pub interactive: usize,
    /// Admitted requests from batch-class tenants.
    pub batch: usize,
    /// Most batch-class passes ever executing at once — bounded by
    /// [`ServeConfig::batch_concurrency`](crate::ServeConfig::batch_concurrency).
    pub batch_in_flight_peak: usize,
    /// Requests whose mediation pass returned an error.
    pub errors: usize,
    /// Every member source's meter, in registration order.
    pub per_source: Vec<(String, SourceMeter)>,
}

impl ServeMetrics {
    /// Fraction of admitted requests served by coalescing, in `[0, 1]`.
    pub fn coalesce_hit_rate(&self) -> f64 {
        if self.admitted == 0 {
            return 0.0;
        }
        self.coalesced as f64 / self.admitted as f64
    }

    /// Total queries issued against all member sources.
    pub fn source_queries(&self) -> usize {
        self.per_source.iter().map(|(_, m)| m.queries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_cells_and_rates_divide_safely() {
        let cells = MetricCells::default();
        assert_eq!(cells.snapshot(Vec::new()).coalesce_hit_rate(), 0.0);
        for _ in 0..4 {
            MetricCells::bump(&cells.admitted);
        }
        MetricCells::bump(&cells.leaders);
        for _ in 0..3 {
            MetricCells::bump(&cells.coalesced);
        }
        MetricCells::raise_gauge(&cells.batch_in_flight, &cells.batch_in_flight_peak);
        MetricCells::raise_gauge(&cells.batch_in_flight, &cells.batch_in_flight_peak);
        MetricCells::lower_gauge(&cells.batch_in_flight);
        let m = cells.snapshot(vec![("s".into(), SourceMeter { queries: 7, ..Default::default() })]);
        assert_eq!(m.admitted, 4);
        assert_eq!(m.leaders, 1);
        assert_eq!(m.coalesced, 3);
        assert_eq!(m.coalesce_hit_rate(), 0.75);
        assert_eq!(m.batch_in_flight_peak, 2);
        assert_eq!(m.source_queries(), 7);
    }
}
