//! The server's metrics surface.
//!
//! Serving counters live in lock-free atomic cells ([`MetricCells`],
//! crate-private) and are exported as a plain [`ServeMetrics`] snapshot
//! together with every member source's [`SourceMeter`] — one call captures
//! admission, coalescing, tenancy scheduling, overload shedding, and
//! per-source mediation cost. Snapshots are per-field consistent (a reader
//! racing a live query may see `admitted` bumped before `leaders`);
//! quiesced reads are exact.
//!
//! Quiesced, the counters obey the conservation equation every admitted
//! request must settle exactly once:
//!
//! ```text
//! admitted == completed + shed + deadline_refused + errors
//! ```
//!
//! checked by [`ServeMetrics::conserves`]. The server's request guard
//! enforces the equation even on panic unwinds: a pass that dies before
//! settling is charged to `errors`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use qpiad_db::SourceMeter;
use qpiad_learn::StreamStats;

/// Lock-free accumulation cells behind [`ServeMetrics`].
#[derive(Debug, Default)]
pub(crate) struct MetricCells {
    pub admitted: AtomicUsize,
    pub rejected: AtomicUsize,
    pub completed: AtomicUsize,
    pub shed: AtomicUsize,
    pub deadline_refused: AtomicUsize,
    pub leaders: AtomicUsize,
    pub coalesced: AtomicUsize,
    pub coalesce_waiters: AtomicUsize,
    pub interactive: AtomicUsize,
    pub batch: AtomicUsize,
    pub in_flight: AtomicUsize,
    pub in_flight_peak: AtomicUsize,
    pub batch_live: AtomicUsize,
    pub batch_in_flight: AtomicUsize,
    pub batch_in_flight_peak: AtomicUsize,
    pub errors: AtomicUsize,
    pub refresh_success: AtomicUsize,
    pub refresh_failure: AtomicUsize,
    pub refresh_retries: AtomicUsize,
    pub refresh_full: AtomicUsize,
    pub refresh_incremental: AtomicUsize,
    pub last_refresh_pass: AtomicU64,
}

impl MetricCells {
    pub(crate) fn bump(cell: &AtomicUsize) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises a gauge and folds the new value into its peak cell,
    /// returning the raised value.
    pub(crate) fn raise_gauge(gauge: &AtomicUsize, peak: &AtomicUsize) -> usize {
        let now = gauge.fetch_add(1, Ordering::Relaxed) + 1;
        peak.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Lowers a gauge, saturating at zero. A plain `fetch_sub` would wrap
    /// to `usize::MAX` if an unbalanced lower ever raced a reset — a
    /// wedged-looking gauge is strictly worse than a briefly stale one.
    pub(crate) fn lower_gauge(gauge: &AtomicUsize) {
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    pub(crate) fn snapshot(
        &self,
        per_source: Vec<(String, SourceMeter)>,
        knowledge_epochs: Vec<(String, u64)>,
        pending_refresh: usize,
        stream: StreamStats,
    ) -> ServeMetrics {
        ServeMetrics {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_refused: self.deadline_refused.load(Ordering::Relaxed),
            leaders: self.leaders.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            coalesce_waiters: self.coalesce_waiters.load(Ordering::Relaxed),
            interactive: self.interactive.load(Ordering::Relaxed),
            batch: self.batch.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            in_flight_peak: self.in_flight_peak.load(Ordering::Relaxed),
            batch_in_flight_peak: self.batch_in_flight_peak.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            refresh_success: self.refresh_success.load(Ordering::Relaxed),
            refresh_failure: self.refresh_failure.load(Ordering::Relaxed),
            refresh_retries: self.refresh_retries.load(Ordering::Relaxed),
            refresh_full: self.refresh_full.load(Ordering::Relaxed),
            refresh_incremental: self.refresh_incremental.load(Ordering::Relaxed),
            last_refresh_pass: self.last_refresh_pass.load(Ordering::Relaxed),
            per_source,
            knowledge_epochs,
            pending_refresh,
            stream,
        }
    }
}

/// A point-in-time snapshot of the server's counters plus every member
/// source's access meter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Requests admitted past tenant lookup and query validation.
    pub admitted: usize,
    /// Requests refused at admission (unknown tenant, malformed query).
    pub rejected: usize,
    /// Admitted requests that returned an answer.
    pub completed: usize,
    /// Admitted batch-class requests shed because the class's in-flight
    /// bound ([`ServeConfig::batch_queue_limit`](crate::ServeConfig::batch_queue_limit))
    /// was already full — refused before any source fan-out.
    pub shed: usize,
    /// Admitted requests refused because their stamped deadline could no
    /// longer fund a single mediation attempt.
    pub deadline_refused: usize,
    /// Admitted requests that ran a mediation pass themselves.
    pub leaders: usize,
    /// Admitted requests served by coalescing onto an in-flight pass —
    /// each shared its leader's single source fan-out.
    pub coalesced: usize,
    /// Followers currently parked on an in-flight pass (live gauge).
    pub coalesce_waiters: usize,
    /// Admitted requests from interactive-class tenants.
    pub interactive: usize,
    /// Admitted requests from batch-class tenants.
    pub batch: usize,
    /// Admitted requests currently in flight, all classes (live gauge);
    /// the load the overload ladder's
    /// [`PressureLevel`](qpiad_db::health::PressureLevel) derives from.
    pub in_flight: usize,
    /// Most requests ever in flight at once.
    pub in_flight_peak: usize,
    /// Most batch-class passes ever executing at once — bounded by
    /// [`ServeConfig::batch_concurrency`](crate::ServeConfig::batch_concurrency).
    pub batch_in_flight_peak: usize,
    /// Requests whose mediation pass returned an error (including passes
    /// that died before settling — the request guard charges unwinds
    /// here, so the conservation equation survives panics).
    pub errors: usize,
    /// Members whose knowledge a maintenance pass successfully re-mined,
    /// persisted, and published (counted once per member per
    /// [`QpiadServer::maintain`](crate::QpiadServer::maintain) pass).
    pub refresh_success: usize,
    /// Refresh attempts that exhausted their in-pass retries and left the
    /// member's old knowledge generation serving.
    pub refresh_failure: usize,
    /// Extra refresh attempts spent after a first in-pass failure
    /// (bounded by [`ServeConfig::refresh_retries`](crate::ServeConfig::refresh_retries)).
    pub refresh_retries: usize,
    /// Successful refreshes published as full re-mines (TANE re-run,
    /// classifiers retrained from scratch).
    pub refresh_full: usize,
    /// Successful refreshes published as incremental folds of streamed
    /// validated rows (delta count updates, no TANE re-run). Together
    /// with [`refresh_full`](Self::refresh_full) this partitions
    /// [`refresh_success`](Self::refresh_success).
    pub refresh_incremental: usize,
    /// The most recent maintenance pass that published at least one
    /// refreshed generation (`0` — maintenance passes start at 1 — means
    /// no refresh has ever succeeded).
    pub last_refresh_pass: u64,
    /// Every member source's meter, in registration order.
    pub per_source: Vec<(String, SourceMeter)>,
    /// Every member's current knowledge epoch, in registration order —
    /// 0 until its first published refresh, +1 per publication since.
    pub knowledge_epochs: Vec<(String, u64)>,
    /// Members currently queued for re-mining (drift verdicts plus
    /// contained knowledge-load failures) at snapshot time.
    pub pending_refresh: usize,
    /// Sample-stream counters aggregated across every member's
    /// [`qpiad_learn::SampleStream`]: rows collected from validated live
    /// responses, rows salvaged from refresh-outlived probes, rows folded
    /// into published knowledge, and rows still pending.
    pub stream: StreamStats,
}

impl ServeMetrics {
    /// Fraction of admitted requests served by coalescing, in `[0, 1]`.
    pub fn coalesce_hit_rate(&self) -> f64 {
        if self.admitted == 0 {
            return 0.0;
        }
        self.coalesced as f64 / self.admitted as f64
    }

    /// Fraction of admitted requests shed or deadline-refused, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.admitted == 0 {
            return 0.0;
        }
        (self.shed + self.deadline_refused) as f64 / self.admitted as f64
    }

    /// Total queries issued against all member sources.
    pub fn source_queries(&self) -> usize {
        self.per_source.iter().map(|(_, m)| m.queries).sum()
    }

    /// The conservation equation: quiesced (no request in flight), every
    /// admitted request settled exactly once —
    /// `admitted == completed + shed + deadline_refused + errors`.
    pub fn conserves(&self) -> bool {
        self.admitted == self.completed + self.shed + self.deadline_refused + self.errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_cells_and_rates_divide_safely() {
        let cells = MetricCells::default();
        assert_eq!(cells.snapshot(Vec::new(), Vec::new(), 0, StreamStats::default()).coalesce_hit_rate(), 0.0);
        assert_eq!(cells.snapshot(Vec::new(), Vec::new(), 0, StreamStats::default()).shed_rate(), 0.0);
        for _ in 0..4 {
            MetricCells::bump(&cells.admitted);
        }
        MetricCells::bump(&cells.leaders);
        for _ in 0..3 {
            MetricCells::bump(&cells.coalesced);
        }
        MetricCells::raise_gauge(&cells.batch_in_flight, &cells.batch_in_flight_peak);
        MetricCells::raise_gauge(&cells.batch_in_flight, &cells.batch_in_flight_peak);
        MetricCells::lower_gauge(&cells.batch_in_flight);
        let m = cells.snapshot(
            vec![("s".into(), SourceMeter { queries: 7, ..Default::default() })],
            vec![("s".into(), 3)],
            1,
            StreamStats::default(),
        );
        assert_eq!(m.admitted, 4);
        assert_eq!(m.leaders, 1);
        assert_eq!(m.coalesced, 3);
        assert_eq!(m.coalesce_hit_rate(), 0.75);
        assert_eq!(m.batch_in_flight_peak, 2);
        assert_eq!(m.source_queries(), 7);
    }

    #[test]
    fn lowering_a_zero_gauge_saturates_instead_of_wrapping() {
        let cells = MetricCells::default();
        MetricCells::lower_gauge(&cells.coalesce_waiters);
        assert_eq!(cells.snapshot(Vec::new(), Vec::new(), 0, StreamStats::default()).coalesce_waiters, 0);
        MetricCells::raise_gauge(&cells.in_flight, &cells.in_flight_peak);
        MetricCells::lower_gauge(&cells.in_flight);
        MetricCells::lower_gauge(&cells.in_flight);
        let m = cells.snapshot(Vec::new(), Vec::new(), 0, StreamStats::default());
        assert_eq!(m.in_flight, 0);
        assert_eq!(m.in_flight_peak, 1);
    }

    #[test]
    fn conservation_accounts_every_settled_outcome() {
        let cells = MetricCells::default();
        for _ in 0..10 {
            MetricCells::bump(&cells.admitted);
        }
        for _ in 0..6 {
            MetricCells::bump(&cells.completed);
        }
        for _ in 0..2 {
            MetricCells::bump(&cells.shed);
        }
        MetricCells::bump(&cells.deadline_refused);
        MetricCells::bump(&cells.errors);
        assert!(cells.snapshot(Vec::new(), Vec::new(), 0, StreamStats::default()).conserves());
        MetricCells::bump(&cells.admitted);
        assert!(!cells.snapshot(Vec::new(), Vec::new(), 0, StreamStats::default()).conserves());
    }
}
