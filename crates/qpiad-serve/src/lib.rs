//! # qpiad-serve — the QPIAD serving front end
//!
//! QPIAD's premise is a mediator absorbing heavy streams of *repeated*
//! user queries against autonomous, incomplete sources. The offline/online
//! split that makes this safe comes from the paper's architecture:
//! knowledge (AFDs, classifiers, selectivity) is mined offline and
//! versioned, so online query answering is a read-only function of
//! (query, knowledge version, budget) — many callers can share one
//! mediator as long as the shared-read path is sound.
//!
//! This crate is that shared front end:
//!
//! * [`QpiadServer`] — admits concurrent queries over one
//!   [`MediatorNetwork`](qpiad_core::network::MediatorNetwork) behind
//!   `&self`, validating each against the global schema first (admission);
//! * the internal singleflight layer — **in-flight coalescing**: N concurrent
//!   callers of the same (query template, knowledge epoch, budget) key
//!   share one mediation pass and one source fan-out, with the answer
//!   distributed by `Arc`;
//! * [`Tenant`] / [`TenantClass`] — per-tenant
//!   [`QueryBudget`](qpiad_db::QueryBudget) classes: interactive callers
//!   are never queued, batch callers are capped at
//!   [`ServeConfig::batch_concurrency`] concurrent passes;
//! * **overload control** — bounded admission and a degradation ladder:
//!   batch work past [`ServeConfig::batch_queue_limit`] is shed with a
//!   typed [`ServeError::Shed`] before any source fan-out; interactive
//!   work descends the [`PressureLevel`](qpiad_db::health::PressureLevel)
//!   ladder (fewer rewrites admitted, hedging off, finally certain
//!   answers only), with every shed rewrite's recall mass charged to the
//!   answer's degradation report; a server-wide
//!   [`ServeConfig::deadline`] is stamped into each pass budget and
//!   unfundable requests are refused with [`ServeError::DeadlineRefused`]
//!   at admission;
//! * [`ServeMetrics`] — a snapshot-able metrics surface: admission,
//!   coalescing, shedding, and refusal counters, live in-flight gauges,
//!   tenancy scheduling peaks, and every member source's
//!   [`SourceMeter`](qpiad_db::SourceMeter) — obeying
//!   `admitted == completed + shed + deadline_refused + errors` whenever
//!   the server is quiesced ([`ServeMetrics::conserves`]);
//! * **knowledge maintenance under traffic** — [`QpiadServer::maintain`]
//!   drains the network's refresh queue (drift verdicts, contained
//!   knowledge-load failures) while queries keep flowing: each candidate
//!   is re-mined, persisted to the attached
//!   [`KnowledgeStore`](qpiad_learn::KnowledgeStore) crash-safely, and
//!   published atomically behind an epoch-swapped cell — in-flight passes
//!   keep their pinned knowledge generation, a failed refresh keeps the
//!   old generation serving (bounded retries, cross-pass backoff), and
//!   every outcome lands in [`ServeMetrics`] and the
//!   [`MaintenanceReport`].
//!
//! Determinism carries over from the mediator: coalesced callers share
//! the leader's answer by construction, and independent passes replay the
//! sequential-snapshot / parallel-probe / sequential-absorb protocol, so
//! concurrent serving returns answers byte-identical to serial execution.

mod coalesce;
mod metrics;
mod server;
mod tenant;

pub use metrics::ServeMetrics;
pub use server::{MaintenanceReport, QpiadServer, ServeConfig, ServeError};
pub use tenant::{Tenant, TenantClass};
