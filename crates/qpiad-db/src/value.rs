//! Nullable attribute values.
//!
//! A [`Value`] is either `Null` (a missing value, written `null` in the
//! paper), a 64-bit integer, or an interned string. Strings are stored as
//! `Arc<str>` so that cloning a value — which happens constantly when tuples
//! flow between sources, the mediator, and classifiers — is a reference-count
//! bump rather than an allocation.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single attribute value of an incomplete tuple.
///
/// `Null` models the web-database "missing value". Certain-answer semantics
/// (see [`crate::query`]) treat `Null` as *failing* every bound predicate:
/// a tuple with `Make = Null` is not a certain answer to `Make = Honda`.
#[derive(Debug, Clone)]
pub enum Value {
    /// A missing value.
    Null,
    /// An integer value (years, prices, mileages, ages, ...).
    Int(i64),
    /// A categorical string value (makes, models, body styles, ...).
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value, interning the given text.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns `true` iff the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A discriminant rank used to give `Value` a total order across
    /// variants: `Null < Int < Str`.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Str(s) => s.as_bytes().hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_is_null() {
        assert!(Value::Null.is_null());
        assert!(!Value::int(3).is_null());
        assert!(!Value::str("x").is_null());
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Value::str("Honda"), Value::str("Honda"));
        assert_ne!(Value::str("Honda"), Value::str("Toyota"));
        assert_eq!(Value::int(7), Value::int(7));
        assert_ne!(Value::int(7), Value::int(8));
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::int(0));
        assert_ne!(Value::str("7"), Value::int(7));
    }

    #[test]
    fn ordering_is_total_with_null_first() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(10),
            Value::Null,
            Value::str("a"),
            Value::int(-2),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::int(-2),
                Value::int(10),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn hash_agrees_with_eq() {
        assert_eq!(hash_of(&Value::str("Civic")), hash_of(&Value::str("Civic")));
        assert_eq!(hash_of(&Value::int(2001)), hash_of(&Value::int(2001)));
        // Different variants with "same" payload must not collide by design.
        assert_ne!(hash_of(&Value::Null), hash_of(&Value::int(0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("Convt").to_string(), "Convt");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::int(5));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
        assert_eq!(Value::int(5).as_int(), Some(5));
        assert_eq!(Value::str("z").as_str(), Some("z"));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::int(1).as_str(), None);
    }
}
