//! Deterministic fork–join helpers for the mediation pipeline.
//!
//! QPIAD's answer path is embarrassingly parallel — rewritten queries,
//! source fan-out, TANE partition products and per-attribute classifier
//! training are all independent units of work — but every consumer of this
//! module must stay **bit-identical** to its sequential execution. The
//! helpers here guarantee that by construction:
//!
//! * work items are claimed from a shared atomic counter, so scheduling is
//!   dynamic, but every result is tagged with its item index and the output
//!   vector is restored to input order before it is returned;
//! * callers therefore only parallelize the *computation* of independent
//!   results and keep every order-sensitive decision (dedup, pruning,
//!   merging) in a sequential pass over the ordered output.
//!
//! The worker count comes from, in priority order: the process-wide
//! [`set_thread_override`] (used by tests and benchmarks), the
//! `QPIAD_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. A count of 1 short-circuits to a
//! plain sequential loop with no thread or allocation overhead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for the whole process (`None` restores the
/// `QPIAD_THREADS` / available-parallelism default). Benchmarks and the
/// determinism tests use this to pin both sides of a comparison.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The number of workers parallel sections use: override, then
/// `QPIAD_THREADS`, then available parallelism (1 if undetectable).
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("QPIAD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to `0..n` and returns the results in index order.
///
/// Items are distributed dynamically over [`num_threads`] scoped workers; a
/// panic in `f` propagates to the caller. With one worker (or one item) no
/// thread is spawned at all.
pub fn parallel_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = num_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    // Fan-out must sleep on the caller's mediation clock (retry backoff,
    // injected latency), so capture the thread-local slot and re-install it
    // in every worker.
    let clock = crate::health::current_clock();
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let clock = clock.clone();
                let (f, next) = (&f, &next);
                scope.spawn(move || {
                    let _clock = crate::health::install_clock(clock);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// Applies `f` to every element of `items`, returning results in the
/// slice's order. See [`parallel_map_indexed`] for the execution model.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// The override is process-global; tests touching it take this lock.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn override_takes_precedence() {
        let _guard = OVERRIDE_LOCK.lock();
        set_thread_override(Some(3));
        assert_eq!(num_threads(), 3);
        set_thread_override(None);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn results_arrive_in_input_order() {
        let _guard = OVERRIDE_LOCK.lock();
        for threads in [1, 2, 8] {
            set_thread_override(Some(threads));
            let out = parallel_map_indexed(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            let items: Vec<u64> = (0..57).collect();
            let doubled = parallel_map(&items, |x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
        set_thread_override(None);
    }

    #[test]
    fn empty_and_single_inputs_are_fine() {
        let _guard = OVERRIDE_LOCK.lock();
        set_thread_override(Some(4));
        assert_eq!(parallel_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_indexed(1, |i| i + 7), vec![7]);
        set_thread_override(None);
    }
}
