//! Relation schemas and attribute identifiers.

use std::fmt;
use std::sync::Arc;

/// The declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Integer-valued attribute (year, price, mileage, age, ...).
    Integer,
    /// Categorical string attribute (make, model, body style, ...).
    Categorical,
}

/// Positional identifier of an attribute within a [`Schema`].
///
/// `AttrId` is a plain index; it is only meaningful relative to the schema it
/// was resolved against. The mediator's [`crate::catalog::GlobalCatalog`]
/// translates between global and local `AttrId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    ty: AttrType,
}

impl Attribute {
    /// Creates an attribute with the given name and type.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute { name: name.into(), ty }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's declared type.
    pub fn ty(&self) -> AttrType {
        self.ty
    }
}

/// An ordered list of attributes describing a relation.
///
/// Schemas are immutable after construction and are shared behind [`Arc`]
/// between relations, tuples and sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if two attributes share a name — attribute names must be
    /// unique within a schema.
    pub fn new(name: impl Into<String>, attrs: Vec<Attribute>) -> Arc<Self> {
        for (i, a) in attrs.iter().enumerate() {
            for b in &attrs[i + 1..] {
                assert_ne!(a.name(), b.name(), "duplicate attribute name in schema");
            }
        }
        Arc::new(Schema { name: name.into(), attrs })
    }

    /// Convenience constructor from `(&str, AttrType)` pairs.
    pub fn of(name: impl Into<String>, attrs: &[(&str, AttrType)]) -> Arc<Self> {
        Schema::new(
            name,
            attrs
                .iter()
                .map(|(n, t)| Attribute::new(*n, *t))
                .collect(),
        )
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The attribute at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this schema.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.0]
    }

    /// Resolves an attribute name to its [`AttrId`].
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name() == name)
            .map(AttrId)
    }

    /// Resolves an attribute name, panicking with a helpful message if it is
    /// absent. Intended for tests and examples where the schema is known.
    pub fn expect_attr(&self, name: &str) -> AttrId {
        self.attr_id(name)
            .unwrap_or_else(|| panic!("schema `{}` has no attribute `{name}`", self.name))
    }

    /// Iterator over all attribute ids.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attrs.len()).map(AttrId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car_schema() -> Arc<Schema> {
        Schema::of(
            "cars",
            &[
                ("make", AttrType::Categorical),
                ("model", AttrType::Categorical),
                ("year", AttrType::Integer),
            ],
        )
    }

    #[test]
    fn resolves_names() {
        let s = car_schema();
        assert_eq!(s.attr_id("make"), Some(AttrId(0)));
        assert_eq!(s.attr_id("year"), Some(AttrId(2)));
        assert_eq!(s.attr_id("missing"), None);
        assert_eq!(s.expect_attr("model"), AttrId(1));
    }

    #[test]
    fn exposes_metadata() {
        let s = car_schema();
        assert_eq!(s.name(), "cars");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr(AttrId(1)).name(), "model");
        assert_eq!(s.attr(AttrId(2)).ty(), AttrType::Integer);
        let ids: Vec<_> = s.attr_ids().collect();
        assert_eq!(ids, vec![AttrId(0), AttrId(1), AttrId(2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn rejects_duplicate_names() {
        Schema::of(
            "bad",
            &[("x", AttrType::Integer), ("x", AttrType::Categorical)],
        );
    }

    #[test]
    #[should_panic(expected = "no attribute")]
    fn expect_attr_panics_on_missing() {
        car_schema().expect_attr("nope");
    }
}
