//! Deterministic chaos scheduling for soak tests.
//!
//! The fault model built up over the robustness PRs — transient outages
//! ([`crate::fault::FaultInjector`]), semantic skew
//! ([`crate::fault::SkewInjector`]), knowledge corruption, breaker trips —
//! was exercised one mechanism at a time. A production mediator meets all
//! of them *composed*, concurrently, under tenant floods. This module
//! supplies the composition layer:
//!
//! * [`ChaosSchedule`] — a seeded, **pure** function from a logical pass
//!   number to the chaos active during that pass ([`PassChaos`]): which
//!   members are down, which are skewing their responses, which have their
//!   persisted knowledge corrupted, which breakers are force-tripped, and
//!   how large the tenant flood is. Purity is the load-bearing property:
//!   the schedule holds no mutable state, so the same (seed, pass) always
//!   yields the same chaos regardless of thread count or query order —
//!   the whole soak replays byte-identical at `QPIAD_THREADS` 1 vs 8.
//! * [`ChaosSource`] — a source wrapper that *enacts* the schedule's
//!   member-level chaos (outages and skew) at query time, reading the
//!   current pass from a shared counter the harness advances. Harness-level
//!   events (knowledge corruption, breaker trips, floods) are listed in
//!   [`PassChaos`] for the driving test to apply through the lifecycle
//!   APIs — they mutate mediator state, which a source wrapper must not.
//!
//! Decisions use the same splitmix64 discipline as [`crate::fault`]:
//! content-keyed (seed, member, pass), never order-keyed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::SourceError;
use crate::query::SelectQuery;
use crate::schema::{AttrId, Schema};
use crate::source::{AutonomousSource, SourceMeter};
use crate::tuple::Tuple;
use crate::value::Value;

/// SplitMix64 (same mixer as [`crate::fault`], duplicated privately so the
/// schedule stays decoupled from the injector internals).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `true` with probability `rate`, pure in (seed, member, pass, salt).
fn decide(rate: f64, seed: u64, member: u64, pass: u64, salt: u64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let r = splitmix64(seed ^ member.rotate_left(23) ^ pass.rotate_left(47) ^ salt);
    (r as f64 / u64::MAX as f64) < rate
}

/// What chaos a [`ChaosSchedule`] composes, and how often.
///
/// All rates are per (member, pass) except `flood_rate`, which is per
/// pass. The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for every hashed decision.
    pub seed: u64,
    /// Number of network members the schedule covers.
    pub members: usize,
    /// Probability a member is hard-down for a given pass.
    pub outage_rate: f64,
    /// Probability a member skews its responses for a given pass.
    pub skew_rate: f64,
    /// Probability a member's persisted knowledge is corrupted at the
    /// start of a given pass (harness-applied).
    pub corrupt_rate: f64,
    /// Probability a member's breaker is force-tripped at the start of a
    /// given pass (harness-applied).
    pub trip_rate: f64,
    /// Probability a member's knowledge refresh fails to persist during a
    /// given pass (harness-applied: the driving test arms a persist fault
    /// on the knowledge store before running maintenance).
    pub persist_fail_rate: f64,
    /// Probability a given pass carries a tenant flood.
    pub flood_rate: f64,
    /// How many extra flood requests a flooding pass carries.
    pub flood_size: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            members: 0,
            outage_rate: 0.0,
            skew_rate: 0.0,
            corrupt_rate: 0.0,
            trip_rate: 0.0,
            persist_fail_rate: 0.0,
            flood_rate: 0.0,
            flood_size: 0,
        }
    }
}

impl ChaosConfig {
    /// A plan injecting nothing, over `members` members.
    pub fn calm(members: usize) -> Self {
        ChaosConfig { members, ..ChaosConfig::default() }
    }

    /// Overrides the decision seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-(member, pass) outage probability.
    pub fn with_outage_rate(mut self, rate: f64) -> Self {
        self.outage_rate = rate;
        self
    }

    /// Sets the per-(member, pass) response-skew probability.
    pub fn with_skew_rate(mut self, rate: f64) -> Self {
        self.skew_rate = rate;
        self
    }

    /// Sets the per-(member, pass) knowledge-corruption probability.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Sets the per-(member, pass) breaker-trip probability.
    pub fn with_trip_rate(mut self, rate: f64) -> Self {
        self.trip_rate = rate;
        self
    }

    /// Sets the per-(member, pass) refresh-persist-failure probability.
    pub fn with_persist_fail_rate(mut self, rate: f64) -> Self {
        self.persist_fail_rate = rate;
        self
    }

    /// Sets the per-pass tenant-flood probability and flood size.
    pub fn with_flood(mut self, rate: f64, size: usize) -> Self {
        self.flood_rate = rate;
        self.flood_size = size;
        self
    }
}

/// The chaos active during one logical pass, fully resolved.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassChaos {
    /// The pass this describes.
    pub pass: u64,
    /// Members hard-down for the whole pass (enacted by [`ChaosSource`]).
    pub outages: Vec<usize>,
    /// Members skewing their responses this pass (enacted by
    /// [`ChaosSource`]).
    pub skewed: Vec<usize>,
    /// Members whose persisted knowledge the harness should corrupt
    /// before this pass.
    pub corrupted: Vec<usize>,
    /// Members whose breakers the harness should force-trip before this
    /// pass.
    pub tripped: Vec<usize>,
    /// Members whose knowledge refresh should fail to persist this pass
    /// (harness-applied via the store's fault injection).
    pub persist_failing: Vec<usize>,
    /// Extra flood requests this pass carries (0 = no flood).
    pub flood: usize,
}

impl PassChaos {
    /// `true` iff this pass injects nothing at all.
    pub fn is_calm(&self) -> bool {
        self.outages.is_empty()
            && self.skewed.is_empty()
            && self.corrupted.is_empty()
            && self.tripped.is_empty()
            && self.persist_failing.is_empty()
            && self.flood == 0
    }
}

/// A seeded, pure pass-number → chaos function. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    config: ChaosConfig,
}

impl ChaosSchedule {
    /// Builds the schedule for `config`.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosSchedule { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// `true` iff `member` is down for `pass`.
    pub fn is_out(&self, member: usize, pass: u64) -> bool {
        decide(self.config.outage_rate, self.config.seed, member as u64, pass, 0xa1)
    }

    /// `true` iff `member` skews its responses during `pass`.
    pub fn is_skewed(&self, member: usize, pass: u64) -> bool {
        decide(self.config.skew_rate, self.config.seed, member as u64, pass, 0xb2)
    }

    /// `true` iff `member`'s knowledge should be corrupted before `pass`.
    pub fn is_corrupted(&self, member: usize, pass: u64) -> bool {
        decide(self.config.corrupt_rate, self.config.seed, member as u64, pass, 0xc3)
    }

    /// `true` iff `member`'s breaker should be tripped before `pass`.
    pub fn is_tripped(&self, member: usize, pass: u64) -> bool {
        decide(self.config.trip_rate, self.config.seed, member as u64, pass, 0xd4)
    }

    /// `true` iff `member`'s knowledge refresh should fail to persist
    /// during `pass`.
    pub fn is_persist_failing(&self, member: usize, pass: u64) -> bool {
        decide(self.config.persist_fail_rate, self.config.seed, member as u64, pass, 0xf6)
    }

    /// Flood size for `pass` (0 = no flood).
    pub fn flood(&self, pass: u64) -> usize {
        if decide(self.config.flood_rate, self.config.seed, 0, pass, 0xe5) {
            self.config.flood_size
        } else {
            0
        }
    }

    /// Resolves everything active during `pass`.
    pub fn pass(&self, pass: u64) -> PassChaos {
        let mut chaos = PassChaos { pass, flood: self.flood(pass), ..PassChaos::default() };
        for m in 0..self.config.members {
            if self.is_out(m, pass) {
                chaos.outages.push(m);
            }
            if self.is_skewed(m, pass) {
                chaos.skewed.push(m);
            }
            if self.is_corrupted(m, pass) {
                chaos.corrupted.push(m);
            }
            if self.is_tripped(m, pass) {
                chaos.tripped.push(m);
            }
            if self.is_persist_failing(m, pass) {
                chaos.persist_failing.push(m);
            }
        }
        chaos
    }
}

/// Shared pass counter a harness advances and every [`ChaosSource`] reads.
///
/// The harness bumps it (sequentially, between passes) with
/// [`PassCell::advance`]; sources read it at query time. Because the
/// counter only moves while no query is in flight, every decision inside a
/// pass is a pure function of (seed, member, pass, query) — thread-count
/// independent.
#[derive(Debug, Default)]
pub struct PassCell {
    pass: AtomicU64,
}

impl PassCell {
    /// A counter starting at pass 0.
    pub fn new() -> Arc<Self> {
        Arc::new(PassCell::default())
    }

    /// The current pass.
    pub fn current(&self) -> u64 {
        self.pass.load(Ordering::Acquire)
    }

    /// Sets the current pass (harness-only, between passes).
    pub fn set(&self, pass: u64) {
        self.pass.store(pass, Ordering::Release);
    }

    /// Advances to the next pass and returns it.
    pub fn advance(&self) -> u64 {
        self.pass.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// Wraps an [`AutonomousSource`] and enacts a [`ChaosSchedule`]'s
/// member-level chaos: during an outage pass every query fails with a
/// retryable [`SourceError::Unavailable`]; during a skew pass the
/// configured attribute's values are rewritten (content-keyed by tuple id,
/// same discipline as [`crate::fault::SkewInjector`] — queries
/// constraining the attribute pass through untouched so responses never
/// contradict their own predicates).
#[derive(Debug)]
pub struct ChaosSource<S> {
    inner: S,
    member: usize,
    schedule: Arc<ChaosSchedule>,
    pass: Arc<PassCell>,
    skew: Option<(AttrId, Value)>,
}

impl<S: AutonomousSource> ChaosSource<S> {
    /// Wraps `inner` as member `member` under `schedule`, reading the
    /// current pass from `pass`.
    pub fn new(inner: S, member: usize, schedule: Arc<ChaosSchedule>, pass: Arc<PassCell>) -> Self {
        ChaosSource { inner, member, schedule, pass, skew: None }
    }

    /// Configures which attribute skew passes rewrite, and to what.
    pub fn with_skew(mut self, attr: AttrId, replacement: Value) -> Self {
        self.skew = Some((attr, replacement));
        self
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: AutonomousSource> AutonomousSource for ChaosSource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn supports(&self, attr: AttrId) -> bool {
        self.inner.supports(attr)
    }

    fn allows_null_binding(&self) -> bool {
        self.inner.allows_null_binding()
    }

    fn has_query_budget(&self) -> bool {
        self.inner.has_query_budget()
    }

    fn query(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError> {
        let pass = self.pass.current();
        if self.schedule.is_out(self.member, pass) {
            return Err(SourceError::Unavailable { retryable: true });
        }
        let mut tuples = self.inner.query(q)?;
        if let Some((attr, replacement)) = &self.skew {
            if self.schedule.is_skewed(self.member, pass)
                && !q.predicates().iter().any(|p| p.attr == *attr)
            {
                for t in tuples.iter_mut() {
                    if attr.index() >= t.arity() || t.values()[attr.index()].is_null() {
                        continue; // keep the source's incompleteness intact
                    }
                    let r = splitmix64(
                        self.schedule.config.seed ^ u64::from(t.id().0).rotate_left(32) ^ 0x5caf,
                    );
                    if (r as f64 / u64::MAX as f64) < 0.5 {
                        *t = t.with_value(*attr, replacement.clone());
                    }
                }
            }
        }
        Ok(tuples)
    }

    fn meter(&self) -> SourceMeter {
        self.inner.meter()
    }

    fn reset_meter(&self) {
        self.inner.reset_meter();
    }

    fn note_retries(&self, n: usize) {
        self.inner.note_retries(n);
    }

    fn note_failure(&self) {
        self.inner.note_failure();
    }

    fn note_degraded(&self) {
        self.inner.note_degraded();
    }

    fn note_quarantined(&self, n: usize) {
        self.inner.note_quarantined(n);
    }

    fn note_hedge(&self) {
        self.inner.note_hedge();
    }

    fn note_breaker_skip(&self) {
        self.inner.note_breaker_skip();
    }

    fn note_shed(&self, n: usize) {
        self.inner.note_shed(n);
    }

    fn note_deadline_refused(&self) {
        self.inner.note_deadline_refused();
    }

    fn note_knowledge_unavailable(&self) {
        self.inner.note_knowledge_unavailable();
    }

    fn note_drift(&self) {
        self.inner.note_drift();
    }

    fn note_refresh(&self) {
        self.inner.note_refresh();
    }

    fn note_refresh_failure(&self) {
        self.inner.note_refresh_failure();
    }

    fn note_latency(&self, d: Duration) {
        self.inner.note_latency(d);
    }

    fn note_plan_cache_hit(&self) {
        self.inner.note_plan_cache_hit();
    }

    fn note_plan_cache_miss(&self) {
        self.inner.note_plan_cache_miss();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::relation::Relation;
    use crate::schema::AttrType;
    use crate::source::WebSource;
    use crate::tuple::TupleId;

    fn stormy() -> ChaosConfig {
        ChaosConfig::calm(4)
            .with_seed(42)
            .with_outage_rate(0.3)
            .with_skew_rate(0.2)
            .with_corrupt_rate(0.1)
            .with_trip_rate(0.1)
            .with_flood(0.25, 8)
    }

    fn relation() -> Relation {
        let schema = Schema::of(
            "cars",
            &[("model", AttrType::Categorical), ("body", AttrType::Categorical)],
        );
        let rows = [("A4", "Convt"), ("Z4", "Convt"), ("Civic", "Sedan")];
        let tuples = rows
            .iter()
            .enumerate()
            .map(|(i, (m, b))| Tuple::new(TupleId(i as u32), vec![Value::str(*m), Value::str(*b)]))
            .collect();
        Relation::new(schema, tuples)
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_pass() {
        let a = ChaosSchedule::new(stormy());
        let b = ChaosSchedule::new(stormy());
        for pass in 0..100 {
            assert_eq!(a.pass(pass), b.pass(pass));
        }
        // And a different seed yields a different storm.
        let c = ChaosSchedule::new(stormy().with_seed(43));
        assert!((0..100).any(|p| a.pass(p) != c.pass(p)));
    }

    #[test]
    fn all_event_kinds_fire_over_a_long_storm() {
        let s = ChaosSchedule::new(stormy());
        let mut outages = 0;
        let mut skews = 0;
        let mut corruptions = 0;
        let mut trips = 0;
        let mut floods = 0;
        for pass in 0..200 {
            let c = s.pass(pass);
            outages += c.outages.len();
            skews += c.skewed.len();
            corruptions += c.corrupted.len();
            trips += c.tripped.len();
            floods += usize::from(c.flood > 0);
        }
        assert!(outages > 0 && skews > 0 && corruptions > 0 && trips > 0 && floods > 0);
    }

    #[test]
    fn calm_config_injects_nothing() {
        let s = ChaosSchedule::new(ChaosConfig::calm(4));
        for pass in 0..50 {
            assert!(s.pass(pass).is_calm());
        }
    }

    #[test]
    fn chaos_source_enacts_outages_per_pass() {
        let schedule = Arc::new(ChaosSchedule::new(
            ChaosConfig::calm(1).with_seed(7).with_outage_rate(0.5),
        ));
        let pass = PassCell::new();
        let src =
            ChaosSource::new(WebSource::new("cars", relation()), 0, schedule.clone(), pass.clone());
        let model = src.schema().expect_attr("model");
        let q = SelectQuery::new(vec![Predicate::eq(model, "Z4")]);
        let mut saw_outage = false;
        let mut saw_healthy = false;
        for p in 0..50 {
            pass.set(p);
            let out = schedule.is_out(0, p);
            match src.query(&q) {
                Err(SourceError::Unavailable { retryable: true }) => {
                    assert!(out);
                    saw_outage = true;
                }
                Ok(tuples) => {
                    assert!(!out);
                    assert_eq!(tuples.len(), 1);
                    saw_healthy = true;
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        assert!(saw_outage && saw_healthy);
    }

    #[test]
    fn chaos_source_skew_spares_constrained_attributes() {
        let schedule =
            Arc::new(ChaosSchedule::new(ChaosConfig::calm(1).with_seed(3).with_skew_rate(1.0)));
        let pass = PassCell::new();
        let rel = relation();
        let body = rel.schema().expect_attr("body");
        let model = rel.schema().expect_attr("model");
        let src = ChaosSource::new(WebSource::new("cars", rel), 0, schedule, pass.clone())
            .with_skew(body, Value::str("SUV"));
        pass.set(1);
        // A query constraining the skewed attribute sees stored values.
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let res = src.query(&q).unwrap();
        assert!(res.iter().all(|t| t.values()[body.index()] == Value::str("Convt")));
        // A query on another attribute may see skewed bodies, and the skew
        // replays identically for the same pass.
        let q = SelectQuery::new(vec![Predicate::eq(model, "Z4")]);
        assert_eq!(src.query(&q).unwrap(), src.query(&q).unwrap());
    }
}
