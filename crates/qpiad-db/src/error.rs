//! Errors raised by (or on behalf of) autonomous sources.
//!
//! The variants fall into three families the mediation layer treats
//! differently:
//!
//! * **rejections** — the query is inexpressible on this source
//!   ([`SourceError::NullBindingUnsupported`],
//!   [`SourceError::UnsupportedAttribute`]) or the session budget is spent
//!   ([`SourceError::QueryLimitExceeded`]); re-issuing the same query cannot
//!   help;
//! * **failures** — the source failed to serve a valid query
//!   ([`SourceError::Unavailable`], [`SourceError::Timeout`]); transient
//!   ones ([`SourceError::is_transient`]) are worth retrying;
//! * **internal** — a mediator-side invariant broke while serving the
//!   source ([`SourceError::Internal`]); surfaced as a recorded outcome
//!   instead of a panic so one bad member cannot poison a whole answer;
//! * **refusals** — the mediator itself declined to issue the query
//!   because the source's circuit breaker is open
//!   ([`SourceError::CircuitOpen`]) or the caller's query budget is spent
//!   ([`SourceError::BudgetExhausted`]); the source was never contacted,
//!   so these charge neither meters nor the breaker.

use std::fmt;

use crate::schema::AttrId;

/// Why a source rejected or failed to serve a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The query binds a null (`attr IS NULL`) and the source's web-form
    /// interface cannot express that pattern.
    NullBindingUnsupported {
        /// The offending attribute (in the source's local schema).
        attr: AttrId,
    },
    /// The query constrains an attribute the source's local schema does not
    /// support.
    UnsupportedAttribute {
        /// The offending attribute id as used in the query.
        attr: AttrId,
    },
    /// The source's per-session query budget is exhausted (web sources may
    /// limit the number of queries they answer, §4.1).
    QueryLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// The source could not be reached (network fault, overload, outage).
    Unavailable {
        /// `true` for transient conditions worth retrying; `false` for a
        /// hard outage for the rest of the session.
        retryable: bool,
    },
    /// The source did not answer within the deadline. Always transient.
    Timeout {
        /// How long the caller waited before giving up.
        waited_ms: u64,
    },
    /// A mediator-side invariant broke while serving this source (e.g. a
    /// member selected as a correlated source carries no statistics).
    Internal {
        /// What broke, for diagnostics.
        message: String,
    },
    /// The mediator refused to issue the query because the source's
    /// circuit breaker is open (see
    /// [`BreakerState`](crate::health::BreakerState)). No query reached
    /// the source, so this is neither transient nor a source failure — it
    /// must not feed meters or the breaker itself.
    CircuitOpen,
    /// The mediator refused to issue the query because the caller's
    /// [`QueryBudget`](crate::health::QueryBudget) (deadline or attempt
    /// cap) is exhausted. Like [`SourceError::CircuitOpen`], a
    /// mediator-side refusal: neither transient nor a source failure.
    BudgetExhausted,
}

impl SourceError {
    /// `true` for errors a retry can plausibly fix: retryable unavailability
    /// and timeouts. Rejections and hard outages are not transient.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SourceError::Unavailable { retryable: true } | SourceError::Timeout { .. }
        )
    }

    /// `true` for errors that mean the source (or the mediation layer)
    /// *failed* to serve a valid query, as opposed to rejecting an
    /// inexpressible or over-budget one.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            SourceError::Unavailable { .. }
                | SourceError::Timeout { .. }
                | SourceError::Internal { .. }
        )
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::NullBindingUnsupported { attr } => {
                write!(f, "source does not support null binding on attribute {attr}")
            }
            SourceError::UnsupportedAttribute { attr } => {
                write!(f, "source does not support queries on attribute {attr}")
            }
            SourceError::QueryLimitExceeded { limit } => {
                write!(f, "source query limit of {limit} queries exceeded")
            }
            SourceError::Unavailable { retryable: true } => {
                write!(f, "source temporarily unavailable")
            }
            SourceError::Unavailable { retryable: false } => {
                write!(f, "source unavailable (not retryable)")
            }
            SourceError::Timeout { waited_ms } => {
                write!(f, "source timed out after {waited_ms} ms")
            }
            SourceError::Internal { message } => {
                write!(f, "internal mediation error: {message}")
            }
            SourceError::CircuitOpen => {
                write!(f, "query skipped: source circuit breaker is open")
            }
            SourceError::BudgetExhausted => {
                write!(f, "query skipped: query budget exhausted")
            }
        }
    }
}

impl std::error::Error for SourceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SourceError::NullBindingUnsupported { attr: AttrId(3) };
        assert!(e.to_string().contains("null binding"));
        let e = SourceError::UnsupportedAttribute { attr: AttrId(1) };
        assert!(e.to_string().contains("does not support queries"));
        let e = SourceError::QueryLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = SourceError::Unavailable { retryable: true };
        assert!(e.to_string().contains("temporarily"));
        let e = SourceError::Timeout { waited_ms: 250 };
        assert!(e.to_string().contains("250"));
        let e = SourceError::Internal { message: "stats missing".into() };
        assert!(e.to_string().contains("stats missing"));
        assert!(SourceError::CircuitOpen.to_string().contains("circuit breaker"));
        assert!(SourceError::BudgetExhausted.to_string().contains("budget"));
    }

    #[test]
    fn transient_and_failure_classification() {
        assert!(SourceError::Unavailable { retryable: true }.is_transient());
        assert!(SourceError::Timeout { waited_ms: 1 }.is_transient());
        assert!(!SourceError::Unavailable { retryable: false }.is_transient());
        assert!(!SourceError::QueryLimitExceeded { limit: 1 }.is_transient());
        assert!(!SourceError::Internal { message: String::new() }.is_transient());

        assert!(SourceError::Unavailable { retryable: false }.is_failure());
        assert!(SourceError::Timeout { waited_ms: 1 }.is_failure());
        assert!(SourceError::Internal { message: String::new() }.is_failure());
        assert!(!SourceError::NullBindingUnsupported { attr: AttrId(0) }.is_failure());
        assert!(!SourceError::UnsupportedAttribute { attr: AttrId(0) }.is_failure());
        assert!(!SourceError::QueryLimitExceeded { limit: 1 }.is_failure());

        // Mediator-side refusals: no query reached the source, so they are
        // neither retryable nor chargeable to the source's health.
        assert!(!SourceError::CircuitOpen.is_transient());
        assert!(!SourceError::CircuitOpen.is_failure());
        assert!(!SourceError::BudgetExhausted.is_transient());
        assert!(!SourceError::BudgetExhausted.is_failure());
    }
}
