//! Errors raised by autonomous sources.

use std::fmt;

use crate::schema::AttrId;

/// Why a source rejected a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The query binds a null (`attr IS NULL`) and the source's web-form
    /// interface cannot express that pattern.
    NullBindingUnsupported {
        /// The offending attribute (in the source's local schema).
        attr: AttrId,
    },
    /// The query constrains an attribute the source's local schema does not
    /// support.
    UnsupportedAttribute {
        /// The offending attribute id as used in the query.
        attr: AttrId,
    },
    /// The source's per-session query budget is exhausted (web sources may
    /// limit the number of queries they answer, §4.1).
    QueryLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::NullBindingUnsupported { attr } => {
                write!(f, "source does not support null binding on attribute {attr}")
            }
            SourceError::UnsupportedAttribute { attr } => {
                write!(f, "source does not support queries on attribute {attr}")
            }
            SourceError::QueryLimitExceeded { limit } => {
                write!(f, "source query limit of {limit} queries exceeded")
            }
        }
    }
}

impl std::error::Error for SourceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SourceError::NullBindingUnsupported { attr: AttrId(3) };
        assert!(e.to_string().contains("null binding"));
        let e = SourceError::UnsupportedAttribute { attr: AttrId(1) };
        assert!(e.to_string().contains("does not support queries"));
        let e = SourceError::QueryLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
    }
}
