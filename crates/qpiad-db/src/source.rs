//! Autonomous-source access layers.
//!
//! A mediator never touches a web database's storage; it can only issue
//! queries through a (restricted) query interface and observe the returned
//! tuples. [`WebSource`] models that interface faithfully:
//!
//! * **no null binding** — `attr IS NULL` predicates are rejected,
//! * **limited attribute support** — the local schema may omit attributes of
//!   the mediator's global schema, and only supported attributes may be
//!   constrained,
//! * **metered access** — every query and transferred tuple is counted, so
//!   the efficiency experiments (Figure 8) can report real costs,
//! * **optional query budget** — sources may cap queries per session.
//!
//! [`DirectSource`] lifts the null-binding restriction; it exists only so
//! the paper's infeasible baselines (AllReturned, AllRanked) can be
//! evaluated against the same data.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::SourceError;
use crate::index::SelectionEngine;
use crate::query::SelectQuery;
use crate::relation::Relation;
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;

/// Cumulative access costs incurred against a source.
///
/// Beyond raw query/tuple counts, the meter tracks the fault-tolerance
/// counters the mediation layer reports through it: failed query attempts,
/// mediator-side retries, and mediation passes that degraded to a partial
/// (or empty) contribution from this source. These keep the Figure-8-style
/// efficiency experiments honest when sources are flaky: a degraded run is
/// visibly distinct from a cheap healthy one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceMeter {
    /// Number of queries answered.
    pub queries: usize,
    /// Total number of tuples returned across all queries.
    pub tuples_returned: usize,
    /// Number of queries rejected (null binding, unsupported attribute,
    /// budget exhaustion).
    pub rejected: usize,
    /// Failed query attempts observed at the query-issue boundary
    /// (unavailability, timeouts, internal errors) — see
    /// [`SourceError::is_failure`](crate::error::SourceError::is_failure).
    pub failures: usize,
    /// Mediator-side retries issued against this source.
    pub retries: usize,
    /// Mediation passes whose contribution from this source was degraded:
    /// rewritten queries dropped after retries, or the member recorded as
    /// failed outright.
    pub degraded: usize,
    /// Returned tuples quarantined by response validation
    /// ([`crate::validate::ResponseValidator`]): shape or predicate
    /// violations dropped before they could poison the answer set.
    pub quarantined: usize,
    /// Queries this source failed but a hedged fallback served
    /// ([`crate::health`]'s hedging layer).
    pub hedges: usize,
    /// Queries skipped up front because this source's circuit breaker was
    /// open.
    pub breaker_skips: usize,
    /// Rewritten queries shed by the overload degradation ladder before
    /// they reached this source: admitted plan entries clamped off under a
    /// non-`Normal` [`PressureLevel`](crate::health::PressureLevel).
    pub shed: usize,
    /// Queries refused because the propagated deadline could no longer fund
    /// even a single attempt against this source — the request was turned
    /// away at the cheapest layer instead of timing out mid-fan-out.
    pub deadline_refused: usize,
    /// Mediation passes this source served certain-answers-only because
    /// its persisted knowledge failed to load (missing, corrupt, wrong
    /// version, or wrong schema — see `qpiad_learn::store`).
    pub knowledge_unavailable: usize,
    /// Drift verdicts raised against this source: its mined knowledge
    /// diverged from live responses past the configured threshold and a
    /// re-mine was scheduled (see `qpiad_learn::drift`).
    pub drift_events: usize,
    /// Knowledge refreshes completed for this source: re-mined, persisted,
    /// and published as a new epoch.
    pub refreshes: usize,
    /// Knowledge refresh attempts that failed (re-mine error or persist
    /// failure); the old epoch stayed in service.
    pub refresh_failures: usize,
    /// Cumulative observed (or injected) query latency, in nanoseconds.
    /// Feeds the hedging layer's slow-source detection.
    pub latency_ns: u64,
    /// Mediation plans served from the plan cache: the candidate-rewrite
    /// list for this (source, query template, knowledge version) was reused
    /// without re-running rewrite generation and ranking.
    pub plan_cache_hits: usize,
    /// Mediation plans planned from scratch because no cached candidate
    /// list matched the (source, query template, knowledge version) key.
    pub plan_cache_misses: usize,
}

/// The query interface every autonomous source exposes to the mediator.
///
/// Sources must be [`Sync`]: the mediator fans rewritten queries and
/// multi-source retrieval out over scoped threads, so concurrent `query`
/// calls must be linearizable (meters and lazy indexes sit behind locks).
pub trait AutonomousSource: Sync {
    /// Source name (for diagnostics and catalog lookups).
    fn name(&self) -> &str;

    /// The source's local schema.
    fn schema(&self) -> &Arc<Schema>;

    /// `true` iff the source accepts queries binding the given attribute.
    ///
    /// This must reflect *queryability*, not mere schema membership: a web
    /// form may store an attribute yet expose no field for it. There is
    /// deliberately no default implementation — a bounds check against the
    /// schema arity routed queries at sources with no field for the
    /// attribute; every implementor must consult its queryable set (or
    /// delegate to a wrapped source).
    fn supports(&self, attr: AttrId) -> bool;

    /// Whether `attr IS NULL` predicates are accepted.
    fn allows_null_binding(&self) -> bool;

    /// Answers a conjunctive selection query with its certain answers
    /// (Definition 2), or rejects it.
    fn query(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError>;

    /// `true` iff the source caps queries per session. A budgeted source
    /// must be queried strictly sequentially: which queries fit under the
    /// budget depends on issue order, so concurrent issuance would change
    /// observable behavior. Budget-free sources accept any interleaving.
    fn has_query_budget(&self) -> bool {
        false
    }

    /// A snapshot of cumulative access costs.
    fn meter(&self) -> SourceMeter;

    /// Resets the access meter (between experiments).
    fn reset_meter(&self);

    /// Records `n` mediator-side retries attributed to this source. Called
    /// by the retry boundary ([`crate::fault::query_with_retry`]); sources
    /// that do not meter may leave the default no-op.
    fn note_retries(&self, n: usize) {
        let _ = n;
    }

    /// Records one failed query attempt (unavailability, timeout, internal
    /// error) observed at the query-issue boundary.
    fn note_failure(&self) {}

    /// Records one mediation pass that degraded this source's contribution
    /// (dropped rewrites or a failed member).
    fn note_degraded(&self) {}

    /// Records `n` returned tuples quarantined by response validation.
    fn note_quarantined(&self, n: usize) {
        let _ = n;
    }

    /// Records one query this source failed but a hedged fallback served.
    fn note_hedge(&self) {}

    /// Records one query skipped because this source's breaker was open.
    fn note_breaker_skip(&self) {}

    /// Records `n` rewritten queries shed from this source's plan by the
    /// overload degradation ladder.
    fn note_shed(&self, n: usize) {
        let _ = n;
    }

    /// Records one query refused because the propagated deadline could no
    /// longer fund a single attempt against this source.
    fn note_deadline_refused(&self) {}

    /// Records one mediation pass served certain-answers-only because the
    /// source's persisted knowledge failed to load.
    fn note_knowledge_unavailable(&self) {}

    /// Records one drift verdict raised against this source.
    fn note_drift(&self) {}

    /// Records one completed knowledge refresh for this source (re-mined,
    /// persisted, published as a new epoch).
    fn note_refresh(&self) {}

    /// Records one failed knowledge refresh attempt for this source (the
    /// old epoch stayed in service).
    fn note_refresh_failure(&self) {}

    /// Records observed (or injected) latency for one query against this
    /// source. Feeds the hedging layer's slow-source detection.
    fn note_latency(&self, d: std::time::Duration) {
        let _ = d;
    }

    /// Records one mediation plan served from the plan cache for this
    /// source (candidate rewrites reused, no re-planning).
    fn note_plan_cache_hit(&self) {}

    /// Records one mediation plan planned from scratch because the plan
    /// cache held no entry for this source's (template, version) key.
    fn note_plan_cache_miss(&self) {}
}

fn validate(
    q: &SelectQuery,
    supported: &dyn Fn(AttrId) -> bool,
    allow_null_binding: bool,
) -> Result<(), SourceError> {
    for p in q.predicates() {
        if !supported(p.attr) {
            return Err(SourceError::UnsupportedAttribute { attr: p.attr });
        }
        if p.op.is_null_binding() && !allow_null_binding {
            return Err(SourceError::NullBindingUnsupported { attr: p.attr });
        }
    }
    Ok(())
}

/// Lock-free accumulation cells behind [`SourceMeter`].
///
/// Every counter is an independent atomic, so the hot path (the mediator's
/// fan-out plus a server's concurrent passes) never serializes on a meter
/// mutex and a panicking caller can never poison the accounting. A
/// [`MeterCells::snapshot`] is per-field consistent, not cross-field: a
/// reader racing a live query may observe `queries` bumped before
/// `tuples_returned`. Quiesced reads (after joining workers) are exact.
#[derive(Debug, Default)]
struct MeterCells {
    queries: AtomicUsize,
    tuples_returned: AtomicUsize,
    rejected: AtomicUsize,
    failures: AtomicUsize,
    retries: AtomicUsize,
    degraded: AtomicUsize,
    quarantined: AtomicUsize,
    hedges: AtomicUsize,
    breaker_skips: AtomicUsize,
    shed: AtomicUsize,
    deadline_refused: AtomicUsize,
    knowledge_unavailable: AtomicUsize,
    drift_events: AtomicUsize,
    refreshes: AtomicUsize,
    refresh_failures: AtomicUsize,
    latency_ns: AtomicU64,
    plan_cache_hits: AtomicUsize,
    plan_cache_misses: AtomicUsize,
}

impl MeterCells {
    fn snapshot(&self) -> SourceMeter {
        SourceMeter {
            queries: self.queries.load(Ordering::Relaxed),
            tuples_returned: self.tuples_returned.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            breaker_skips: self.breaker_skips.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_refused: self.deadline_refused.load(Ordering::Relaxed),
            knowledge_unavailable: self.knowledge_unavailable.load(Ordering::Relaxed),
            drift_events: self.drift_events.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            refresh_failures: self.refresh_failures.load(Ordering::Relaxed),
            latency_ns: self.latency_ns.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.tuples_returned.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.failures.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.degraded.store(0, Ordering::Relaxed);
        self.quarantined.store(0, Ordering::Relaxed);
        self.hedges.store(0, Ordering::Relaxed);
        self.breaker_skips.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.deadline_refused.store(0, Ordering::Relaxed);
        self.knowledge_unavailable.store(0, Ordering::Relaxed);
        self.drift_events.store(0, Ordering::Relaxed);
        self.refreshes.store(0, Ordering::Relaxed);
        self.refresh_failures.store(0, Ordering::Relaxed);
        self.latency_ns.store(0, Ordering::Relaxed);
        self.plan_cache_hits.store(0, Ordering::Relaxed);
        self.plan_cache_misses.store(0, Ordering::Relaxed);
    }

    fn bump(cell: &AtomicUsize) {
        cell.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared implementation for the two concrete sources.
#[derive(Debug)]
struct SourceInner {
    name: String,
    relation: Relation,
    engine: SelectionEngine,
    /// Attributes of the local schema that may be constrained. Attributes
    /// outside this set exist in the stored data but the web form exposes no
    /// field for them.
    queryable: Vec<bool>,
    allow_null_binding: bool,
    query_limit: Option<usize>,
    meter: MeterCells,
}

impl SourceInner {
    fn answer(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError> {
        let check = validate(
            q,
            &|a: AttrId| a.index() < self.queryable.len() && self.queryable[a.index()],
            self.allow_null_binding,
        );
        if let Err(e) = check {
            MeterCells::bump(&self.meter.rejected);
            return Err(e);
        }
        // Certain-answer semantics over the stored (incomplete) relation,
        // served through the lazily built posting-list indexes. For a
        // DirectSource, IsNull predicates resolve to the null posting list.
        if let Some(limit) = self.query_limit {
            // Budgeted: reserve a slot under the limit with a CAS before
            // answering, so the limit check and the query-count bump are
            // one atomic step even under (contractually discouraged)
            // concurrent issuance.
            let admitted = self.meter.queries.fetch_update(
                Ordering::Relaxed,
                Ordering::Relaxed,
                |q| if q >= limit { None } else { Some(q + 1) },
            );
            if admitted.is_err() {
                MeterCells::bump(&self.meter.rejected);
                return Err(SourceError::QueryLimitExceeded { limit });
            }
            let result: Vec<Tuple> = self.engine.select(&self.relation, q);
            self.meter.tuples_returned.fetch_add(result.len(), Ordering::Relaxed);
            Ok(result)
        } else {
            // Budget-free: concurrent queries never touch a lock, only
            // independent counter cells.
            let result: Vec<Tuple> = self.engine.select(&self.relation, q);
            MeterCells::bump(&self.meter.queries);
            self.meter.tuples_returned.fetch_add(result.len(), Ordering::Relaxed);
            Ok(result)
        }
    }
}

/// A web database behind a form interface: certain answers only, no null
/// binding, optionally a query budget and a restricted set of queryable
/// attributes.
#[derive(Debug)]
pub struct WebSource {
    inner: SourceInner,
}

impl WebSource {
    /// Wraps a relation as a web source where every attribute is queryable.
    pub fn new(name: impl Into<String>, relation: Relation) -> Self {
        let arity = relation.schema().arity();
        WebSource {
            inner: SourceInner {
                name: name.into(),
                relation,
                engine: SelectionEngine::new(),
                queryable: vec![true; arity],
                allow_null_binding: false,
                query_limit: None,
                meter: MeterCells::default(),
            },
        }
    }

    /// Restricts the set of queryable attributes (local schemas that do not
    /// support some global attributes, §4.3).
    pub fn with_queryable(mut self, attrs: &[AttrId]) -> Self {
        let arity = self.inner.relation.schema().arity();
        let mut queryable = vec![false; arity];
        for a in attrs {
            queryable[a.index()] = true;
        }
        self.inner.queryable = queryable;
        self
    }

    /// Caps the number of queries the source answers per session.
    pub fn with_query_limit(mut self, limit: usize) -> Self {
        self.inner.query_limit = Some(limit);
        self
    }

    /// Read access to the stored relation (the *evaluation harness* uses
    /// this as ground truth; the mediator must not).
    pub fn relation(&self) -> &Relation {
        &self.inner.relation
    }
}

impl AutonomousSource for WebSource {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn schema(&self) -> &Arc<Schema> {
        self.inner.relation.schema()
    }

    fn supports(&self, attr: AttrId) -> bool {
        attr.index() < self.inner.queryable.len() && self.inner.queryable[attr.index()]
    }

    fn allows_null_binding(&self) -> bool {
        false
    }

    fn has_query_budget(&self) -> bool {
        self.inner.query_limit.is_some()
    }

    fn query(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError> {
        self.inner.answer(q)
    }

    fn meter(&self) -> SourceMeter {
        self.inner.meter.snapshot()
    }

    fn reset_meter(&self) {
        self.inner.meter.reset();
    }

    fn note_retries(&self, n: usize) {
        self.inner.meter.retries.fetch_add(n, Ordering::Relaxed);
    }

    fn note_failure(&self) {
        MeterCells::bump(&self.inner.meter.failures);
    }

    fn note_degraded(&self) {
        MeterCells::bump(&self.inner.meter.degraded);
    }

    fn note_quarantined(&self, n: usize) {
        self.inner.meter.quarantined.fetch_add(n, Ordering::Relaxed);
    }

    fn note_hedge(&self) {
        MeterCells::bump(&self.inner.meter.hedges);
    }

    fn note_breaker_skip(&self) {
        MeterCells::bump(&self.inner.meter.breaker_skips);
    }

    fn note_shed(&self, n: usize) {
        self.inner.meter.shed.fetch_add(n, Ordering::Relaxed);
    }

    fn note_deadline_refused(&self) {
        MeterCells::bump(&self.inner.meter.deadline_refused);
    }

    fn note_knowledge_unavailable(&self) {
        MeterCells::bump(&self.inner.meter.knowledge_unavailable);
    }

    fn note_drift(&self) {
        MeterCells::bump(&self.inner.meter.drift_events);
    }

    fn note_refresh(&self) {
        MeterCells::bump(&self.inner.meter.refreshes);
    }

    fn note_refresh_failure(&self) {
        MeterCells::bump(&self.inner.meter.refresh_failures);
    }

    fn note_latency(&self, d: std::time::Duration) {
        let nanos = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.inner.meter.latency_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    fn note_plan_cache_hit(&self) {
        MeterCells::bump(&self.inner.meter.plan_cache_hits);
    }

    fn note_plan_cache_miss(&self) {
        MeterCells::bump(&self.inner.meter.plan_cache_misses);
    }
}

/// A source with unrestricted access patterns, including null binding.
///
/// Real web databases do not offer this interface; it exists to implement
/// the AllReturned / AllRanked baselines the paper compares against.
#[derive(Debug)]
pub struct DirectSource {
    inner: SourceInner,
}

impl DirectSource {
    /// Wraps a relation as a direct-access source.
    pub fn new(name: impl Into<String>, relation: Relation) -> Self {
        let arity = relation.schema().arity();
        DirectSource {
            inner: SourceInner {
                name: name.into(),
                relation,
                engine: SelectionEngine::new(),
                queryable: vec![true; arity],
                allow_null_binding: true,
                query_limit: None,
                meter: MeterCells::default(),
            },
        }
    }

    /// Read access to the stored relation.
    pub fn relation(&self) -> &Relation {
        &self.inner.relation
    }
}

impl AutonomousSource for DirectSource {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn schema(&self) -> &Arc<Schema> {
        self.inner.relation.schema()
    }

    fn supports(&self, attr: AttrId) -> bool {
        attr.index() < self.inner.queryable.len() && self.inner.queryable[attr.index()]
    }

    fn allows_null_binding(&self) -> bool {
        true
    }

    fn query(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError> {
        self.inner.answer(q)
    }

    fn meter(&self) -> SourceMeter {
        self.inner.meter.snapshot()
    }

    fn reset_meter(&self) {
        self.inner.meter.reset();
    }

    fn note_retries(&self, n: usize) {
        self.inner.meter.retries.fetch_add(n, Ordering::Relaxed);
    }

    fn note_failure(&self) {
        MeterCells::bump(&self.inner.meter.failures);
    }

    fn note_degraded(&self) {
        MeterCells::bump(&self.inner.meter.degraded);
    }

    fn note_quarantined(&self, n: usize) {
        self.inner.meter.quarantined.fetch_add(n, Ordering::Relaxed);
    }

    fn note_hedge(&self) {
        MeterCells::bump(&self.inner.meter.hedges);
    }

    fn note_breaker_skip(&self) {
        MeterCells::bump(&self.inner.meter.breaker_skips);
    }

    fn note_shed(&self, n: usize) {
        self.inner.meter.shed.fetch_add(n, Ordering::Relaxed);
    }

    fn note_deadline_refused(&self) {
        MeterCells::bump(&self.inner.meter.deadline_refused);
    }

    fn note_knowledge_unavailable(&self) {
        MeterCells::bump(&self.inner.meter.knowledge_unavailable);
    }

    fn note_drift(&self) {
        MeterCells::bump(&self.inner.meter.drift_events);
    }

    fn note_refresh(&self) {
        MeterCells::bump(&self.inner.meter.refreshes);
    }

    fn note_refresh_failure(&self) {
        MeterCells::bump(&self.inner.meter.refresh_failures);
    }

    fn note_latency(&self, d: std::time::Duration) {
        let nanos = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.inner.meter.latency_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    fn note_plan_cache_hit(&self) {
        MeterCells::bump(&self.inner.meter.plan_cache_hits);
    }

    fn note_plan_cache_miss(&self) {
        MeterCells::bump(&self.inner.meter.plan_cache_misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::schema::AttrType;
    use crate::tuple::TupleId;
    use crate::value::Value;

    fn relation() -> Relation {
        let schema = Schema::of(
            "cars",
            &[
                ("model", AttrType::Categorical),
                ("body", AttrType::Categorical),
            ],
        );
        let rows: Vec<(&str, Option<&str>)> = vec![
            ("A4", Some("Convt")),
            ("Z4", Some("Convt")),
            ("Z4", None),
            ("Civic", Some("Sedan")),
        ];
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, (m, b))| {
                Tuple::new(
                    TupleId(i as u32),
                    vec![Value::str(m), b.map(Value::str).unwrap_or(Value::Null)],
                )
            })
            .collect();
        Relation::new(schema, tuples)
    }

    #[test]
    fn web_source_answers_certain_only() {
        let src = WebSource::new("cars.com", relation());
        let body = src.schema().expect_attr("body");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let res = src.query(&q).unwrap();
        assert_eq!(res.len(), 2);
        let m = src.meter();
        assert_eq!(m.queries, 1);
        assert_eq!(m.tuples_returned, 2);
        assert_eq!(m.rejected, 0);
    }

    #[test]
    fn web_source_rejects_null_binding() {
        let src = WebSource::new("cars.com", relation());
        let body = src.schema().expect_attr("body");
        let q = SelectQuery::new(vec![Predicate::is_null(body)]);
        assert_eq!(
            src.query(&q),
            Err(SourceError::NullBindingUnsupported { attr: body })
        );
        assert_eq!(src.meter().rejected, 1);
        assert_eq!(src.meter().queries, 0);
    }

    #[test]
    fn web_source_rejects_unsupported_attribute() {
        let rel = relation();
        let model = rel.schema().expect_attr("model");
        let body = rel.schema().expect_attr("body");
        // Yahoo!-Autos-like source: body style not queryable.
        let src = WebSource::new("yahoo", rel).with_queryable(&[model]);
        assert!(src.supports(model));
        assert!(!src.supports(body));
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        assert_eq!(
            src.query(&q),
            Err(SourceError::UnsupportedAttribute { attr: body })
        );
        // Supported attribute still works.
        let q = SelectQuery::new(vec![Predicate::eq(model, "Z4")]);
        // Certain-answer count: both Z4 tuples stored, both returned
        // (their *model* is bound and non-null).
        assert_eq!(src.query(&q).unwrap().len(), 2);
    }

    #[test]
    fn web_source_enforces_query_limit() {
        let src = WebSource::new("limited", relation()).with_query_limit(2);
        let model = src.schema().expect_attr("model");
        let q = SelectQuery::new(vec![Predicate::eq(model, "Z4")]);
        assert!(src.query(&q).is_ok());
        assert!(src.query(&q).is_ok());
        assert_eq!(
            src.query(&q),
            Err(SourceError::QueryLimitExceeded { limit: 2 })
        );
        src.reset_meter();
        assert!(src.query(&q).is_ok());
    }

    #[test]
    fn direct_source_allows_null_binding() {
        let src = DirectSource::new("oracle", relation());
        assert!(src.allows_null_binding());
        let body = src.schema().expect_attr("body");
        let q = SelectQuery::new(vec![Predicate::is_null(body)]);
        let res = src.query(&q).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id(), TupleId(2));
    }

    #[test]
    fn sources_are_safely_shareable_across_threads() {
        // The mediator may fan queries out; meters and lazy indexes sit
        // behind locks, so concurrent querying must be linearizable.
        let src = std::sync::Arc::new(WebSource::new("cars.com", relation()));
        let model = src.schema().expect_attr("model");
        let mut handles = Vec::new();
        for _ in 0..8 {
            let src = std::sync::Arc::clone(&src);
            handles.push(std::thread::spawn(move || {
                let q = SelectQuery::new(vec![Predicate::eq(model, "Z4")]);
                let mut tuples = 0;
                for _ in 0..50 {
                    tuples += src.query(&q).unwrap().len();
                }
                tuples
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 8 * 50 * 2); // two Z4 rows per query
        let m = src.meter();
        assert_eq!(m.queries, 400);
        assert_eq!(m.tuples_returned, 800);
    }

    #[test]
    fn meters_accumulate_and_reset() {
        let src = DirectSource::new("oracle", relation());
        let q = SelectQuery::all();
        src.query(&q).unwrap();
        src.query(&q).unwrap();
        let m = src.meter();
        assert_eq!(m.queries, 2);
        assert_eq!(m.tuples_returned, 8);
        src.reset_meter();
        assert_eq!(src.meter(), SourceMeter::default());
    }
}
