//! Per-source knowledge version counters.
//!
//! A mediation plan is only as good as the mined knowledge it was built
//! from: the candidate rewrites, their precision estimates, and the
//! F-measure masses all derive from a source's AFDs and classifiers. When
//! that knowledge changes — a re-mine swaps in fresh statistics, or drift
//! detection demotes the source's estimates — any plan derived from the old
//! knowledge is stale and must not be served from a cache.
//!
//! [`KnowledgeVersionClock`] is the invalidation primitive: a thread-safe,
//! monotonic counter per source name. The learn layer bumps it on re-mine
//! and on drift demotion; the plan cache folds the current version into its
//! key, so a bump silently orphans every cached plan for that source
//! without any explicit eviction.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Monotonic per-source version counters keyed by source name.
///
/// Cheap to share (`Arc`), safe to bump from any thread. Versions start at
/// zero for names that have never been bumped; they only ever increase.
#[derive(Debug, Default)]
pub struct KnowledgeVersionClock {
    inner: Mutex<BTreeMap<String, u64>>,
}

impl KnowledgeVersionClock {
    /// An empty clock: every source is at version zero.
    pub fn new() -> Self {
        KnowledgeVersionClock::default()
    }

    /// Advances `source`'s version by one and returns the new value.
    pub fn bump(&self, source: &str) -> u64 {
        let mut inner = self.inner.lock();
        let v = inner.entry(source.to_string()).or_insert(0);
        *v += 1;
        *v
    }

    /// The current version of `source` (zero if never bumped).
    pub fn current(&self, source: &str) -> u64 {
        self.inner.lock().get(source).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_start_at_zero_and_bump_monotonically() {
        let clock = KnowledgeVersionClock::new();
        assert_eq!(clock.current("cars.com"), 0);
        assert_eq!(clock.bump("cars.com"), 1);
        assert_eq!(clock.bump("cars.com"), 2);
        assert_eq!(clock.current("cars.com"), 2);
        // Independent per name.
        assert_eq!(clock.current("yahoo_autos"), 0);
        assert_eq!(clock.bump("yahoo_autos"), 1);
        assert_eq!(clock.current("cars.com"), 2);
    }

    #[test]
    fn clock_is_safely_shareable_across_threads() {
        let clock = std::sync::Arc::new(KnowledgeVersionClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let clock = std::sync::Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    clock.bump("cars.com");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.current("cars.com"), 800);
    }
}
