//! Fast, deterministic hashing for the storage engine's hot paths.
//!
//! The standard library's default hasher (SipHash with a per-process random
//! seed) costs tens of nanoseconds per short string — measurable when
//! dictionary interning, rewrite dedup, and classifier lookups hash
//! millions of values. [`FxHasher`] is the multiply-rotate hash used by
//! rustc: not DoS-resistant (irrelevant here — keys come from the mediator
//! itself, not an adversary), several times faster on short keys, and
//! *seedless*, so map iteration order is a pure function of the insertion
//! sequence. Nothing may rely on that order for output determinism, but it
//! makes accidental order-dependence reproducible instead of flaky.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-style Fx multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" cannot collide by
            // construction of the tail padding.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed through [`FxHasher`].
pub type FastHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&"body_style"), hash_of(&"body_style"));
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
    }

    #[test]
    fn distinguishes_close_keys() {
        assert_ne!(hash_of(&"Convt"), hash_of(&"Coupe"));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FastHashMap<String, usize> = FastHashMap::default();
        for (i, k) in ["a", "b", "c"].iter().enumerate() {
            m.insert(k.to_string(), i);
        }
        assert_eq!(m.get("b"), Some(&1));
        let mut s: FastHashSet<u32> = FastHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
