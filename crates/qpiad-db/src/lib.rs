//! Relational substrate for QPIAD.
//!
//! This crate implements everything QPIAD needs *below* the mediator:
//!
//! * [`value`] — nullable attribute values with a total order,
//! * [`dict`] / [`columnar`] — the storage core: per-relation value
//!   interning ([`dict::Dictionary`], null = reserved id 0) and the
//!   dictionary-encoded columnar image ([`columnar::ColumnarRelation`])
//!   every relation builds at construction; posting-list indexes,
//!   classifier training, and partition refinement all run over these
//!   dense `u32` ids,
//! * [`schema`] — typed relation schemas and attribute identifiers,
//! * [`mod@tuple`] / [`relation`] — incomplete tuples and in-memory relations,
//! * [`query`] — conjunctive selection, aggregate, and join query ASTs with
//!   *certain-answer* evaluation semantics over incomplete tuples,
//! * [`source`] — autonomous-source access layers: a [`source::WebSource`]
//!   that models the restricted query interface of a web database (no null
//!   binding, limited attribute support, metered access) and a
//!   [`source::DirectSource`] that allows null binding (used only to
//!   implement the paper's infeasible baselines),
//! * [`catalog`] — the mediator-side global-schema catalog mapping global
//!   attributes onto each source's local schema,
//! * [`fault`] — the failure model: transient-error injection
//!   ([`fault::FaultInjector`], deterministic and seeded, for tests and
//!   benches), semantic response skew ([`fault::SkewInjector`], the
//!   drift-detection counterpart: the source answers, but its value
//!   distributions have shifted), and the retry boundary
//!   ([`fault::RetryPolicy`], [`fault::query_with_retry`]) the mediator
//!   issues queries through,
//! * [`chaos`] — the composition layer over the failure model: a seeded,
//!   pure pass-number → chaos schedule ([`chaos::ChaosSchedule`]) and a
//!   source wrapper enacting it ([`chaos::ChaosSource`]), so soak tests
//!   can storm outages, skew, corruption, breaker trips, and floods
//!   together and still replay byte-identical at any thread count,
//! * [`health`] — the availability layer above retries: per-source circuit
//!   breakers ([`health::HealthRegistry`], deterministic snapshot/absorb
//!   protocol), per-pass deadline/attempt budgets
//!   ([`health::QueryBudget`]), and the injectable logical clock every
//!   mediation-path sleep goes through,
//! * [`validate`] — response validation and quarantine
//!   ([`validate::ResponseValidator`]): drops returned tuples that violate
//!   the source schema or the issued query before they can poison an
//!   answer set,
//! * [`par`] — deterministic fork–join helpers; the mediator and the miner
//!   use them to spread independent work over `QPIAD_THREADS` workers
//!   without changing any result,
//! * [`version`] — per-source monotonic knowledge-version counters
//!   ([`version::KnowledgeVersionClock`]); the learn layer bumps them on
//!   re-mine and drift demotion so knowledge-derived caches (the mediation
//!   plan cache) can never serve stale plans.
//!
//! The design goal is to reproduce the *access-pattern constraints* that
//! motivate QPIAD: a mediator can only issue bound conjunctive selection
//! queries over the attributes a source supports, and can never ask a web
//! form for "tuples where attribute X is null".

pub mod catalog;
pub mod chaos;
pub mod columnar;
pub mod dict;
pub mod error;
pub mod fault;
pub mod hash;
pub mod health;
pub mod index;
pub mod par;
pub mod query;
pub mod relation;
pub mod schema;
pub mod source;
pub mod tuple;
pub mod validate;
pub mod value;
pub mod version;

pub use catalog::{GlobalCatalog, SourceBinding};
pub use columnar::ColumnarRelation;
pub use dict::{Dictionary, ValueId};
pub use error::SourceError;
pub use hash::{FastHashMap, FastHashSet, FxHasher};
pub use fault::{query_with_retry, FaultInjector, FaultPlan, RetryPolicy, SkewInjector, SkewPlan};
pub use chaos::{ChaosConfig, ChaosSchedule, ChaosSource, PassCell, PassChaos};
pub use health::{
    install_clock, BreakerConfig, BreakerProbe, BreakerState, BreakerView, ClockGuard,
    HealthRegistry, MediationClock, Observation, PressureLevel, QueryBudget,
};
pub use index::{AttrIndex, SelectionEngine};
pub use query::{AggFunc, AggregateQuery, JoinQuery, PredOp, Predicate, SelectQuery};
pub use relation::Relation;
pub use schema::{AttrId, AttrType, Attribute, Schema};
pub use source::{AutonomousSource, DirectSource, SourceMeter, WebSource};
pub use tuple::{Tuple, TupleId};
pub use validate::{query_validated, QuarantineReason, ResponseValidator, ValidationReport};
pub use value::Value;
pub use version::KnowledgeVersionClock;
