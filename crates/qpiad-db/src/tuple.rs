//! Incomplete tuples.

use std::fmt;
use std::sync::Arc;

use crate::schema::{AttrId, Schema};
use crate::value::Value;

/// Stable identifier of a tuple within its ground-truth relation.
///
/// Tuple ids survive corruption (nulling of values), sampling, and retrieval
/// through sources, which lets the evaluation harness align an experimental
/// tuple with its ground-truth completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

/// A (possibly incomplete) tuple: one value per schema attribute.
///
/// The value slice is shared (`Arc<[Value]>`), so cloning a tuple — the
/// operation the mediation executor performs when fanning retrieval results
/// into answer sets — is a reference-count bump, not a per-value copy.
/// Answers materialize by cloning these shared handles at the answer
/// boundary; nothing re-allocates the values themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    id: TupleId,
    values: Arc<[Value]>,
}

impl Tuple {
    /// Creates a tuple with the given id and values.
    pub fn new(id: TupleId, values: Vec<Value>) -> Self {
        Tuple { id, values: values.into() }
    }

    /// The tuple's stable identifier.
    pub fn id(&self) -> TupleId {
        self.id
    }

    /// The value of attribute `attr`.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range.
    pub fn value(&self, attr: AttrId) -> &Value {
        &self.values[attr.0]
    }

    /// All values in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// A tuple is *complete* iff it has no null value (Definition 1).
    pub fn is_complete(&self) -> bool {
        !self.values.iter().any(Value::is_null)
    }

    /// Attributes whose value is null.
    pub fn null_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_null())
            .map(|(i, _)| AttrId(i))
    }

    /// Number of nulls among the given attributes. QPIAD ranks only
    /// possible answers with at most one null over the constrained
    /// attributes; the rest are output unranked (paper, Assumptions).
    pub fn null_count_among(&self, attrs: &[AttrId]) -> usize {
        attrs
            .iter()
            .filter(|a| self.values[a.0].is_null())
            .count()
    }

    /// Returns a copy with `attr` set to `value`.
    pub fn with_value(&self, attr: AttrId, value: Value) -> Tuple {
        let mut values = self.values.to_vec();
        values[attr.0] = value;
        Tuple { id: self.id, values: values.into() }
    }

    /// `true` iff `completion` agrees with this tuple on every non-null
    /// attribute of this tuple — i.e. `completion ∈ C(self)` in the paper's
    /// notation (Definition 1), assuming `completion` is complete.
    pub fn is_completion_of(completion: &Tuple, incomplete: &Tuple) -> bool {
        if completion.arity() != incomplete.arity() || !completion.is_complete() {
            return false;
        }
        incomplete
            .values
            .iter()
            .zip(completion.values.iter())
            .all(|(inc, comp)| inc.is_null() || inc == comp)
    }

    /// Renders the tuple against a schema, for diagnostics.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> TupleDisplay<'a> {
        TupleDisplay { tuple: self, schema }
    }

    /// Projects the tuple onto the given attributes, returning the values in
    /// the order requested.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|a| self.values[a.0].clone()).collect()
    }
}

/// Helper for rendering a tuple with attribute names.
pub struct TupleDisplay<'a> {
    tuple: &'a Tuple,
    schema: &'a Schema,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.tuple.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", self.schema.attributes()[i].name(), v)?;
        }
        write!(f, ")")
    }
}

/// Convenience builder used by generators: construct a tuple for a schema
/// from `(name, value)` pairs, with all unmentioned attributes null.
pub fn tuple_from_pairs(schema: &Arc<Schema>, id: u32, pairs: &[(&str, Value)]) -> Tuple {
    let mut values = vec![Value::Null; schema.arity()];
    for (name, v) in pairs {
        let attr = schema.expect_attr(name);
        values[attr.0] = v.clone();
    }
    Tuple::new(TupleId(id), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn schema() -> Arc<Schema> {
        Schema::of(
            "cars",
            &[
                ("make", AttrType::Categorical),
                ("model", AttrType::Categorical),
                ("year", AttrType::Integer),
            ],
        )
    }

    fn t(id: u32, make: Value, model: Value, year: Value) -> Tuple {
        Tuple::new(TupleId(id), vec![make, model, year])
    }

    #[test]
    fn completeness() {
        let complete = t(0, Value::str("Honda"), Value::str("Civic"), Value::int(2004));
        let incomplete = t(1, Value::Null, Value::str("Civic"), Value::int(2004));
        assert!(complete.is_complete());
        assert!(!incomplete.is_complete());
        assert_eq!(
            incomplete.null_attrs().collect::<Vec<_>>(),
            vec![AttrId(0)]
        );
    }

    #[test]
    fn null_count_among_constrained() {
        let tup = t(0, Value::Null, Value::str("Civic"), Value::Null);
        assert_eq!(tup.null_count_among(&[AttrId(0), AttrId(2)]), 2);
        assert_eq!(tup.null_count_among(&[AttrId(1)]), 0);
        assert_eq!(tup.null_count_among(&[AttrId(0), AttrId(1)]), 1);
    }

    #[test]
    fn completions() {
        let incomplete = t(1, Value::Null, Value::str("Civic"), Value::int(2004));
        let good = t(2, Value::str("Honda"), Value::str("Civic"), Value::int(2004));
        let bad_model = t(3, Value::str("Honda"), Value::str("Accord"), Value::int(2004));
        let also_incomplete = t(4, Value::str("Honda"), Value::str("Civic"), Value::Null);
        assert!(Tuple::is_completion_of(&good, &incomplete));
        assert!(!Tuple::is_completion_of(&bad_model, &incomplete));
        assert!(!Tuple::is_completion_of(&also_incomplete, &incomplete));
    }

    #[test]
    fn with_value_replaces_without_mutation() {
        let tup = t(0, Value::Null, Value::str("Civic"), Value::int(2004));
        let fixed = tup.with_value(AttrId(0), Value::str("Honda"));
        assert!(fixed.is_complete());
        assert!(!tup.is_complete());
        assert_eq!(fixed.id(), tup.id());
    }

    #[test]
    fn projection_and_display() {
        let s = schema();
        let tup = t(0, Value::str("Honda"), Value::str("Civic"), Value::int(2004));
        assert_eq!(
            tup.project(&[AttrId(2), AttrId(0)]),
            vec![Value::int(2004), Value::str("Honda")]
        );
        assert_eq!(
            tup.display(&s).to_string(),
            "(make=Honda, model=Civic, year=2004)"
        );
    }

    #[test]
    fn builder_fills_unmentioned_with_null() {
        let s = schema();
        let tup = tuple_from_pairs(&s, 9, &[("model", Value::str("A4"))]);
        assert_eq!(tup.id(), TupleId(9));
        assert!(tup.value(AttrId(0)).is_null());
        assert_eq!(tup.value(AttrId(1)), &Value::str("A4"));
        assert!(tup.value(AttrId(2)).is_null());
    }
}
