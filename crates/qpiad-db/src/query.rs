//! Query ASTs and certain-answer evaluation semantics.
//!
//! QPIAD's query classes (paper §4): conjunctive selection queries
//! ([`SelectQuery`]), aggregate queries ([`AggregateQuery`]) and two-way join
//! queries ([`JoinQuery`]). Predicates are *bound*: equality and range
//! (`BETWEEN`) over a single attribute. The special [`PredOp::IsNull`]
//! predicate exists only so that the paper's infeasible baselines
//! (AllReturned / AllRanked) can be expressed against a
//! [`crate::source::DirectSource`]; web sources reject it.

use std::fmt;

use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// A predicate operator over one attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredOp {
    /// `attr = value`.
    Eq(Value),
    /// `attr BETWEEN lo AND hi` (inclusive). Values compare with
    /// [`Value`]'s total order; in practice both bounds are integers.
    Between(Value, Value),
    /// `attr IS NULL` — *null binding*. Web databases do not support this
    /// pattern (paper §1); only [`crate::source::DirectSource`] honors it.
    IsNull,
}

impl PredOp {
    /// Certain satisfaction of this operator by a single value.
    ///
    /// A null value never certainly satisfies `Eq`/`Between`, and only a null
    /// satisfies `IsNull`.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PredOp::Eq(want) => !v.is_null() && v == want,
            PredOp::Between(lo, hi) => !v.is_null() && lo <= v && v <= hi,
            PredOp::IsNull => v.is_null(),
        }
    }

    /// `true` iff the operator requires binding a null (unsupported by web
    /// form interfaces).
    pub fn is_null_binding(&self) -> bool {
        matches!(self, PredOp::IsNull)
    }
}

/// A single `attr op` predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The constrained attribute.
    pub attr: AttrId,
    /// The operator and comparison value(s).
    pub op: PredOp,
}

impl Predicate {
    /// `attr = value`.
    pub fn eq(attr: AttrId, value: impl Into<Value>) -> Self {
        Predicate { attr, op: PredOp::Eq(value.into()) }
    }

    /// `attr BETWEEN lo AND hi`.
    pub fn between(attr: AttrId, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate { attr, op: PredOp::Between(lo.into(), hi.into()) }
    }

    /// `attr IS NULL`.
    pub fn is_null(attr: AttrId) -> Self {
        Predicate { attr, op: PredOp::IsNull }
    }

    /// Certain satisfaction by a tuple.
    pub fn matches(&self, t: &Tuple) -> bool {
        self.op.matches(t.value(self.attr))
    }

    /// Renders the predicate against a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Predicate, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let name = self.1.attr(self.0.attr).name();
                match &self.0.op {
                    PredOp::Eq(v) => write!(f, "{name}={v}"),
                    PredOp::Between(lo, hi) => write!(f, "{name} between {lo} and {hi}"),
                    PredOp::IsNull => write!(f, "{name} is null"),
                }
            }
        }
        D(self, schema)
    }
}

/// A conjunctive selection query `σ_{p1 ∧ p2 ∧ ...}` with projection over
/// all attributes (the paper assumes full projection, §4 footnote).
///
/// ```
/// use qpiad_db::{AttrType, Predicate, Schema, SelectQuery, Tuple, TupleId, Value};
///
/// let schema = Schema::of("cars", &[
///     ("model", AttrType::Categorical),
///     ("body", AttrType::Categorical),
/// ]);
/// let body = schema.expect_attr("body");
/// let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
///
/// let convt = Tuple::new(TupleId(0), vec![Value::str("Z4"), Value::str("Convt")]);
/// let unknown = Tuple::new(TupleId(1), vec![Value::str("Z4"), Value::Null]);
/// assert!(q.matches(&convt));           // certain answer
/// assert!(q.possibly_matches(&unknown)); // possible answer: null body
/// assert!(!q.matches(&unknown));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SelectQuery {
    predicates: Vec<Predicate>,
}

/// The canonical predicate order: attribute, then operator kind, then
/// comparison values.
fn predicate_cmp(a: &Predicate, b: &Predicate) -> std::cmp::Ordering {
    fn op_rank(op: &PredOp) -> u8 {
        match op {
            PredOp::Between(..) => 0,
            PredOp::Eq(_) => 1,
            PredOp::IsNull => 2,
        }
    }
    a.attr
        .cmp(&b.attr)
        .then_with(|| op_rank(&a.op).cmp(&op_rank(&b.op)))
        .then_with(|| match (&a.op, &b.op) {
            (PredOp::Eq(x), PredOp::Eq(y)) => x.cmp(y),
            (PredOp::Between(xl, xh), PredOp::Between(yl, yh)) => {
                xl.cmp(yl).then_with(|| xh.cmp(yh))
            }
            _ => std::cmp::Ordering::Equal,
        })
}

impl SelectQuery {
    /// The empty query (matches every tuple).
    pub fn all() -> Self {
        SelectQuery { predicates: Vec::new() }
    }

    /// Builds a query from predicates. Predicates are stored in a canonical
    /// order (by attribute, then operator kind, then comparison values) so
    /// that structurally equal queries compare and hash equal regardless of
    /// construction order. The order is structural — no per-comparison
    /// string formatting, since every rewritten query and plan-cache key
    /// passes through here.
    pub fn new(mut predicates: Vec<Predicate>) -> Self {
        predicates.sort_by(predicate_cmp);
        SelectQuery { predicates }
    }

    /// Total structural order over queries: lexicographic over the
    /// canonical predicate lists, shorter query first on a shared prefix.
    /// Used as a deterministic tiebreak by the rewrite ranker — consistent
    /// with `Eq` (equal queries compare `Equal`) and allocation-free.
    pub fn structural_cmp(&self, other: &Self) -> std::cmp::Ordering {
        let mut ab = self.predicates.iter().zip(other.predicates.iter());
        ab.find_map(|(a, b)| match predicate_cmp(a, b) {
            std::cmp::Ordering::Equal => None,
            ord => Some(ord),
        })
        .unwrap_or_else(|| self.predicates.len().cmp(&other.predicates.len()))
    }

    /// Adds a predicate, returning the extended query.
    pub fn and(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        SelectQuery::new(self.predicates)
    }

    /// The query's predicates in canonical order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The set of constrained attributes (deduplicated, in order).
    pub fn constrained_attrs(&self) -> Vec<AttrId> {
        let mut out: Vec<AttrId> = Vec::with_capacity(self.predicates.len());
        for p in &self.predicates {
            if !out.contains(&p.attr) {
                out.push(p.attr);
            }
        }
        out
    }

    /// The predicate on `attr`, if any.
    pub fn predicate_on(&self, attr: AttrId) -> Option<&Predicate> {
        self.predicates.iter().find(|p| p.attr == attr)
    }

    /// Certain satisfaction: the tuple satisfies *every* predicate with a
    /// non-null (or, for `IsNull`, null) value. This is Definition 2's
    /// "certain answer" test.
    pub fn matches(&self, t: &Tuple) -> bool {
        self.predicates.iter().all(|p| p.matches(t))
    }

    /// Possible-answer test (Definition 2, generalized to conjunctions):
    /// the tuple has a null on at least one constrained attribute and
    /// certainly satisfies all predicates on its non-null attributes.
    pub fn possibly_matches(&self, t: &Tuple) -> bool {
        let mut saw_null = false;
        for p in &self.predicates {
            let v = t.value(p.attr);
            if v.is_null() {
                if p.op.is_null_binding() {
                    // IsNull is satisfied by a null; not a "possible" match.
                    continue;
                }
                saw_null = true;
            } else if !p.matches(t) {
                return false;
            }
        }
        saw_null
    }

    /// `true` iff any predicate requires null binding.
    pub fn requires_null_binding(&self) -> bool {
        self.predicates.iter().any(|p| p.op.is_null_binding())
    }

    /// Renders the query against a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a SelectQuery, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "σ[")?;
                for (i, p) in self.0.predicates.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{}", p.display(self.1))?;
                }
                write!(f, "]")
            }
        }
        D(self, schema)
    }
}

/// Aggregation functions supported by QPIAD's aggregate handling (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `SUM(attr)`.
    Sum,
    /// `AVG(attr)`.
    Avg,
}

/// An aggregate query: a selection plus an aggregation function.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateQuery {
    /// The selection whose result is aggregated.
    pub select: SelectQuery,
    /// The aggregation function.
    pub func: AggFunc,
    /// The aggregated attribute (`None` for `COUNT(*)`).
    pub attr: Option<AttrId>,
}

impl AggregateQuery {
    /// `COUNT(*)` over a selection.
    pub fn count(select: SelectQuery) -> Self {
        AggregateQuery { select, func: AggFunc::Count, attr: None }
    }

    /// `SUM(attr)` over a selection.
    pub fn sum(select: SelectQuery, attr: AttrId) -> Self {
        AggregateQuery { select, func: AggFunc::Sum, attr: Some(attr) }
    }

    /// `AVG(attr)` over a selection.
    pub fn avg(select: SelectQuery, attr: AttrId) -> Self {
        AggregateQuery { select, func: AggFunc::Avg, attr: Some(attr) }
    }

    /// Evaluates the aggregate over an iterator of tuples, skipping tuples
    /// whose aggregated attribute is null (SQL semantics).
    pub fn evaluate<'a>(&self, tuples: impl Iterator<Item = &'a Tuple>) -> f64 {
        let mut count = 0u64;
        let mut sum = 0f64;
        for t in tuples {
            match self.attr {
                None => count += 1,
                Some(a) => {
                    if let Some(v) = t.value(a).as_int() {
                        count += 1;
                        sum += v as f64;
                    }
                }
            }
        }
        match self.func {
            AggFunc::Count => count as f64,
            AggFunc::Sum => sum,
            AggFunc::Avg => {
                if count == 0 {
                    0.0
                } else {
                    sum / count as f64
                }
            }
        }
    }
}

/// A two-way join query over two sources, each side with its own selection,
/// equi-joined on one attribute per side (§4.5).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// Selection over the left relation.
    pub left: SelectQuery,
    /// Selection over the right relation.
    pub right: SelectQuery,
    /// Join attribute in the left relation's schema.
    pub left_attr: AttrId,
    /// Join attribute in the right relation's schema.
    pub right_attr: AttrId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use crate::tuple::TupleId;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::of(
            "cars",
            &[
                ("make", AttrType::Categorical),
                ("model", AttrType::Categorical),
                ("year", AttrType::Integer),
                ("price", AttrType::Integer),
            ],
        )
    }

    fn tup(make: &str, model: &str, year: i64, price: i64) -> Tuple {
        Tuple::new(
            TupleId(0),
            vec![
                Value::str(make),
                Value::str(model),
                Value::int(year),
                Value::int(price),
            ],
        )
    }

    fn tup_null_make(model: &str, year: i64) -> Tuple {
        Tuple::new(
            TupleId(1),
            vec![
                Value::Null,
                Value::str(model),
                Value::int(year),
                Value::int(10_000),
            ],
        )
    }

    #[test]
    fn eq_predicate_certain_semantics() {
        let s = schema();
        let make = s.expect_attr("make");
        let p = Predicate::eq(make, "Honda");
        assert!(p.matches(&tup("Honda", "Civic", 2004, 9000)));
        assert!(!p.matches(&tup("Toyota", "Camry", 2002, 9000)));
        // Null never certainly matches a bound predicate.
        assert!(!p.matches(&tup_null_make("Civic", 2004)));
    }

    #[test]
    fn between_predicate() {
        let s = schema();
        let price = s.expect_attr("price");
        let p = Predicate::between(price, 8000i64, 9500i64);
        assert!(p.matches(&tup("Honda", "Civic", 2004, 9000)));
        assert!(p.matches(&tup("Honda", "Civic", 2004, 8000)));
        assert!(p.matches(&tup("Honda", "Civic", 2004, 9500)));
        assert!(!p.matches(&tup("Honda", "Civic", 2004, 9501)));
    }

    #[test]
    fn is_null_predicate() {
        let s = schema();
        let make = s.expect_attr("make");
        let p = Predicate::is_null(make);
        assert!(p.matches(&tup_null_make("Civic", 2004)));
        assert!(!p.matches(&tup("Honda", "Civic", 2004, 9000)));
        assert!(p.op.is_null_binding());
    }

    #[test]
    fn query_canonical_order_makes_structural_equality() {
        let s = schema();
        let make = s.expect_attr("make");
        let year = s.expect_attr("year");
        let q1 = SelectQuery::new(vec![Predicate::eq(make, "Honda"), Predicate::eq(year, 2004i64)]);
        let q2 = SelectQuery::new(vec![Predicate::eq(year, 2004i64), Predicate::eq(make, "Honda")]);
        assert_eq!(q1, q2);
    }

    #[test]
    fn possible_answer_semantics() {
        let s = schema();
        let make = s.expect_attr("make");
        let year = s.expect_attr("year");
        let q = SelectQuery::new(vec![Predicate::eq(make, "Honda"), Predicate::eq(year, 2004i64)]);

        // Certain answer: not a possible answer.
        assert!(q.matches(&tup("Honda", "Civic", 2004, 9000)));
        assert!(!q.possibly_matches(&tup("Honda", "Civic", 2004, 9000)));

        // Null on make, other predicate satisfied: a possible answer.
        assert!(q.possibly_matches(&tup_null_make("Civic", 2004)));
        // Null on make but year contradicts: not even possible.
        assert!(!q.possibly_matches(&tup_null_make("Civic", 1999)));
    }

    #[test]
    fn constrained_attrs_dedup() {
        let s = schema();
        let price = s.expect_attr("price");
        let q = SelectQuery::new(vec![
            Predicate::between(price, 1i64, 10i64),
            Predicate::eq(price, 5i64),
        ]);
        assert_eq!(q.constrained_attrs(), vec![price]);
    }

    #[test]
    fn aggregate_eval() {
        let s = schema();
        let price = s.expect_attr("price");
        let ts = [
            tup("Honda", "Civic", 2004, 9000),
            tup("Honda", "Civic", 2004, 11000),
            tup_null_make("Civic", 2004), // price = 10000
        ];
        let count = AggregateQuery::count(SelectQuery::all());
        assert_eq!(count.evaluate(ts.iter()), 3.0);
        let sum = AggregateQuery::sum(SelectQuery::all(), price);
        assert_eq!(sum.evaluate(ts.iter()), 30_000.0);
        let avg = AggregateQuery::avg(SelectQuery::all(), price);
        assert_eq!(avg.evaluate(ts.iter()), 10_000.0);
    }

    #[test]
    fn aggregate_skips_null_agg_attr() {
        let s = schema();
        let price = s.expect_attr("price");
        let mut t = tup("Honda", "Civic", 2004, 9000);
        t = t.with_value(price, Value::Null);
        let sum = AggregateQuery::sum(SelectQuery::all(), price);
        assert_eq!(sum.evaluate(std::iter::once(&t)), 0.0);
        let avg = AggregateQuery::avg(SelectQuery::all(), price);
        assert_eq!(avg.evaluate(std::iter::once(&t)), 0.0);
    }

    #[test]
    fn display_renders() {
        let s = schema();
        let q = SelectQuery::new(vec![
            Predicate::eq(s.expect_attr("model"), "A4"),
            Predicate::between(s.expect_attr("price"), 1000i64, 2000i64),
        ]);
        let text = q.display(&s).to_string();
        assert!(text.contains("model=A4"), "{text}");
        assert!(text.contains("price between 1000 and 2000"), "{text}");
    }
}
