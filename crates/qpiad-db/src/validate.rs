//! Response validation and quarantine.
//!
//! An autonomous source is a black box: the mediator has no contract that
//! what comes back actually matches what was asked. A source mid-schema-
//! migration, a scraper drifting against a redesigned form, or a cache
//! serving a stale result set can all return tuples that are *shaped*
//! wrong — wrong arity, wrong types, or violating the very predicates the
//! query bound. Trusting them would poison certain answers (which are
//! supposed to be guaranteed, §3) and corrupt the ranked possible answers'
//! precision estimates.
//!
//! [`ResponseValidator`] checks every returned tuple against the source
//! schema and the *issued* query (the rewritten, source-local query — not
//! the user query, whose predicates a rewrite intentionally relaxes):
//!
//! * **arity** — the tuple has exactly the schema's attribute count;
//! * **domain membership** — each non-null value's type matches its
//!   attribute's declared [`AttrType`];
//! * **bound attributes** — an attribute the query constrained with a
//!   value predicate is not null (web forms cannot bind nulls, so a null
//!   there means the source ignored the predicate);
//! * **predicate satisfaction** — each constrained value certainly
//!   satisfies its predicate under [`PredOp::matches`].
//!
//! Offenders are **quarantined** — dropped from the answer set, counted on
//! the [`SourceMeter`](crate::source::SourceMeter) and tagged with a
//! [`QuarantineReason`]; a response containing any quarantined tuple also
//! counts as a [`Failure`](crate::health::Observation::Failure) against the
//! source's circuit breaker, so persistent drift eventually opens it.
//! Healthy sources pass every check, so validation is always on.

use std::sync::Arc;

use crate::error::SourceError;
use crate::fault::{query_with_retry, RetryPolicy};
use crate::query::{PredOp, SelectQuery};
use crate::schema::{AttrType, Schema};
use crate::source::AutonomousSource;
use crate::tuple::Tuple;
use crate::value::Value;

/// Why a tuple was quarantined. The stable string [`Self::code`] is what
/// surfaces in logs and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The tuple's width disagrees with the source schema.
    ArityMismatch {
        /// The schema's arity.
        expected: usize,
        /// The tuple's arity.
        got: usize,
    },
    /// A non-null value's type disagrees with its attribute's domain.
    TypeMismatch {
        /// Index of the offending attribute.
        attr: usize,
    },
    /// The issued query bound this attribute to a value, but the source
    /// returned null there — it cannot have evaluated the predicate.
    NullBoundAttr {
        /// Index of the offending attribute.
        attr: usize,
    },
    /// The value fails the predicate the issued query bound on it.
    PredicateViolation {
        /// Index of the offending attribute.
        attr: usize,
    },
}

impl QuarantineReason {
    /// The stable reason code: `arity-mismatch`, `type-mismatch`,
    /// `null-bound-attr` or `predicate-violation`.
    pub fn code(&self) -> &'static str {
        match self {
            QuarantineReason::ArityMismatch { .. } => "arity-mismatch",
            QuarantineReason::TypeMismatch { .. } => "type-mismatch",
            QuarantineReason::NullBoundAttr { .. } => "null-bound-attr",
            QuarantineReason::PredicateViolation { .. } => "predicate-violation",
        }
    }
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::ArityMismatch { expected, got } => {
                write!(f, "arity-mismatch: expected {expected} values, got {got}")
            }
            QuarantineReason::TypeMismatch { attr } => {
                write!(f, "type-mismatch: attribute {attr} outside its domain")
            }
            QuarantineReason::NullBoundAttr { attr } => {
                write!(f, "null-bound-attr: bound attribute {attr} returned null")
            }
            QuarantineReason::PredicateViolation { attr } => {
                write!(f, "predicate-violation: attribute {attr} fails its predicate")
            }
        }
    }
}

/// The outcome of validating one response: the tuples that passed, in
/// their original order, and the quarantined offenders with reasons.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// Tuples that passed every check, in response order.
    pub kept: Vec<Tuple>,
    /// Quarantined tuples with the first check each one failed.
    pub quarantined: Vec<(Tuple, QuarantineReason)>,
}

impl ValidationReport {
    /// How many tuples were quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// `true` iff nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Checks source responses against the schema and the issued query.
/// Stateless; one instance serves any number of sources.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResponseValidator;

impl ResponseValidator {
    /// Checks one tuple; `Err` carries the first violated rule.
    pub fn check(
        &self,
        schema: &Schema,
        query: &SelectQuery,
        t: &Tuple,
    ) -> Result<(), QuarantineReason> {
        // Arity first: every later check indexes into the tuple.
        if t.arity() != schema.arity() {
            return Err(QuarantineReason::ArityMismatch {
                expected: schema.arity(),
                got: t.arity(),
            });
        }
        for (attr, value) in schema.attr_ids().zip(t.values()) {
            let ok = matches!(
                (schema.attr(attr).ty(), value),
                (_, Value::Null)
                    | (AttrType::Integer, Value::Int(_))
                    | (AttrType::Categorical, Value::Str(_))
            );
            if !ok {
                return Err(QuarantineReason::TypeMismatch { attr: attr.index() });
            }
        }
        for p in query.predicates() {
            let Some(v) = t.values().get(p.attr.index()) else {
                // Unreachable after the arity check unless the query came
                // from a wider schema; treat as a violation, never panic.
                return Err(QuarantineReason::PredicateViolation { attr: p.attr.index() });
            };
            if v.is_null() {
                if !matches!(p.op, PredOp::IsNull) {
                    return Err(QuarantineReason::NullBoundAttr { attr: p.attr.index() });
                }
            } else if !p.op.matches(v) {
                return Err(QuarantineReason::PredicateViolation { attr: p.attr.index() });
            }
        }
        Ok(())
    }

    /// Validates a whole response, splitting it into kept and quarantined.
    pub fn validate(
        &self,
        schema: &Schema,
        query: &SelectQuery,
        tuples: Vec<Tuple>,
    ) -> ValidationReport {
        let mut report = ValidationReport::default();
        for t in tuples {
            match self.check(schema, query, &t) {
                Ok(()) => report.kept.push(t),
                Err(reason) => report.quarantined.push((t, reason)),
            }
        }
        report
    }
}

/// Issues `q` through the retry boundary and validates the response
/// against the source's schema and the issued query. Quarantined tuples
/// are counted on the source's meter
/// ([`note_quarantined`](AutonomousSource::note_quarantined)); the caller
/// decides whether a dirty response also feeds the circuit breaker.
pub fn query_validated(
    source: &dyn AutonomousSource,
    q: &SelectQuery,
    policy: &RetryPolicy,
) -> Result<ValidationReport, SourceError> {
    let tuples = query_with_retry(source, q, policy)?;
    let schema: &Arc<Schema> = source.schema();
    let report = ResponseValidator.validate(schema, q, tuples);
    if !report.is_clean() {
        source.note_quarantined(report.quarantined_count());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::relation::Relation;
    use crate::source::WebSource;
    use crate::tuple::TupleId;

    fn schema() -> Arc<Schema> {
        Schema::of("cars", &[("model", AttrType::Categorical), ("year", AttrType::Integer)])
    }

    fn tuple(id: u32, model: Value, year: Value) -> Tuple {
        Tuple::new(TupleId(id), vec![model, year])
    }

    #[test]
    fn clean_tuples_pass_untouched() {
        let s = schema();
        let q = SelectQuery::new(vec![Predicate::eq(AttrId(0), "A4")]);
        let tuples = vec![
            tuple(1, Value::from("A4"), Value::Int(2002)),
            tuple(2, Value::from("A4"), Value::Null),
        ];
        let report = ResponseValidator.validate(&s, &q, tuples.clone());
        assert!(report.is_clean());
        assert_eq!(report.kept, tuples);
    }

    use crate::schema::AttrId;

    #[test]
    fn arity_mismatch_is_quarantined_not_a_panic() {
        let s = schema();
        let q = SelectQuery::all();
        let short = Tuple::new(TupleId(1), vec![Value::from("A4")]);
        let report = ResponseValidator.validate(&s, &q, vec![short]);
        assert_eq!(report.quarantined_count(), 1);
        let reason = report.quarantined[0].1;
        assert_eq!(reason, QuarantineReason::ArityMismatch { expected: 2, got: 1 });
        assert_eq!(reason.code(), "arity-mismatch");
    }

    #[test]
    fn type_mismatch_is_quarantined() {
        let s = schema();
        let q = SelectQuery::all();
        let drifted = tuple(1, Value::Int(7), Value::Int(2002));
        let report = ResponseValidator.validate(&s, &q, vec![drifted]);
        assert_eq!(report.quarantined[0].1, QuarantineReason::TypeMismatch { attr: 0 });
        assert_eq!(report.quarantined[0].1.code(), "type-mismatch");
    }

    #[test]
    fn null_on_a_bound_attribute_is_quarantined() {
        let s = schema();
        let q = SelectQuery::new(vec![Predicate::eq(AttrId(0), "A4")]);
        let leaked = tuple(1, Value::Null, Value::Int(2002));
        let report = ResponseValidator.validate(&s, &q, vec![leaked]);
        assert_eq!(report.quarantined[0].1, QuarantineReason::NullBoundAttr { attr: 0 });
        assert_eq!(report.quarantined[0].1.code(), "null-bound-attr");
        // The same null under an explicit IS NULL query is legitimate.
        let q_null = SelectQuery::new(vec![Predicate::is_null(AttrId(0))]);
        let leaked = tuple(1, Value::Null, Value::Int(2002));
        assert!(ResponseValidator.check(&s, &q_null, &leaked).is_ok());
    }

    #[test]
    fn predicate_violation_is_quarantined() {
        let s = schema();
        let q = SelectQuery::new(vec![Predicate::eq(AttrId(0), "A4")]);
        let wrong = tuple(1, Value::from("Z4"), Value::Int(2002));
        let report = ResponseValidator.validate(&s, &q, vec![wrong]);
        assert_eq!(report.quarantined[0].1, QuarantineReason::PredicateViolation { attr: 0 });
        assert_eq!(report.quarantined[0].1.code(), "predicate-violation");
    }

    #[test]
    fn query_validated_meters_quarantined_tuples() {
        // A well-behaved WebSource never returns an invalid tuple, so
        // query_validated must leave its meter's quarantine count at zero.
        let s = schema();
        let tuples = vec![
            tuple(0, Value::from("A4"), Value::Int(2002)),
            tuple(1, Value::from("Z4"), Value::Null),
        ];
        let source = WebSource::new("cars", Relation::new(s, tuples));
        let q = SelectQuery::new(vec![Predicate::eq(AttrId(0), "A4")]);
        let report = query_validated(&source, &q, &RetryPolicy::none()).expect("served");
        assert!(report.is_clean());
        assert_eq!(report.kept.len(), 1);
        assert_eq!(source.meter().quarantined, 0);
    }
}
