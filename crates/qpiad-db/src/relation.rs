//! In-memory relations.

use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

use crate::columnar::ColumnarRelation;
use crate::error::SourceError;
use crate::query::SelectQuery;
use crate::schema::{AttrId, Schema};
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;

/// An in-memory relation: a schema plus a vector of (possibly incomplete)
/// tuples, mirrored by a dictionary-interned columnar image.
///
/// The columnar image is built once at construction and shared by clones
/// (cloning copies the `Arc`, not the columns). Mutating the tuples through
/// [`Relation::tuples_mut`] invalidates it; the next access rebuilds.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
    columnar: OnceLock<Arc<ColumnarRelation>>,
}

/// Summary statistics mirroring the paper's Table 1: how incomplete a
/// database is, overall and per attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct IncompletenessStats {
    /// Total number of tuples.
    pub total_tuples: usize,
    /// Fraction of tuples with at least one null.
    pub incomplete_fraction: f64,
    /// Per-attribute fraction of tuples with a null on that attribute,
    /// indexed by attribute position.
    pub missing_fraction: Vec<f64>,
}

impl Relation {
    /// Creates a relation.
    ///
    /// # Panics
    ///
    /// Panics if a tuple's arity does not match the schema.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        Self::try_new(schema, tuples).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Relation::new`]: a tuple whose arity does not
    /// match the schema yields an error instead of aborting, so ingestion
    /// paths (`qpiad_data::io`) can degrade gracefully on malformed rows.
    pub fn try_new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Self, SourceError> {
        for t in &tuples {
            if t.arity() != schema.arity() {
                return Err(SourceError::Internal {
                    message: format!(
                        "tuple {:?} arity {} does not match schema `{}` arity {}",
                        t.id(),
                        t.arity(),
                        schema.name(),
                        schema.arity()
                    ),
                });
            }
        }
        let columnar = Arc::new(ColumnarRelation::build(schema.arity(), &tuples));
        // Canonicalize every cell through the dictionary: equal values then
        // share one allocation relation-wide, so downstream dedup can prove
        // equality by pointer identity instead of re-hashing string bytes.
        let dict = columnar.dict();
        let tuples: Vec<Tuple> = tuples
            .into_iter()
            .enumerate()
            .map(|(row, t)| {
                let values: Vec<Value> = (0..schema.arity())
                    .map(|a| dict.resolve(columnar.vid_at(row, AttrId(a))).clone())
                    .collect();
                Tuple::new(t.id(), values)
            })
            .collect();
        let cell = OnceLock::new();
        let _ = cell.set(columnar);
        Ok(Relation { schema, tuples, columnar: cell })
    }

    /// An empty relation over the schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Relation { schema, tuples: Vec::new(), columnar: OnceLock::new() }
    }

    /// The dictionary-interned columnar image of this relation, building it
    /// if a mutation invalidated the one made at construction.
    pub fn columnar(&self) -> &Arc<ColumnarRelation> {
        self.columnar.get_or_init(|| {
            Arc::new(ColumnarRelation::build(self.schema.arity(), &self.tuples))
        })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Mutable access, used by corruption injection. Invalidates the
    /// columnar image; the next [`Relation::columnar`] call rebuilds it.
    pub fn tuples_mut(&mut self) -> &mut Vec<Tuple> {
        self.columnar = OnceLock::new();
        &mut self.tuples
    }

    /// Looks up a tuple by its stable id (linear scan fallback; ids are
    /// assigned densely by generators so we first try direct indexing).
    pub fn by_id(&self, id: TupleId) -> Option<&Tuple> {
        let guess = id.0 as usize;
        if let Some(t) = self.tuples.get(guess) {
            if t.id() == id {
                return Some(t);
            }
        }
        self.tuples.iter().find(|t| t.id() == id)
    }

    /// Certain answers of a selection query, in relation order.
    pub fn select(&self, q: &SelectQuery) -> Vec<Tuple> {
        self.tuples.iter().filter(|t| q.matches(t)).cloned().collect()
    }

    /// Number of certain answers (used for selectivity estimation without
    /// materializing).
    pub fn count(&self, q: &SelectQuery) -> usize {
        self.tuples.iter().filter(|t| q.matches(t)).count()
    }

    /// Distinct value combinations of `attrs` among the given tuples,
    /// skipping combinations that contain a null (a null determining-set
    /// value cannot be used to build a rewritten query). Combinations are
    /// returned in first-appearance order.
    pub fn distinct_projections(tuples: &[Tuple], attrs: &[AttrId]) -> Vec<Vec<Value>> {
        // Single-attribute determining sets are the common case (§5.2's
        // best-AFD feature selection usually lands on one attribute):
        // dedup on the bare value, skipping the per-tuple `Vec` wrapper
        // the general path hashes.
        if let [attr] = attrs {
            let mut seen: crate::hash::FastHashSet<&Value> = crate::hash::FastHashSet::default();
            // Pointer front-cache: tuples materialized from one
            // dictionary-interned relation share the `Arc` for equal
            // strings, so a repeated pointer proves a repeated value
            // without re-hashing the string bytes. A distinct pointer
            // still goes through the value set, so the result is exact
            // even for equal-but-separately-allocated values.
            let mut seen_ptrs: crate::hash::FastHashSet<usize> =
                crate::hash::FastHashSet::default();
            let mut out = Vec::new();
            for t in tuples {
                let v = t.value(*attr);
                match v {
                    Value::Null => continue,
                    Value::Str(s) => {
                        let ptr = std::sync::Arc::as_ptr(s) as *const u8 as usize;
                        if !seen_ptrs.insert(ptr) {
                            continue;
                        }
                    }
                    Value::Int(_) => {}
                }
                if seen.insert(v) {
                    out.push(vec![v.clone()]);
                }
            }
            return out;
        }
        // Dedup on borrowed projections: cloning values (and their interned
        // strings' refcounts) only for the few first appearances, not for
        // every tuple of a large base set.
        let mut seen: crate::hash::FastHashSet<Vec<&Value>> = crate::hash::FastHashSet::default();
        let mut out = Vec::new();
        let mut combo: Vec<&Value> = Vec::with_capacity(attrs.len());
        for t in tuples {
            combo.clear();
            combo.extend(attrs.iter().map(|a| t.value(*a)));
            if combo.iter().any(|v| v.is_null()) {
                continue;
            }
            if !seen.contains(&combo) {
                seen.insert(combo.clone());
                out.push(combo.iter().map(|v| (*v).clone()).collect());
            }
        }
        out
    }

    /// The active domain of an attribute: distinct non-null values, sorted.
    pub fn active_domain(&self, attr: AttrId) -> Vec<Value> {
        let mut set: BTreeSet<Value> = BTreeSet::new();
        for t in &self.tuples {
            let v = t.value(attr);
            if !v.is_null() {
                set.insert(v.clone());
            }
        }
        set.into_iter().collect()
    }

    /// Incompleteness statistics (Table 1's quantities).
    pub fn incompleteness(&self) -> IncompletenessStats {
        let n = self.tuples.len();
        let mut missing = vec![0usize; self.schema.arity()];
        let mut incomplete = 0usize;
        for t in &self.tuples {
            let mut any = false;
            for (i, v) in t.values().iter().enumerate() {
                if v.is_null() {
                    missing[i] += 1;
                    any = true;
                }
            }
            if any {
                incomplete += 1;
            }
        }
        let frac = |c: usize| if n == 0 { 0.0 } else { c as f64 / n as f64 };
        IncompletenessStats {
            total_tuples: n,
            incomplete_fraction: frac(incomplete),
            missing_fraction: missing.into_iter().map(frac).collect(),
        }
    }

    /// Returns a new relation containing only tuples complete on *all*
    /// attributes (used to build ground-truth datasets, §6.2).
    pub fn complete_only(&self) -> Relation {
        Relation::new(
            Arc::clone(&self.schema),
            self.tuples.iter().filter(|t| t.is_complete()).cloned().collect(),
        )
    }

    /// Projects the relation onto a subset of attributes, producing a new
    /// relation with a derived schema (used when modelling local schemas
    /// that support fewer attributes than the global schema).
    pub fn project_to(&self, name: &str, attrs: &[AttrId]) -> Relation {
        let schema = Schema::new(
            name,
            attrs.iter().map(|a| self.schema.attr(*a).clone()).collect(),
        );
        let tuples = self
            .tuples
            .iter()
            .map(|t| Tuple::new(t.id(), t.project(attrs)))
            .collect();
        Relation::new(schema, tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::schema::AttrType;

    fn fixture() -> Relation {
        let schema = Schema::of(
            "cars",
            &[
                ("make", AttrType::Categorical),
                ("model", AttrType::Categorical),
                ("body", AttrType::Categorical),
            ],
        );
        // The paper's Table 2 fragment (ids 0..6).
        let rows: Vec<(&str, &str, Option<&str>)> = vec![
            ("Audi", "A4", Some("Convt")),
            ("BMW", "Z4", Some("Convt")),
            ("Porsche", "Boxster", Some("Convt")),
            ("BMW", "Z4", None),
            ("Honda", "Civic", None),
            ("Toyota", "Camry", Some("Sedan")),
        ];
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, (mk, md, b))| {
                Tuple::new(
                    TupleId(i as u32),
                    vec![
                        Value::str(mk),
                        Value::str(md),
                        b.map(Value::str).unwrap_or(Value::Null),
                    ],
                )
            })
            .collect();
        Relation::new(schema, tuples)
    }

    #[test]
    fn select_returns_certain_answers_only() {
        let r = fixture();
        let body = r.schema().expect_attr("body");
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let res = r.select(&q);
        // Tuples 3 and 4 have null body style: excluded.
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(|t| t.value(body) == &Value::str("Convt")));
        assert_eq!(r.count(&q), 3);
    }

    #[test]
    fn by_id_finds_tuples() {
        let r = fixture();
        assert_eq!(r.by_id(TupleId(4)).unwrap().id(), TupleId(4));
        assert!(r.by_id(TupleId(99)).is_none());
    }

    #[test]
    fn distinct_projections_skip_nulls() {
        let r = fixture();
        let model = r.schema().expect_attr("model");
        let body = r.schema().expect_attr("body");
        let combos = Relation::distinct_projections(r.tuples(), &[model]);
        assert_eq!(combos.len(), 5); // A4, Z4, Boxster, Civic, Camry
        let combos = Relation::distinct_projections(r.tuples(), &[body]);
        assert_eq!(combos.len(), 2); // Convt, Sedan (nulls skipped)
    }

    #[test]
    fn active_domain_sorted_distinct() {
        let r = fixture();
        let make = r.schema().expect_attr("make");
        let dom = r.active_domain(make);
        assert_eq!(
            dom,
            vec![
                Value::str("Audi"),
                Value::str("BMW"),
                Value::str("Honda"),
                Value::str("Porsche"),
                Value::str("Toyota"),
            ]
        );
    }

    #[test]
    fn incompleteness_stats() {
        let r = fixture();
        let stats = r.incompleteness();
        assert_eq!(stats.total_tuples, 6);
        assert!((stats.incomplete_fraction - 2.0 / 6.0).abs() < 1e-12);
        let body = r.schema().expect_attr("body");
        assert!((stats.missing_fraction[body.index()] - 2.0 / 6.0).abs() < 1e-12);
        let make = r.schema().expect_attr("make");
        assert_eq!(stats.missing_fraction[make.index()], 0.0);
    }

    #[test]
    fn complete_only_filters() {
        let r = fixture();
        assert_eq!(r.complete_only().len(), 4);
    }

    #[test]
    fn project_to_narrows_schema() {
        let r = fixture();
        let make = r.schema().expect_attr("make");
        let model = r.schema().expect_attr("model");
        let p = r.project_to("cars_narrow", &[model, make]);
        assert_eq!(p.schema().arity(), 2);
        assert_eq!(p.schema().attr(AttrId(0)).name(), "model");
        assert_eq!(p.len(), r.len());
        // Ids are preserved.
        assert_eq!(p.tuples()[3].id(), TupleId(3));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let schema = Schema::of("one", &[("a", AttrType::Integer)]);
        Relation::new(schema, vec![Tuple::new(TupleId(0), vec![Value::int(1), Value::int(2)])]);
    }

    #[test]
    fn try_new_degrades_instead_of_aborting() {
        let schema = Schema::of("one", &[("a", AttrType::Integer)]);
        let bad = Relation::try_new(
            schema.clone(),
            vec![Tuple::new(TupleId(0), vec![Value::int(1), Value::int(2)])],
        );
        assert!(matches!(bad, Err(crate::error::SourceError::Internal { .. })));
        let good = Relation::try_new(schema, vec![Tuple::new(TupleId(0), vec![Value::int(1)])]);
        assert_eq!(good.unwrap().len(), 1);
    }

    #[test]
    fn columnar_image_tracks_mutation() {
        let mut r = fixture();
        let make = r.schema().expect_attr("make");
        let before = Arc::clone(r.columnar());
        assert_eq!(before.n_rows(), r.len());
        // Clones share the image.
        assert!(Arc::ptr_eq(r.clone().columnar(), &before));
        // Mutation invalidates; the rebuilt image reflects the new cells.
        r.tuples_mut()[0] = r.tuples()[0].with_value(make, Value::Null);
        let after = r.columnar();
        assert!(!Arc::ptr_eq(after, &before));
        assert!(after.vid_at(0, make).is_null());
    }
}
