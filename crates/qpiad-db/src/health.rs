//! Source health management: circuit breakers, logical time, and per-query
//! budgets.
//!
//! The mediator fronts autonomous sources it cannot control (§4.1); PR 2's
//! retry boundary makes a *single* query survive a transient fault, but a
//! multi-rewrite plan against a down source would still burn its whole
//! retry budget on every rewritten query. This module adds the
//! availability layer above retries:
//!
//! * [`HealthRegistry`] + [`BreakerProbe`] — a per-source **circuit
//!   breaker** (`Closed → Open → HalfOpen`). Failures observed at the
//!   query-issue boundary open the breaker after
//!   [`BreakerConfig::failure_threshold`] consecutive failures; while Open,
//!   mediation skips the source up front and charges the skipped work to
//!   `Degradation` instead of the retry budget; after
//!   [`BreakerConfig::cooldown_passes`] mediation passes the breaker
//!   half-opens and admits [`BreakerConfig::probe_limit`] probe queries.
//! * [`QueryBudget`] — a **deadline + attempt budget** for one mediation
//!   pass, decremented through the rewrite loop and clamped onto each
//!   query's [`RetryPolicy`] so backoff never
//!   overshoots the caller's deadline.
//! * [`sleep`] / [`set_logical_time`] — an injectable **logical clock**.
//!   Backoff and injected latency sleep through [`sleep`]; with logical
//!   time enabled (tests, benches) the sleep advances a counter instead of
//!   blocking a worker thread.
//!
//! # Determinism
//!
//! Breaker decisions must replay byte-identically at `QPIAD_THREADS=1`
//! and `8`, so the registry is only ever read and written at *sequential*
//! points of a mediation pass:
//!
//! 1. before fan-out, the caller snapshots each source's breaker into a
//!    [`BreakerView`] (and ticks the pass clock once via
//!    [`HealthRegistry::begin_pass`], which also half-opens cooled-down
//!    breakers);
//! 2. each member pass evolves a *local* [`BreakerProbe`] built from its
//!    view — admission decisions depend only on the snapshot and the
//!    member's own (deterministic) successes and failures, never on what
//!    other threads are doing;
//! 3. after fan-out, the probes' observation logs are absorbed into the
//!    registry in registration order ([`HealthRegistry::absorb`]).
//!
//! Cross-thread interleavings therefore cannot influence any breaker,
//! hedge, or budget decision.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::fault::RetryPolicy;

// ---------------------------------------------------------------------------
// Logical time
// ---------------------------------------------------------------------------

/// An injectable clock for everything on the mediation path that sleeps
/// (retry backoff, injected latency).
///
/// A `MediationClock` is either a **wall** clock (sleeps really block) or a
/// **logical** clock (sleeps bump a per-clock counter instead of blocking a
/// worker thread). Unlike the legacy [`set_logical_time`] shim, the state
/// lives in the clock *instance*: each [`MediatorNetwork`] (or server, or
/// test) owns its own `Arc<MediationClock>`, so one caller's pass
/// advancement can never warp another's backoff schedule.
///
/// The clock reaches the sleep sites through a thread-local slot: callers
/// [`install_clock`] it for the duration of a pass (an RAII guard restores
/// the previous slot value), and `par` workers re-install the spawning
/// thread's clock so fan-out inherits it.
///
/// [`MediatorNetwork`]: ../../qpiad_core/network/struct.MediatorNetwork.html
#[derive(Debug, Default)]
pub struct MediationClock {
    logical: bool,
    nanos: AtomicU64,
}

impl MediationClock {
    /// A wall clock: [`sleep`] really blocks the calling thread.
    pub fn wall() -> Arc<Self> {
        Arc::new(Self { logical: false, nanos: AtomicU64::new(0) })
    }

    /// A logical clock: [`sleep`] advances this clock's counter and returns
    /// immediately. Used by tests, benches, and servers that must not park
    /// worker threads on injected latency.
    pub fn logical() -> Arc<Self> {
        Arc::new(Self { logical: true, nanos: AtomicU64::new(0) })
    }

    /// `true` iff this clock is logical.
    pub fn is_logical(&self) -> bool {
        self.logical
    }

    /// Nanoseconds accumulated by logical sleeps on this clock.
    pub fn nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    /// Sleeps for `d` on this clock.
    pub fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        if self.logical {
            self.nanos
                .fetch_add(d.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::SeqCst);
        } else {
            std::thread::sleep(d);
        }
    }
}

thread_local! {
    static CURRENT_CLOCK: RefCell<Option<Arc<MediationClock>>> = const { RefCell::new(None) };
}

/// Restores the previously installed clock when dropped.
#[must_use = "dropping the guard immediately uninstalls the clock"]
pub struct ClockGuard {
    previous: Option<Arc<MediationClock>>,
}

impl Drop for ClockGuard {
    fn drop(&mut self) {
        CURRENT_CLOCK.with(|slot| *slot.borrow_mut() = self.previous.take());
    }
}

/// Installs `clock` as the calling thread's mediation clock until the
/// returned guard drops. `None` uninstalls, falling back to the process
/// globals ([`set_logical_time`]).
pub fn install_clock(clock: Option<Arc<MediationClock>>) -> ClockGuard {
    let previous = CURRENT_CLOCK.with(|slot| std::mem::replace(&mut *slot.borrow_mut(), clock));
    ClockGuard { previous }
}

/// The clock installed on the calling thread, if any. `par` captures this
/// before spawning workers so fan-out threads sleep on the caller's clock.
pub fn current_clock() -> Option<Arc<MediationClock>> {
    CURRENT_CLOCK.with(|slot| slot.borrow().clone())
}

static LOGICAL_TIME: AtomicBool = AtomicBool::new(false);
static LOGICAL_NANOS: AtomicU64 = AtomicU64::new(0);

/// Switches the **process-wide fallback** clock between wall time (default)
/// and logical time. Enabling resets the logical counter.
///
/// This is a test shim: it only governs threads with no installed
/// [`MediationClock`] (see [`install_clock`]). Serving paths scope their
/// clock per network and never consult these globals.
pub fn set_logical_time(enabled: bool) {
    if enabled {
        LOGICAL_NANOS.store(0, Ordering::SeqCst);
    }
    LOGICAL_TIME.store(enabled, Ordering::SeqCst);
}

/// `true` iff sleeps on the calling thread are currently logical (installed
/// clock first, process-wide fallback otherwise).
pub fn logical_time_enabled() -> bool {
    if let Some(clock) = current_clock() {
        return clock.is_logical();
    }
    LOGICAL_TIME.load(Ordering::SeqCst)
}

/// Nanoseconds accumulated by logical sleeps on the calling thread's clock
/// (installed clock first, process-wide fallback otherwise).
pub fn logical_nanos() -> u64 {
    if let Some(clock) = current_clock() {
        return clock.nanos();
    }
    LOGICAL_NANOS.load(Ordering::SeqCst)
}

/// Sleeps for `d` on the active clock: the thread's installed
/// [`MediationClock`] if any, else the process-wide fallback — a real
/// [`std::thread::sleep`] under wall time, a counter bump under logical
/// time. Every sleep in the mediation path (retry backoff, injected
/// latency) goes through here.
pub fn sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    if let Some(clock) = current_clock() {
        clock.sleep(d);
        return;
    }
    if LOGICAL_TIME.load(Ordering::SeqCst) {
        LOGICAL_NANOS.fetch_add(d.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::SeqCst);
    } else {
        std::thread::sleep(d);
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// The classic circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: every query is admitted.
    #[default]
    Closed,
    /// Tripped: the source is skipped up front; no query is issued.
    Open,
    /// Cooling down: up to [`BreakerConfig::probe_limit`] probe queries are
    /// admitted per pass; a success closes the breaker, a failure reopens it.
    HalfOpen,
}

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a Closed breaker.
    pub failure_threshold: u32,
    /// Mediation passes an Open breaker waits before half-opening.
    pub cooldown_passes: u64,
    /// Queries a HalfOpen breaker admits per pass.
    pub probe_limit: u32,
    /// Successes (while HalfOpen) needed to close the breaker again.
    pub success_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_passes: 2,
            probe_limit: 1,
            success_threshold: 1,
        }
    }
}

impl BreakerConfig {
    /// Overrides the consecutive-failure trip threshold (at least 1).
    pub fn with_failure_threshold(mut self, n: u32) -> Self {
        self.failure_threshold = n.max(1);
        self
    }

    /// Overrides the Open → HalfOpen cooldown, in mediation passes.
    pub fn with_cooldown_passes(mut self, n: u64) -> Self {
        self.cooldown_passes = n;
        self
    }

    /// Overrides the HalfOpen probe allowance per pass (at least 1).
    pub fn with_probe_limit(mut self, n: u32) -> Self {
        self.probe_limit = n.max(1);
        self
    }

    /// Overrides the successes needed to close a HalfOpen breaker (at
    /// least 1).
    pub fn with_success_threshold(mut self, n: u32) -> Self {
        self.success_threshold = n.max(1);
        self
    }
}

/// One success-or-failure outcome observed against a source at the
/// query-issue boundary. Probes log observations locally during a member
/// pass; the registry replays them sequentially afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// The query was served (and its response validated clean).
    Success,
    /// The query failed (per
    /// [`SourceError::is_failure`](crate::error::SourceError::is_failure))
    /// or its response was quarantined.
    Failure,
}

/// The persistent per-source breaker record inside the registry.
#[derive(Debug, Clone, Copy, Default)]
struct BreakerCore {
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    /// Pass-clock value when the breaker last opened.
    opened_at: u64,
}

impl BreakerCore {
    fn apply(&mut self, obs: Observation, now: u64, config: &BreakerConfig) {
        match obs {
            Observation::Success => {
                self.consecutive_failures = 0;
                if self.state == BreakerState::HalfOpen {
                    self.half_open_successes += 1;
                    if self.half_open_successes >= config.success_threshold {
                        self.state = BreakerState::Closed;
                        self.half_open_successes = 0;
                    }
                }
            }
            Observation::Failure => {
                self.consecutive_failures += 1;
                self.half_open_successes = 0;
                match self.state {
                    BreakerState::HalfOpen => {
                        self.state = BreakerState::Open;
                        self.opened_at = now;
                    }
                    BreakerState::Closed
                        if self.consecutive_failures >= config.failure_threshold =>
                    {
                        self.state = BreakerState::Open;
                        self.opened_at = now;
                    }
                    _ => {}
                }
            }
        }
    }
}

/// A `Copy` snapshot of one source's breaker, taken sequentially before a
/// fan-out. A disabled view (no registry configured) admits everything and
/// records nothing.
#[derive(Debug, Clone, Copy)]
pub struct BreakerView {
    state: BreakerState,
    config: BreakerConfig,
    enabled: bool,
}

impl BreakerView {
    /// The view of an unmanaged source: always Closed, never recording.
    pub fn disabled() -> Self {
        BreakerView { state: BreakerState::Closed, config: BreakerConfig::default(), enabled: false }
    }

    /// The snapshotted state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// `true` iff a registry is tracking this source.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// The local, single-pass evolution of one source's breaker.
///
/// A probe is built from a [`BreakerView`] at the start of a member pass
/// and consulted before every query against that source:
///
/// 1. [`BreakerProbe::admits`] — may another query be issued?
/// 2. [`BreakerProbe::note_issued`] — the caller committed to issuing one
///    (consumes a HalfOpen probe slot);
/// 3. [`BreakerProbe::record_success`] / [`BreakerProbe::record_failure`]
///    (`BreakerProbe::record_failure`) — the outcome, which both evolves
///    the local state (tripping mid-plan after `failure_threshold`
///    consecutive failures) and appends to the observation log the
///    registry absorbs after the pass.
#[derive(Debug)]
pub struct BreakerProbe {
    enabled: bool,
    state: BreakerState,
    config: BreakerConfig,
    consecutive_failures: u32,
    half_open_successes: u32,
    probes_issued: u32,
    log: Vec<Observation>,
}

impl BreakerProbe {
    /// A probe that admits everything and records nothing (no registry).
    pub fn disabled() -> Self {
        BreakerProbe::new(BreakerView::disabled())
    }

    /// Builds the pass-local probe from a sequentially taken snapshot.
    pub fn new(view: BreakerView) -> Self {
        BreakerProbe {
            enabled: view.enabled,
            state: view.state,
            config: view.config,
            consecutive_failures: 0,
            half_open_successes: 0,
            probes_issued: 0,
            log: Vec::new(),
        }
    }

    /// `true` iff another query may be issued against the source right now.
    pub fn admits(&self) -> bool {
        if !self.enabled {
            return true;
        }
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => self.probes_issued < self.config.probe_limit,
        }
    }

    /// Commits one admitted query (consumes a HalfOpen probe slot). Call
    /// after [`Self::admits`] returned `true` and any other admission gate
    /// (e.g. the budget) also passed.
    pub fn note_issued(&mut self) {
        if self.enabled && self.state == BreakerState::HalfOpen {
            self.probes_issued += 1;
        }
    }

    /// Records a served-and-clean query.
    pub fn record_success(&mut self) {
        if !self.enabled {
            return;
        }
        self.log.push(Observation::Success);
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.half_open_successes += 1;
            if self.half_open_successes >= self.config.success_threshold {
                self.state = BreakerState::Closed;
            }
        }
    }

    /// Records a failed (or quarantined) query; trips the local state to
    /// Open after `failure_threshold` consecutive failures, so the rest of
    /// the plan is skipped.
    pub fn record_failure(&mut self) {
        if !self.enabled {
            return;
        }
        self.log.push(Observation::Failure);
        self.consecutive_failures += 1;
        self.half_open_successes = 0;
        match self.state {
            BreakerState::HalfOpen => self.state = BreakerState::Open,
            BreakerState::Closed
                if self.consecutive_failures >= self.config.failure_threshold =>
            {
                self.state = BreakerState::Open
            }
            _ => {}
        }
    }

    /// The probe's current (local) state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// `true` iff a registry is tracking this source.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drains the observation log for [`HealthRegistry::absorb`].
    pub fn take_observations(&mut self) -> Vec<Observation> {
        std::mem::take(&mut self.log)
    }
}

/// The process-visible breaker registry: one `BreakerCore` per source
/// name, plus the pass clock. All mutation happens at sequential points
/// (see the module docs), so a mutex suffices and no decision ever races.
#[derive(Debug)]
pub struct HealthRegistry {
    config: BreakerConfig,
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    /// The pass clock: incremented once per mediation pass. A logical
    /// clock, not wall time, so cooldowns replay identically everywhere.
    now: u64,
    cores: HashMap<String, BreakerCore>,
}

impl HealthRegistry {
    /// A registry with the given breaker tuning.
    pub fn new(config: BreakerConfig) -> Self {
        HealthRegistry { config, inner: Mutex::new(RegistryInner::default()) }
    }

    /// The breaker tuning.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Starts a mediation pass: ticks the pass clock and half-opens every
    /// Open breaker whose cooldown has elapsed. Must be called at a
    /// sequential point (before any fan-out). Returns the new clock value.
    pub fn begin_pass(&self) -> u64 {
        let mut g = self.inner.lock();
        g.now += 1;
        let now = g.now;
        for core in g.cores.values_mut() {
            if core.state == BreakerState::Open
                && now.saturating_sub(core.opened_at) > self.config.cooldown_passes
            {
                core.state = BreakerState::HalfOpen;
                core.half_open_successes = 0;
            }
        }
        now
    }

    /// Snapshots one source's breaker (sequential point).
    pub fn view(&self, source: &str) -> BreakerView {
        let state = self.state(source);
        BreakerView { state, config: self.config, enabled: true }
    }

    /// The current state of one source's breaker (Closed if unknown).
    pub fn state(&self, source: &str) -> BreakerState {
        self.inner.lock().cores.get(source).map(|c| c.state).unwrap_or_default()
    }

    /// Replays a member pass's observation log into the registry, in the
    /// order the pass recorded them. Must be called at a sequential point
    /// (after the fan-out), in member-registration order.
    pub fn absorb(&self, source: &str, observations: &[Observation]) {
        if observations.is_empty() {
            return;
        }
        let mut g = self.inner.lock();
        let now = g.now;
        let core = g.cores.entry(source.to_string()).or_default();
        for obs in observations {
            core.apply(*obs, now, &self.config);
        }
    }
}

// ---------------------------------------------------------------------------
// Query budget
// ---------------------------------------------------------------------------

/// A per-mediation-pass budget: how many source attempts the pass may spend
/// and how much time it may commit to backoff (and, when
/// [`Self::with_query_cost`] models per-query latency, to queries).
///
/// The budget is *plan-time* and worst-case: [`QueryBudget::admit`] clamps
/// a [`RetryPolicy`] so that its full retry schedule fits what remains,
/// then deducts that worst case — so admission decisions are identical
/// whether the plan later runs sequentially or concurrently, and backoff
/// can never overshoot the deadline. Exhaustion degrades gracefully:
/// queries already admitted keep their answers; the rest of the plan is
/// skipped and accounted in `Degradation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBudget {
    /// Remaining time budget (worst-case backoff + modeled query cost).
    pub deadline: Duration,
    /// Remaining source attempts (each retry counts).
    pub attempts: u32,
    /// Modeled cost of one query attempt, charged against the deadline.
    /// Zero (the default) makes the deadline a pure backoff budget.
    pub query_cost: Duration,
}

impl QueryBudget {
    /// No limits: every admission passes through the policy unchanged.
    pub fn unlimited() -> Self {
        QueryBudget { deadline: Duration::MAX, attempts: u32::MAX, query_cost: Duration::ZERO }
    }

    /// Caps the pass's cumulative worst-case backoff (+ modeled query cost).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Caps the pass's total source attempts (retries included).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts;
        self
    }

    /// Models a fixed per-attempt latency charged against the deadline.
    pub fn with_query_cost(mut self, cost: Duration) -> Self {
        self.query_cost = cost;
        self
    }

    /// `true` iff no further query can be admitted.
    pub fn is_exhausted(&self) -> bool {
        self.attempts == 0 || self.deadline < self.query_cost
    }

    /// Admits one query: returns `policy` with its attempt cap clamped so
    /// the worst-case retry schedule (deterministic backoff for the given
    /// query fingerprint, plus modeled query cost) fits the remaining
    /// budget, deducting that worst case. Returns `None` — skip the query —
    /// when not even a single attempt fits.
    pub fn admit(&mut self, policy: &RetryPolicy, fingerprint: u64) -> Option<RetryPolicy> {
        if self.is_exhausted() {
            return None;
        }
        let cap = policy.max_attempts.max(1).min(self.attempts);
        let mut granted = 1u32;
        let mut cost = self.query_cost;
        while granted < cap {
            // Retry number `granted` costs its backoff plus one attempt.
            let step = policy.backoff(fingerprint, granted - 1).saturating_add(self.query_cost);
            match cost.checked_add(step) {
                Some(c) if c <= self.deadline => {
                    cost = c;
                    granted += 1;
                }
                _ => break,
            }
        }
        self.attempts = self.attempts.saturating_sub(granted);
        self.deadline = self.deadline.saturating_sub(cost);
        Some(policy.with_max_attempts(granted))
    }
}

// ---------------------------------------------------------------------------
// Pressure levels (overload degradation ladder)
// ---------------------------------------------------------------------------

/// How loaded the serving layer is, as seen by one mediation pass.
///
/// Pressure is the overload counterpart of a [`QueryBudget`]: where the
/// budget bounds what *one* pass may spend, pressure bounds what the
/// *mediator as a whole* commits to possible-answer retrieval while many
/// passes are in flight. Each level is a rung of the degradation ladder:
///
/// | level        | admitted rewrite mass | hedging |
/// |--------------|----------------------|---------|
/// | `Normal`     | full plan            | on      |
/// | `Elevated`   | top half (by rank)   | on      |
/// | `High`       | top quarter          | off     |
/// | `Critical`   | none (certain only)  | off     |
///
/// Rewrites clamped off a plan are skipped with
/// `SkipReason::Overload` and charged to `Degradation` exactly like
/// breaker skips, so EXPLAIN and the meters state the recall mass that
/// overload cost. Certain answers (the base query) are never shed: the
/// ladder only trades *possible-answer* recall for throughput, which
/// keeps the answer lattice monotone as pressure rises.
///
/// The ordering derives from declaration order: `Normal < Elevated <
/// High < Critical`, so "at least this loaded" is a plain `>=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PressureLevel {
    /// No overload: the full admitted plan runs.
    #[default]
    Normal,
    /// Load above half capacity: rewrite mass halves, hedging stays on.
    Elevated,
    /// Load above three-quarters capacity: top quarter of the plan only,
    /// hedging disabled (a hedge doubles source queries — the first
    /// thing to go when capacity is scarce).
    High,
    /// At or over capacity: certain answers only.
    Critical,
}

impl PressureLevel {
    /// Derives the level from an instantaneous load over a capacity,
    /// using pure integer math so every thread derives the same level
    /// from the same gauge reading. A zero capacity disables the ladder
    /// (always `Normal`).
    pub fn from_load(load: usize, capacity: usize) -> Self {
        if capacity == 0 {
            return PressureLevel::Normal;
        }
        if load >= capacity {
            PressureLevel::Critical
        } else if load * 4 >= capacity * 3 {
            PressureLevel::High
        } else if load * 2 >= capacity {
            PressureLevel::Elevated
        } else {
            PressureLevel::Normal
        }
    }

    /// Fraction of the rank-ordered rewrite plan this rung still admits.
    pub fn rewrite_fraction(&self) -> f64 {
        match self {
            PressureLevel::Normal => 1.0,
            PressureLevel::Elevated => 0.5,
            PressureLevel::High => 0.25,
            PressureLevel::Critical => 0.0,
        }
    }

    /// Whether hedged (doubled) queries are still allowed at this rung.
    pub fn allows_hedging(&self) -> bool {
        matches!(self, PressureLevel::Normal | PressureLevel::Elevated)
    }

    /// Stable label for EXPLAIN output and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::Elevated => "elevated",
            PressureLevel::High => "high",
            PressureLevel::Critical => "critical",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(config: BreakerConfig) -> HealthRegistry {
        HealthRegistry::new(config)
    }

    #[test]
    fn closed_breaker_trips_after_threshold_consecutive_failures() {
        let reg = registry(BreakerConfig::default().with_failure_threshold(3));
        reg.begin_pass();
        reg.absorb("s", &[Observation::Failure, Observation::Failure]);
        assert_eq!(reg.state("s"), BreakerState::Closed);
        // An interleaved success resets the consecutive count.
        reg.absorb("s", &[Observation::Success, Observation::Failure, Observation::Failure]);
        assert_eq!(reg.state("s"), BreakerState::Closed);
        reg.absorb("s", &[Observation::Failure]);
        assert_eq!(reg.state("s"), BreakerState::Open);
    }

    #[test]
    fn open_breaker_half_opens_only_after_the_cooldown() {
        let reg = registry(BreakerConfig::default().with_failure_threshold(1).with_cooldown_passes(2));
        reg.begin_pass(); // pass 1
        reg.absorb("s", &[Observation::Failure]);
        assert_eq!(reg.state("s"), BreakerState::Open);
        reg.begin_pass(); // pass 2: 1 pass elapsed < 2
        assert_eq!(reg.state("s"), BreakerState::Open);
        reg.begin_pass(); // pass 3: 2 passes elapsed, still <= cooldown
        assert_eq!(reg.state("s"), BreakerState::Open);
        reg.begin_pass(); // pass 4: cooldown elapsed
        assert_eq!(reg.state("s"), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_probe_success_closes_and_failure_reopens() {
        let config = BreakerConfig::default().with_failure_threshold(1).with_cooldown_passes(0);
        let reg = registry(config);
        reg.begin_pass();
        reg.absorb("s", &[Observation::Failure]);
        reg.begin_pass();
        assert_eq!(reg.state("s"), BreakerState::HalfOpen);
        reg.absorb("s", &[Observation::Failure]);
        assert_eq!(reg.state("s"), BreakerState::Open);
        reg.begin_pass();
        assert_eq!(reg.state("s"), BreakerState::HalfOpen);
        reg.absorb("s", &[Observation::Success]);
        assert_eq!(reg.state("s"), BreakerState::Closed);
    }

    #[test]
    fn success_threshold_requires_multiple_clean_probes() {
        let config = BreakerConfig::default()
            .with_failure_threshold(1)
            .with_cooldown_passes(0)
            .with_success_threshold(2);
        let reg = registry(config);
        reg.begin_pass();
        reg.absorb("s", &[Observation::Failure]);
        reg.begin_pass();
        reg.absorb("s", &[Observation::Success]);
        assert_eq!(reg.state("s"), BreakerState::HalfOpen);
        reg.absorb("s", &[Observation::Success]);
        assert_eq!(reg.state("s"), BreakerState::Closed);
    }

    #[test]
    fn probe_admits_and_trips_locally_mid_plan() {
        let reg = registry(BreakerConfig::default().with_failure_threshold(2));
        reg.begin_pass();
        let mut probe = BreakerProbe::new(reg.view("s"));
        assert!(probe.admits());
        probe.note_issued();
        probe.record_failure();
        assert!(probe.admits(), "one failure is below the threshold");
        probe.note_issued();
        probe.record_failure();
        assert_eq!(probe.state(), BreakerState::Open);
        assert!(!probe.admits(), "local trip must stop the rest of the plan");
        // The registry sees the same story on absorb.
        reg.absorb("s", &probe.take_observations());
        assert_eq!(reg.state("s"), BreakerState::Open);
    }

    #[test]
    fn half_open_probe_limit_caps_admissions_per_pass() {
        // The probe-limit edge: with success_threshold above what one pass
        // can possibly confirm, the breaker stays HalfOpen even though
        // every admitted probe succeeded.
        let config = BreakerConfig::default()
            .with_failure_threshold(1)
            .with_cooldown_passes(0)
            .with_probe_limit(2)
            .with_success_threshold(3);
        let reg = registry(config);
        reg.begin_pass();
        reg.absorb("s", &[Observation::Failure]);
        reg.begin_pass();
        let mut probe = BreakerProbe::new(reg.view("s"));
        assert_eq!(probe.state(), BreakerState::HalfOpen);
        assert!(probe.admits());
        probe.note_issued();
        probe.record_success();
        assert!(probe.admits(), "second probe slot is free");
        probe.note_issued();
        probe.record_success();
        assert!(!probe.admits(), "probe limit reached");
        assert_eq!(probe.state(), BreakerState::HalfOpen);
        reg.absorb("s", &probe.take_observations());
        assert_eq!(reg.state("s"), BreakerState::HalfOpen);
    }

    #[test]
    fn disabled_probe_admits_everything_and_records_nothing() {
        let mut probe = BreakerProbe::disabled();
        for _ in 0..100 {
            assert!(probe.admits());
            probe.note_issued();
            probe.record_failure();
        }
        assert_eq!(probe.state(), BreakerState::Closed);
        assert!(probe.take_observations().is_empty());
    }

    #[test]
    fn budget_clamps_attempts_and_deducts_worst_case() {
        let policy = RetryPolicy::default().with_max_attempts(3);
        let mut budget = QueryBudget::unlimited().with_max_attempts(5);
        let p = budget.admit(&policy, 1).expect("admitted");
        assert_eq!(p.max_attempts, 3);
        assert_eq!(budget.attempts, 2);
        let p = budget.admit(&policy, 2).expect("admitted");
        assert_eq!(p.max_attempts, 2, "only two attempts remain");
        assert!(budget.is_exhausted());
        assert_eq!(budget.admit(&policy, 3), None);
    }

    #[test]
    fn budget_deadline_caps_cumulative_backoff() {
        // Every backoff is 10 ms plus up to 50 % jitter.
        let policy = RetryPolicy::default()
            .with_max_attempts(4)
            .with_backoff(Duration::from_millis(10), Duration::from_millis(10));
        // Deadline below any single backoff: only the (free) first attempt
        // fits, and it costs the deadline nothing.
        let mut tight = QueryBudget::unlimited().with_deadline(Duration::from_millis(5));
        let p = tight.admit(&policy, 42).expect("first attempt is always free");
        assert_eq!(p.max_attempts, 1, "no retry's backoff fits a 5 ms deadline");
        assert_eq!(tight.deadline, Duration::from_millis(5));
        // A generous deadline admits the full schedule and deducts its
        // worst case (three retries at >= 10 ms each).
        let mut roomy = QueryBudget::unlimited().with_deadline(Duration::from_millis(100));
        let p = roomy.admit(&policy, 42).expect("admitted");
        assert_eq!(p.max_attempts, 4);
        assert!(roomy.deadline <= Duration::from_millis(70), "worst case deducted");
    }

    #[test]
    fn budget_query_cost_models_deadline_exhaustion() {
        let policy = RetryPolicy::none();
        let mut budget = QueryBudget::unlimited()
            .with_deadline(Duration::from_millis(10))
            .with_query_cost(Duration::from_millis(4));
        assert!(budget.admit(&policy, 1).is_some()); // 4 ms spent
        assert!(budget.admit(&policy, 2).is_some()); // 8 ms spent
        assert_eq!(budget.admit(&policy, 3), None, "2 ms left < 4 ms per query");
        assert!(budget.is_exhausted());
    }

    #[test]
    fn unlimited_budget_is_transparent() {
        let policy = RetryPolicy::default().with_max_attempts(7);
        let mut budget = QueryBudget::unlimited();
        for fp in 0..1000 {
            assert_eq!(budget.admit(&policy, fp), Some(policy));
        }
        assert!(!budget.is_exhausted());
    }

    #[test]
    fn logical_sleep_advances_the_counter_without_blocking() {
        set_logical_time(true);
        let before = std::time::Instant::now();
        sleep(Duration::from_millis(250));
        sleep(Duration::from_millis(250));
        let elapsed = before.elapsed();
        let advanced = logical_nanos();
        set_logical_time(false);
        // >= rather than ==: the clock is process-global, so a concurrently
        // running test's sleep may also land on the counter.
        assert!(advanced >= 500_000_000, "counter must cover both sleeps, got {advanced}");
        assert!(elapsed < Duration::from_millis(200), "logical sleep must not block");
    }

    #[test]
    fn installed_clock_scopes_logical_time_to_the_owner() {
        let mine = MediationClock::logical();
        let theirs = MediationClock::logical();
        {
            let _guard = install_clock(Some(mine.clone()));
            sleep(Duration::from_millis(10));
            assert!(logical_time_enabled());
            assert_eq!(logical_nanos(), 10_000_000);
        }
        {
            let _guard = install_clock(Some(theirs.clone()));
            sleep(Duration::from_millis(3));
        }
        // Each clock only saw its own sleeps: no cross-warp.
        assert_eq!(mine.nanos(), 10_000_000);
        assert_eq!(theirs.nanos(), 3_000_000);
    }

    #[test]
    fn clock_guard_restores_the_previous_clock() {
        let outer = MediationClock::logical();
        let inner = MediationClock::logical();
        let _outer_guard = install_clock(Some(outer.clone()));
        {
            let _inner_guard = install_clock(Some(inner.clone()));
            sleep(Duration::from_millis(1));
        }
        sleep(Duration::from_millis(2));
        assert_eq!(inner.nanos(), 1_000_000);
        assert_eq!(outer.nanos(), 2_000_000);
    }

    #[test]
    fn installed_clock_propagates_through_par_workers() {
        let clock = MediationClock::logical();
        let _guard = install_clock(Some(clock.clone()));
        // Whatever the ambient worker count (QPIAD_THREADS or hardware), every
        // sleep must land on this clock — workers inherit the caller's slot.
        let out = crate::par::parallel_map_indexed(8, |i| {
            sleep(Duration::from_millis(1));
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(clock.nanos(), 8_000_000, "every worker sleep lands on the caller's clock");
    }

    #[test]
    fn pressure_levels_are_ordered_and_derive_from_load() {
        assert!(PressureLevel::Normal < PressureLevel::Elevated);
        assert!(PressureLevel::Elevated < PressureLevel::High);
        assert!(PressureLevel::High < PressureLevel::Critical);
        let cap = 8;
        assert_eq!(PressureLevel::from_load(0, cap), PressureLevel::Normal);
        assert_eq!(PressureLevel::from_load(3, cap), PressureLevel::Normal);
        assert_eq!(PressureLevel::from_load(4, cap), PressureLevel::Elevated);
        assert_eq!(PressureLevel::from_load(5, cap), PressureLevel::Elevated);
        assert_eq!(PressureLevel::from_load(6, cap), PressureLevel::High);
        assert_eq!(PressureLevel::from_load(7, cap), PressureLevel::High);
        assert_eq!(PressureLevel::from_load(8, cap), PressureLevel::Critical);
        assert_eq!(PressureLevel::from_load(80, cap), PressureLevel::Critical);
        // Zero capacity disables the ladder entirely.
        assert_eq!(PressureLevel::from_load(1000, 0), PressureLevel::Normal);
    }

    #[test]
    fn pressure_ladder_monotonically_tightens() {
        let rungs = [
            PressureLevel::Normal,
            PressureLevel::Elevated,
            PressureLevel::High,
            PressureLevel::Critical,
        ];
        for pair in rungs.windows(2) {
            assert!(pair[0].rewrite_fraction() > pair[1].rewrite_fraction());
            // Hedging never turns back on as pressure rises.
            assert!(pair[0].allows_hedging() || !pair[1].allows_hedging());
        }
        assert_eq!(PressureLevel::Critical.rewrite_fraction(), 0.0);
        assert!(!PressureLevel::Critical.allows_hedging());
    }
}
