//! Posting-list indexes and index-backed selection.
//!
//! A QPIAD workload hammers a source with conjunctive equality queries (one
//! per rewritten query, per probe, per aggregate gate). Scanning the whole
//! relation for each is O(n·queries); [`SelectionEngine`] lazily builds one
//! posting-list index per touched attribute over the relation's interned
//! [`ColumnarRelation`] — one sorted `Vec<u32>` of row ids per
//! (attribute, value-id), stored exactly once, with the reserved null id 0
//! doubling as the null list — and answers each query as a k-way sorted-list
//! intersection (galloping for skewed list pairs, a bitset probe above a
//! density threshold) instead of a scan-plus-verify.
//!
//! The engine is internally synchronized so sources can stay `&self` in
//! their query path.

use std::borrow::Cow;
use crate::hash::FastHashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::columnar::ColumnarRelation;
use crate::dict::ValueId;
use crate::query::{PredOp, SelectQuery};
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;

/// When the larger list of an intersection pair holds more than this
/// fraction of all rows, membership is probed through a bitset instead of
/// merged or galloped.
const DENSE_THRESHOLD: f64 = 0.125;

/// When the larger list is at least this many times the smaller, the
/// intersection gallops (exponential probing) instead of merging linearly.
const GALLOP_RATIO: usize = 16;

/// A posting-list index over one attribute of an interned relation.
///
/// `postings[vid]` holds the ascending row ids whose value interned to
/// `vid`; `postings[0]` (the reserved null id) is the null list. Every row
/// id appears in exactly one list, so the index stores each posting once —
/// there is no duplicate hash/tree copy.
#[derive(Debug)]
pub struct AttrIndex {
    columnar: Arc<ColumnarRelation>,
    /// Row ids per value id, ascending; `[0]` is the null list.
    postings: Vec<Vec<u32>>,
    /// The value ids appearing in this column, sorted by their resolved
    /// [`Value`] — the access path for `BETWEEN` ranges.
    value_order: Vec<ValueId>,
}

impl AttrIndex {
    /// Builds the index for `attr` over a relation.
    pub fn build(relation: &Relation, attr: AttrId) -> Self {
        let columnar = Arc::clone(relation.columnar());
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); columnar.dict().len()];
        for (row, vid) in columnar.column(attr).iter().enumerate() {
            postings[vid.index()].push(row as u32);
        }
        let mut value_order: Vec<ValueId> = (1..postings.len() as u32)
            .map(ValueId)
            .filter(|vid| !postings[vid.index()].is_empty())
            .collect();
        value_order.sort_by(|a, b| columnar.dict().resolve(*a).cmp(columnar.dict().resolve(*b)));
        AttrIndex { columnar, postings, value_order }
    }

    /// Rows with exactly this value (empty for null: a null cell never
    /// certainly satisfies an equality).
    pub fn rows_eq(&self, v: &Value) -> &[u32] {
        if v.is_null() {
            return &[];
        }
        match self.columnar.dict().lookup(v) {
            Some(vid) => &self.postings[vid.index()],
            None => &[],
        }
    }

    /// Rows with `lo ≤ value ≤ hi`, in relation order.
    pub fn rows_between(&self, lo: &Value, hi: &Value) -> Vec<u32> {
        let dict = self.columnar.dict();
        let start = self.value_order.partition_point(|vid| dict.resolve(*vid) < lo);
        let end = self.value_order.partition_point(|vid| dict.resolve(*vid) <= hi);
        let mut rows: Vec<u32> = self.value_order[start..end]
            .iter()
            .flat_map(|vid| self.postings[vid.index()].iter().copied())
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Rows with a null value.
    pub fn null_rows(&self) -> &[u32] {
        &self.postings[0]
    }

    /// Number of distinct non-null values in this column.
    pub fn distinct_values(&self) -> usize {
        self.value_order.len()
    }

    /// Total row ids stored across all posting lists. Equal to the relation's
    /// row count: every row sits in exactly one list, proving postings are
    /// stored once (the old index kept a duplicate `BTreeMap` copy).
    pub fn posting_entries(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }
}

/// Intersects two ascending row-id lists (`a` no longer than `b`), picking
/// merge, gallop, or bitset by the lists' shapes. Output stays ascending.
fn intersect_pair(a: &[u32], b: &[u32], n_rows: usize) -> Vec<u32> {
    debug_assert!(a.len() <= b.len());
    let mut out = Vec::with_capacity(a.len());
    if b.len() >= GALLOP_RATIO * a.len().max(1) {
        // Skewed pair: gallop each element of the small list through the
        // large one.
        let mut lo = 0usize;
        for &x in a {
            let mut step = 1usize;
            let mut hi = lo;
            while hi < b.len() && b[hi] < x {
                lo = hi + 1;
                hi += step;
                step *= 2;
            }
            let hi = hi.min(b.len());
            lo += b[lo..hi].partition_point(|&y| y < x);
            if lo < b.len() && b[lo] == x {
                out.push(x);
                lo += 1;
            }
            if lo >= b.len() {
                break;
            }
        }
    } else if n_rows > 0 && b.len() as f64 > DENSE_THRESHOLD * n_rows as f64 {
        // Dense larger list: one bit per row, O(1) membership probes.
        let mut bits = vec![0u64; n_rows.div_ceil(64)];
        for &y in b {
            bits[(y / 64) as usize] |= 1 << (y % 64);
        }
        for &x in a {
            if bits[(x / 64) as usize] & (1 << (x % 64)) != 0 {
                out.push(x);
            }
        }
    } else {
        // Comparable sizes: linear merge.
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// Lazily indexed selection over a fixed relation.
#[derive(Debug, Default)]
pub struct SelectionEngine {
    indexes: RwLock<FastHashMap<AttrId, Arc<AttrIndex>>>,
}

impl SelectionEngine {
    /// Creates an engine with no indexes built yet.
    pub fn new() -> Self {
        SelectionEngine::default()
    }

    /// Number of indexes built so far (for tests and diagnostics).
    pub fn built_indexes(&self) -> usize {
        self.indexes.read().len()
    }

    /// Total posting entries across built indexes (memory-footprint
    /// diagnostics: must equal built indexes × relation rows).
    pub fn posting_entries(&self) -> usize {
        self.indexes.read().values().map(|i| i.posting_entries()).sum()
    }

    fn index_for(&self, relation: &Relation, attr: AttrId) -> Arc<AttrIndex> {
        if let Some(idx) = self.indexes.read().get(&attr) {
            return Arc::clone(idx);
        }
        let built = Arc::new(AttrIndex::build(relation, attr));
        let mut write = self.indexes.write();
        Arc::clone(write.entry(attr).or_insert(built))
    }

    /// Resolves the query to its matching row ids, ascending (= relation
    /// order), by intersecting one posting list per predicate. Returns
    /// `None` for predicate-free queries (nothing to index).
    fn matching_rows(&self, relation: &Relation, query: &SelectQuery) -> Option<Vec<u32>> {
        let preds = query.predicates();
        if preds.is_empty() {
            return None;
        }
        let indexes: Vec<Arc<AttrIndex>> =
            preds.iter().map(|p| self.index_for(relation, p.attr)).collect();
        let mut lists: Vec<Cow<'_, [u32]>> = Vec::with_capacity(preds.len());
        for (p, idx) in preds.iter().zip(&indexes) {
            let list: Cow<'_, [u32]> = match &p.op {
                PredOp::Eq(v) => Cow::Borrowed(idx.rows_eq(v)),
                PredOp::IsNull => Cow::Borrowed(idx.null_rows()),
                PredOp::Between(lo, hi) => Cow::Owned(idx.rows_between(lo, hi)),
            };
            if list.is_empty() {
                return Some(Vec::new());
            }
            lists.push(list);
        }
        // Intersect smallest-first: the running result can only shrink.
        lists.sort_by_key(|l| l.len());
        let n_rows = relation.len();
        let mut acc: Vec<u32> = lists[0].to_vec();
        for list in &lists[1..] {
            if acc.is_empty() {
                break;
            }
            acc = if acc.len() <= list.len() {
                intersect_pair(&acc, list, n_rows)
            } else {
                intersect_pair(list, &acc, n_rows)
            };
        }
        Some(acc)
    }

    /// Answers a selection with certain-answer semantics, equivalent to
    /// [`Relation::select`]: the posting lists fully decide every predicate
    /// (`Eq`/`IsNull` are single lists, `Between` a run of lists in value
    /// order), so the intersection *is* the answer — no re-verification.
    /// Tuples materialize only here, at the answer boundary, as shared-slice
    /// handle clones.
    pub fn select(&self, relation: &Relation, query: &SelectQuery) -> Vec<Tuple> {
        match self.matching_rows(relation, query) {
            Some(rows) => rows
                .into_iter()
                .map(|row| relation.tuples()[row as usize].clone())
                .collect(),
            None => relation.select(query),
        }
    }

    /// Counts the certain answers using the same access path as
    /// [`Self::select`], without materializing tuples.
    pub fn count(&self, relation: &Relation, query: &SelectQuery) -> usize {
        match self.matching_rows(relation, query) {
            Some(rows) => rows.len(),
            None => relation.count(query),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::schema::{AttrType, Schema};
    use crate::tuple::TupleId;

    fn relation() -> Relation {
        let schema = Schema::of(
            "cars",
            &[
                ("model", AttrType::Categorical),
                ("year", AttrType::Integer),
                ("body", AttrType::Categorical),
            ],
        );
        let rows: Vec<(Option<&str>, i64, Option<&str>)> = vec![
            (Some("A4"), 2001, Some("Sedan")),
            (Some("Z4"), 2002, Some("Convt")),
            (Some("Z4"), 2003, None),
            (None, 2002, Some("Convt")),
            (Some("A4"), 2002, Some("Sedan")),
            (Some("Civic"), 2004, Some("Sedan")),
        ];
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, (m, y, b))| {
                Tuple::new(
                    TupleId(i as u32),
                    vec![
                        m.map(Value::str).unwrap_or(Value::Null),
                        Value::int(y),
                        b.map(Value::str).unwrap_or(Value::Null),
                    ],
                )
            })
            .collect();
        Relation::new(schema, tuples)
    }

    #[test]
    fn attr_index_partitions_rows() {
        let r = relation();
        let idx = AttrIndex::build(&r, AttrId(0));
        assert_eq!(idx.rows_eq(&Value::str("Z4")), &[1, 2]);
        assert_eq!(idx.rows_eq(&Value::str("A4")), &[0, 4]);
        assert_eq!(idx.rows_eq(&Value::str("F150")), &[] as &[u32]);
        assert_eq!(idx.rows_eq(&Value::Null), &[] as &[u32]);
        assert_eq!(idx.null_rows(), &[3]);
        assert_eq!(idx.distinct_values(), 3);
    }

    #[test]
    fn postings_are_stored_once() {
        let r = relation();
        for a in 0..3 {
            let idx = AttrIndex::build(&r, AttrId(a));
            assert_eq!(idx.posting_entries(), r.len());
        }
    }

    #[test]
    fn range_index_matches_value_order() {
        let r = relation();
        let idx = AttrIndex::build(&r, AttrId(1));
        assert_eq!(idx.rows_between(&Value::int(2002), &Value::int(2003)), vec![1, 2, 3, 4]);
        assert_eq!(idx.rows_between(&Value::int(2005), &Value::int(2010)), Vec::<u32>::new());
        // Inclusive bounds.
        assert_eq!(idx.rows_between(&Value::int(2004), &Value::int(2004)), vec![5]);
    }

    #[test]
    fn engine_matches_scan_semantics() {
        let r = relation();
        let engine = SelectionEngine::new();
        let queries = vec![
            SelectQuery::new(vec![Predicate::eq(AttrId(0), "Z4")]),
            SelectQuery::new(vec![Predicate::eq(AttrId(0), "Z4"), Predicate::eq(AttrId(1), 2002i64)]),
            SelectQuery::new(vec![Predicate::is_null(AttrId(2))]),
            SelectQuery::new(vec![Predicate::between(AttrId(1), 2002i64, 2003i64)]),
            SelectQuery::new(vec![
                Predicate::between(AttrId(1), 2002i64, 2003i64),
                Predicate::eq(AttrId(2), "Convt"),
            ]),
            SelectQuery::all(),
            SelectQuery::new(vec![Predicate::eq(AttrId(0), "F150")]),
        ];
        for q in &queries {
            assert_eq!(engine.select(&r, q), r.select(q), "query {q:?}");
            assert_eq!(engine.count(&r, q), r.count(q), "count {q:?}");
        }
    }

    #[test]
    fn engine_builds_indexes_lazily() {
        let r = relation();
        let engine = SelectionEngine::new();
        assert_eq!(engine.built_indexes(), 0);
        engine.select(&r, &SelectQuery::new(vec![Predicate::eq(AttrId(0), "Z4")]));
        assert_eq!(engine.built_indexes(), 1);
        // Range queries use the same per-attribute index.
        engine.select(&r, &SelectQuery::new(vec![Predicate::between(AttrId(1), 0i64, 3000i64)]));
        assert_eq!(engine.built_indexes(), 2);
        engine.select(&r, &SelectQuery::new(vec![Predicate::is_null(AttrId(2))]));
        assert_eq!(engine.built_indexes(), 3);
        // Unindexable queries (no predicates) build nothing further.
        engine.select(&r, &SelectQuery::all());
        assert_eq!(engine.built_indexes(), 3);
        // Built postings hold each row exactly once per attribute.
        assert_eq!(engine.posting_entries(), 3 * r.len());
    }

    #[test]
    fn conjunctions_intersect_exactly() {
        // Disjoint predicate lists must produce the empty result even
        // though each list alone is non-empty: the Civic row has year 2004.
        let r = relation();
        let engine = SelectionEngine::new();
        let q = SelectQuery::new(vec![
            Predicate::eq(AttrId(0), "Civic"),
            Predicate::eq(AttrId(1), 2002i64),
        ]);
        assert!(engine.select(&r, &q).is_empty());
    }

    #[test]
    fn intersection_strategies_agree() {
        // Exercise merge, gallop, and bitset paths against a brute-force
        // intersection on deterministic pseudo-random lists.
        let n_rows = 4_096usize;
        let mut state = 0x9_1AD_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut make_list = |len: usize| {
            let mut v: Vec<u32> = (0..len).map(|_| next() % n_rows as u32).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for (la, lb) in [(5, 3_000), (200, 260), (40, 2_000), (1, 4_000), (800, 900)] {
            let a = make_list(la);
            let b = make_list(lb);
            let (small, large) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
            let expect: Vec<u32> =
                small.iter().copied().filter(|x| large.binary_search(x).is_ok()).collect();
            assert_eq!(intersect_pair(small, large, n_rows), expect, "{la}x{lb}");
        }
    }
}
