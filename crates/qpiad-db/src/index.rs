//! Equality indexes and index-backed selection.
//!
//! A QPIAD workload hammers a source with conjunctive equality queries (one
//! per rewritten query, per probe, per aggregate gate). Scanning the whole
//! relation for each is O(n·queries); [`SelectionEngine`] lazily builds one
//! hash index per touched attribute — `value → row positions` plus a null
//! list — picks the most selective indexed predicate as the access path,
//! and verifies the remaining predicates only on the candidates.
//!
//! The engine is internally synchronized so sources can stay `&self` in
//! their query path.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::query::{PredOp, SelectQuery};
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;

/// An equality + range index over one attribute: a hash table for point
/// lookups and a sorted map for `BETWEEN` ranges.
#[derive(Debug)]
pub struct AttrIndex {
    /// Rows per non-null value, in relation order.
    by_value: HashMap<Value, Vec<u32>>,
    /// The same postings in value order, for range predicates.
    sorted: BTreeMap<Value, Vec<u32>>,
    /// Rows whose value is null, in relation order.
    nulls: Vec<u32>,
}

impl AttrIndex {
    /// Builds the index for `attr` over a relation.
    pub fn build(relation: &Relation, attr: AttrId) -> Self {
        let mut by_value: HashMap<Value, Vec<u32>> = HashMap::new();
        let mut nulls = Vec::new();
        for (row, t) in relation.tuples().iter().enumerate() {
            let v = t.value(attr);
            if v.is_null() {
                nulls.push(row as u32);
            } else {
                by_value.entry(v.clone()).or_default().push(row as u32);
            }
        }
        let sorted = by_value
            .iter()
            .map(|(v, rows)| (v.clone(), rows.clone()))
            .collect();
        AttrIndex { by_value, sorted, nulls }
    }

    /// Rows with exactly this value.
    pub fn rows_eq(&self, v: &Value) -> &[u32] {
        self.by_value.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Rows with `lo ≤ value ≤ hi`, in relation order.
    pub fn rows_between(&self, lo: &Value, hi: &Value) -> Vec<u32> {
        let mut rows: Vec<u32> = self
            .sorted
            .range(lo.clone()..=hi.clone())
            .flat_map(|(_, rs)| rs.iter().copied())
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Rows with a null value.
    pub fn null_rows(&self) -> &[u32] {
        &self.nulls
    }

    /// Number of distinct non-null values.
    pub fn distinct_values(&self) -> usize {
        self.by_value.len()
    }
}

/// Lazily indexed selection over a fixed relation.
#[derive(Debug, Default)]
pub struct SelectionEngine {
    indexes: RwLock<HashMap<AttrId, Arc<AttrIndex>>>,
}

impl SelectionEngine {
    /// Creates an engine with no indexes built yet.
    pub fn new() -> Self {
        SelectionEngine::default()
    }

    /// Number of indexes built so far (for tests and diagnostics).
    pub fn built_indexes(&self) -> usize {
        self.indexes.read().len()
    }

    fn index_for(&self, relation: &Relation, attr: AttrId) -> Arc<AttrIndex> {
        if let Some(idx) = self.indexes.read().get(&attr) {
            return Arc::clone(idx);
        }
        let built = Arc::new(AttrIndex::build(relation, attr));
        let mut write = self.indexes.write();
        Arc::clone(write.entry(attr).or_insert(built))
    }

    /// Picks the indexable predicate with the fewest candidate rows.
    fn best_candidates(&self, relation: &Relation, query: &SelectQuery) -> Option<Vec<u32>> {
        let mut best: Option<(usize, Vec<u32>)> = None;
        for p in query.predicates() {
            let candidates: Vec<u32> = match &p.op {
                PredOp::Eq(v) => self.index_for(relation, p.attr).rows_eq(v).to_vec(),
                PredOp::IsNull => self.index_for(relation, p.attr).null_rows().to_vec(),
                PredOp::Between(lo, hi) => {
                    self.index_for(relation, p.attr).rows_between(lo, hi)
                }
            };
            if best.as_ref().map(|(n, _)| candidates.len() < *n).unwrap_or(true) {
                let n = candidates.len();
                best = Some((n, candidates));
                if n == 0 {
                    break;
                }
            }
        }
        best.map(|(_, candidates)| candidates)
    }

    /// Answers a selection with certain-answer semantics, equivalent to
    /// [`Relation::select`] but using the most selective available index as
    /// the access path (hash postings for `Eq`/`IsNull`, sorted postings
    /// for `Between`).
    pub fn select(&self, relation: &Relation, query: &SelectQuery) -> Vec<Tuple> {
        match self.best_candidates(relation, query) {
            Some(candidates) => candidates
                .into_iter()
                .map(|row| &relation.tuples()[row as usize])
                .filter(|t| query.matches(t))
                .cloned()
                .collect(),
            None => relation.select(query),
        }
    }

    /// Counts the certain answers using the same access path as
    /// [`Self::select`], without materializing tuples.
    pub fn count(&self, relation: &Relation, query: &SelectQuery) -> usize {
        match self.best_candidates(relation, query) {
            Some(candidates) => candidates
                .into_iter()
                .filter(|row| query.matches(&relation.tuples()[*row as usize]))
                .count(),
            None => relation.count(query),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::schema::{AttrType, Schema};
    use crate::tuple::TupleId;

    fn relation() -> Relation {
        let schema = Schema::of(
            "cars",
            &[
                ("model", AttrType::Categorical),
                ("year", AttrType::Integer),
                ("body", AttrType::Categorical),
            ],
        );
        let rows: Vec<(Option<&str>, i64, Option<&str>)> = vec![
            (Some("A4"), 2001, Some("Sedan")),
            (Some("Z4"), 2002, Some("Convt")),
            (Some("Z4"), 2003, None),
            (None, 2002, Some("Convt")),
            (Some("A4"), 2002, Some("Sedan")),
            (Some("Civic"), 2004, Some("Sedan")),
        ];
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, (m, y, b))| {
                Tuple::new(
                    TupleId(i as u32),
                    vec![
                        m.map(Value::str).unwrap_or(Value::Null),
                        Value::int(y),
                        b.map(Value::str).unwrap_or(Value::Null),
                    ],
                )
            })
            .collect();
        Relation::new(schema, tuples)
    }

    #[test]
    fn attr_index_partitions_rows() {
        let r = relation();
        let idx = AttrIndex::build(&r, AttrId(0));
        assert_eq!(idx.rows_eq(&Value::str("Z4")), &[1, 2]);
        assert_eq!(idx.rows_eq(&Value::str("A4")), &[0, 4]);
        assert_eq!(idx.rows_eq(&Value::str("F150")), &[] as &[u32]);
        assert_eq!(idx.null_rows(), &[3]);
        assert_eq!(idx.distinct_values(), 3);
    }

    #[test]
    fn range_index_matches_value_order() {
        let r = relation();
        let idx = AttrIndex::build(&r, AttrId(1));
        assert_eq!(idx.rows_between(&Value::int(2002), &Value::int(2003)), vec![1, 2, 3, 4]);
        assert_eq!(idx.rows_between(&Value::int(2005), &Value::int(2010)), Vec::<u32>::new());
        // Inclusive bounds.
        assert_eq!(idx.rows_between(&Value::int(2004), &Value::int(2004)), vec![5]);
    }

    #[test]
    fn engine_matches_scan_semantics() {
        let r = relation();
        let engine = SelectionEngine::new();
        let queries = vec![
            SelectQuery::new(vec![Predicate::eq(AttrId(0), "Z4")]),
            SelectQuery::new(vec![Predicate::eq(AttrId(0), "Z4"), Predicate::eq(AttrId(1), 2002i64)]),
            SelectQuery::new(vec![Predicate::is_null(AttrId(2))]),
            SelectQuery::new(vec![Predicate::between(AttrId(1), 2002i64, 2003i64)]),
            SelectQuery::new(vec![
                Predicate::between(AttrId(1), 2002i64, 2003i64),
                Predicate::eq(AttrId(2), "Convt"),
            ]),
            SelectQuery::all(),
            SelectQuery::new(vec![Predicate::eq(AttrId(0), "F150")]),
        ];
        for q in &queries {
            assert_eq!(engine.select(&r, q), r.select(q), "query {q:?}");
            assert_eq!(engine.count(&r, q), r.count(q), "count {q:?}");
        }
    }

    #[test]
    fn engine_builds_indexes_lazily() {
        let r = relation();
        let engine = SelectionEngine::new();
        assert_eq!(engine.built_indexes(), 0);
        engine.select(&r, &SelectQuery::new(vec![Predicate::eq(AttrId(0), "Z4")]));
        assert_eq!(engine.built_indexes(), 1);
        // Range queries use the same per-attribute index.
        engine.select(&r, &SelectQuery::new(vec![Predicate::between(AttrId(1), 0i64, 3000i64)]));
        assert_eq!(engine.built_indexes(), 2);
        engine.select(&r, &SelectQuery::new(vec![Predicate::is_null(AttrId(2))]));
        assert_eq!(engine.built_indexes(), 3);
        // Unindexable queries (no predicates) build nothing further.
        engine.select(&r, &SelectQuery::all());
        assert_eq!(engine.built_indexes(), 3);
    }

    #[test]
    fn picks_most_selective_candidate_list() {
        // With both predicates indexed, the result must still be exact even
        // though only one candidate list is verified in full.
        let r = relation();
        let engine = SelectionEngine::new();
        let q = SelectQuery::new(vec![
            Predicate::eq(AttrId(0), "Civic"),
            Predicate::eq(AttrId(1), 2002i64),
        ]);
        // Civic has 1 row, year 2002 has 3: results must be empty because
        // the Civic row has year 2004.
        assert!(engine.select(&r, &q).is_empty());
    }
}
