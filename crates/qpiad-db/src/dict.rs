//! Per-relation value interning.
//!
//! A [`Dictionary`] maps each distinct [`Value`] appearing anywhere in a
//! relation to a dense [`ValueId`]. Id 0 is reserved for null, so columnar
//! storage and posting lists can treat "missing" as just another id without
//! ever hashing or comparing a [`Value`] on the hot path.

use crate::hash::FastHashMap;

use crate::value::Value;

/// Dense identifier of a distinct value within one relation's [`Dictionary`].
///
/// Id 0 is reserved for null; every non-null distinct value gets the next
/// free id in first-appearance order (row-major over the relation), which
/// keeps interning deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The reserved id for null.
    pub const NULL: ValueId = ValueId(0);

    /// `true` iff this is the reserved null id.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interning table: distinct values ↔ dense ids, null fixed at id 0.
#[derive(Debug, Clone)]
pub struct Dictionary {
    /// `values[id]` resolves an id back to its value; `values[0]` is null.
    values: Vec<Value>,
    /// Reverse map for non-null values only (null short-circuits to id 0).
    by_value: FastHashMap<Value, ValueId>,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary::new()
    }
}

impl Dictionary {
    /// A dictionary holding only the reserved null id.
    pub fn new() -> Self {
        Dictionary { values: vec![Value::Null], by_value: FastHashMap::default() }
    }

    /// Interns a value, returning its id (allocating the next dense id for
    /// a first appearance). Null always maps to [`ValueId::NULL`].
    pub fn intern(&mut self, v: &Value) -> ValueId {
        if v.is_null() {
            return ValueId::NULL;
        }
        if let Some(&id) = self.by_value.get(v) {
            return id;
        }
        let id = ValueId(self.values.len() as u32);
        self.values.push(v.clone());
        self.by_value.insert(v.clone(), id);
        id
    }

    /// The id of a value, if it was interned. Null resolves to
    /// [`ValueId::NULL`]; an unseen non-null value resolves to `None` (it
    /// cannot match any stored row).
    pub fn lookup(&self, v: &Value) -> Option<ValueId> {
        if v.is_null() {
            Some(ValueId::NULL)
        } else {
            self.by_value.get(v).copied()
        }
    }

    /// Resolves an id back to its value.
    ///
    /// # Panics
    ///
    /// Panics if the id was not allocated by this dictionary.
    pub fn resolve(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Number of allocated ids, *including* the reserved null id.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff no non-null value has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.len() == 1
    }

    /// All allocated ids' values, in id order (`[0]` is null).
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_id_zero() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern(&Value::Null), ValueId::NULL);
        assert!(d.intern(&Value::Null).is_null());
        assert_eq!(d.lookup(&Value::Null), Some(ValueId::NULL));
        assert!(d.resolve(ValueId::NULL).is_null());
        assert!(d.is_empty());
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.intern(&Value::str("a"));
        let b = d.intern(&Value::int(7));
        assert_eq!(a, ValueId(1));
        assert_eq!(b, ValueId(2));
        assert_eq!(d.intern(&Value::str("a")), a);
        assert_eq!(d.len(), 3);
        assert_eq!(d.resolve(a), &Value::str("a"));
        assert_eq!(d.resolve(b), &Value::int(7));
    }

    #[test]
    fn unseen_values_do_not_resolve() {
        let mut d = Dictionary::new();
        d.intern(&Value::str("a"));
        assert_eq!(d.lookup(&Value::str("zzz")), None);
        assert_eq!(d.lookup(&Value::int(0)), None);
    }
}
