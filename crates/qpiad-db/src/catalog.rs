//! Mediator-side global catalog.
//!
//! The mediator exports a *global schema*; each autonomous source has a
//! *local schema* that may support only a subset of the global attributes
//! (paper §4.3, Figure 2). A [`SourceBinding`] records, for every global
//! attribute, which local attribute (if any) carries it, and translates
//! queries and tuples between the two schemas.

use std::sync::Arc;

use crate::error::SourceError;
use crate::query::{Predicate, SelectQuery};
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// The mapping from a global schema onto one source's local schema.
#[derive(Debug, Clone)]
pub struct SourceBinding {
    source_name: String,
    /// `mapping[g]` is the local attribute carrying global attribute `g`.
    mapping: Vec<Option<AttrId>>,
    local_arity: usize,
    /// `true` iff the local schema is attribute-for-attribute the global
    /// one, so lifting a tuple is the identity.
    is_identity: bool,
}

impl SourceBinding {
    /// Builds a binding by matching attribute names between the global and
    /// local schemas.
    pub fn by_name(source_name: impl Into<String>, global: &Schema, local: &Schema) -> Self {
        let mapping: Vec<Option<AttrId>> = global
            .attributes()
            .iter()
            .map(|ga| local.attr_id(ga.name()))
            .collect();
        let is_identity = local.arity() == mapping.len()
            && mapping
                .iter()
                .enumerate()
                .all(|(g, m)| *m == Some(AttrId(g)));
        SourceBinding {
            source_name: source_name.into(),
            mapping,
            local_arity: local.arity(),
            is_identity,
        }
    }

    /// The source this binding targets.
    pub fn source_name(&self) -> &str {
        &self.source_name
    }

    /// The local attribute carrying global attribute `g`, if supported.
    pub fn local_attr(&self, g: AttrId) -> Option<AttrId> {
        self.mapping.get(g.index()).copied().flatten()
    }

    /// `true` iff the source's local schema carries the global attribute.
    pub fn supports(&self, g: AttrId) -> bool {
        self.local_attr(g).is_some()
    }

    /// Translates a query on the global schema into the local schema.
    ///
    /// Fails with [`SourceError::UnsupportedAttribute`] if the query
    /// constrains a global attribute the source does not carry.
    pub fn translate_query(&self, q: &SelectQuery) -> Result<SelectQuery, SourceError> {
        let mut preds = Vec::with_capacity(q.predicates().len());
        for p in q.predicates() {
            match self.local_attr(p.attr) {
                Some(local) => preds.push(Predicate { attr: local, op: p.op.clone() }),
                None => return Err(SourceError::UnsupportedAttribute { attr: p.attr }),
            }
        }
        Ok(SelectQuery::new(preds))
    }

    /// Lifts a tuple from the local schema into the global schema; global
    /// attributes the source does not carry become null.
    pub fn lift_tuple(&self, local: &Tuple) -> Tuple {
        debug_assert_eq!(local.arity(), self.local_arity);
        if self.is_identity {
            // Full-schema source: the lift is the identity, and tuples hold
            // their values behind a shared handle — clone is a refcount bump.
            return local.clone();
        }
        let values = self
            .mapping
            .iter()
            .map(|m| match m {
                Some(l) => local.value(*l).clone(),
                None => Value::Null,
            })
            .collect();
        Tuple::new(local.id(), values)
    }
}

/// The mediator's catalog: the global schema plus a binding per source.
#[derive(Debug, Clone)]
pub struct GlobalCatalog {
    global: Arc<Schema>,
    bindings: Vec<SourceBinding>,
}

impl GlobalCatalog {
    /// Creates a catalog over the given global schema.
    pub fn new(global: Arc<Schema>) -> Self {
        GlobalCatalog { global, bindings: Vec::new() }
    }

    /// The global schema.
    pub fn global_schema(&self) -> &Arc<Schema> {
        &self.global
    }

    /// Registers a source by matching local attribute names against the
    /// global schema, returning the catalog for chaining.
    pub fn with_source(mut self, name: impl Into<String>, local: &Schema) -> Self {
        self.bindings
            .push(SourceBinding::by_name(name, &self.global, local));
        self
    }

    /// All registered bindings.
    pub fn bindings(&self) -> &[SourceBinding] {
        &self.bindings
    }

    /// Binding for a named source.
    pub fn binding(&self, source_name: &str) -> Option<&SourceBinding> {
        self.bindings.iter().find(|b| b.source_name() == source_name)
    }

    /// Sources that support the given global attribute.
    pub fn sources_supporting(&self, g: AttrId) -> Vec<&SourceBinding> {
        self.bindings.iter().filter(|b| b.supports(g)).collect()
    }

    /// Sources that do *not* support the given global attribute — the
    /// candidates for correlated-source retrieval (§4.3).
    pub fn sources_lacking(&self, g: AttrId) -> Vec<&SourceBinding> {
        self.bindings.iter().filter(|b| !b.supports(g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;
    use crate::tuple::TupleId;

    fn global() -> Arc<Schema> {
        Schema::of(
            "gs_used_cars",
            &[
                ("make", AttrType::Categorical),
                ("model", AttrType::Categorical),
                ("body_style", AttrType::Categorical),
            ],
        )
    }

    /// Yahoo!-Autos-like local schema: no body_style, different order.
    fn yahoo_local() -> Arc<Schema> {
        Schema::of(
            "yahoo_autos",
            &[
                ("model", AttrType::Categorical),
                ("make", AttrType::Categorical),
            ],
        )
    }

    #[test]
    fn binding_maps_by_name() {
        let g = global();
        let l = yahoo_local();
        let b = SourceBinding::by_name("yahoo", &g, &l);
        assert_eq!(b.local_attr(g.expect_attr("make")), Some(l.expect_attr("make")));
        assert_eq!(b.local_attr(g.expect_attr("model")), Some(l.expect_attr("model")));
        assert_eq!(b.local_attr(g.expect_attr("body_style")), None);
        assert!(!b.supports(g.expect_attr("body_style")));
    }

    #[test]
    fn query_translation() {
        let g = global();
        let l = yahoo_local();
        let b = SourceBinding::by_name("yahoo", &g, &l);
        let q = SelectQuery::new(vec![Predicate::eq(g.expect_attr("model"), "Z4")]);
        let tq = b.translate_query(&q).unwrap();
        assert_eq!(tq.predicates()[0].attr, l.expect_attr("model"));

        let q = SelectQuery::new(vec![Predicate::eq(g.expect_attr("body_style"), "Convt")]);
        assert!(matches!(
            b.translate_query(&q),
            Err(SourceError::UnsupportedAttribute { .. })
        ));
    }

    #[test]
    fn tuple_lifting_fills_nulls() {
        let g = global();
        let l = yahoo_local();
        let b = SourceBinding::by_name("yahoo", &g, &l);
        let local = Tuple::new(TupleId(7), vec![Value::str("Z4"), Value::str("BMW")]);
        let lifted = b.lift_tuple(&local);
        assert_eq!(lifted.id(), TupleId(7));
        assert_eq!(lifted.value(g.expect_attr("make")), &Value::str("BMW"));
        assert_eq!(lifted.value(g.expect_attr("model")), &Value::str("Z4"));
        assert!(lifted.value(g.expect_attr("body_style")).is_null());
    }

    #[test]
    fn catalog_source_queries() {
        let g = global();
        let catalog = GlobalCatalog::new(Arc::clone(&g))
            .with_source("cars.com", &Schema::of(
                "cars_com",
                &[
                    ("make", AttrType::Categorical),
                    ("model", AttrType::Categorical),
                    ("body_style", AttrType::Categorical),
                ],
            ))
            .with_source("yahoo", &yahoo_local());
        let body = g.expect_attr("body_style");
        let supporting: Vec<_> = catalog
            .sources_supporting(body)
            .iter()
            .map(|b| b.source_name().to_string())
            .collect();
        assert_eq!(supporting, vec!["cars.com"]);
        let lacking: Vec<_> = catalog
            .sources_lacking(body)
            .iter()
            .map(|b| b.source_name().to_string())
            .collect();
        assert_eq!(lacking, vec!["yahoo"]);
        assert!(catalog.binding("yahoo").is_some());
        assert!(catalog.binding("nope").is_none());
    }
}
