//! Fault injection and retry for flaky autonomous sources.
//!
//! QPIAD's mediator has no control over the web databases it fronts (§4.1):
//! a source can be slow, rate-limited, or simply down for part of a
//! session. This module supplies the two halves of the failure model:
//!
//! * [`FaultInjector`] — a wrapper implementing [`AutonomousSource`] that
//!   injects *deterministic, seeded* failures and latency around any inner
//!   source. Determinism is content-based, not order-based: every decision
//!   is a pure function of the plan seed, the query's fingerprint, and the
//!   per-query attempt number, so the same mediation run produces the same
//!   faults at any `QPIAD_THREADS` worker count.
//! * [`RetryPolicy`] + [`query_with_retry`] — the query-issue boundary:
//!   capped exponential backoff with seeded jitter, applied only to
//!   transient errors ([`SourceError::is_transient`]). Failed attempts and
//!   retries are recorded on the source's meter.
//!
//! The injector exists for tests and benches; the retry boundary is what
//! the production mediator calls.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::SourceError;
use crate::query::SelectQuery;
use crate::schema::{AttrId, Schema};
use crate::source::{AutonomousSource, SourceMeter};
use crate::tuple::Tuple;

/// SplitMix64: a tiny, high-quality bit mixer. All fault and jitter
/// decisions flow through it so they are reproducible from a seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stable fingerprint of a query's content. `DefaultHasher::new()` uses
/// fixed keys, so the fingerprint is identical across threads and runs of
/// the same build — the property the injector's determinism rests on.
pub fn query_fingerprint(q: &SelectQuery) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    q.hash(&mut h);
    h.finish()
}

/// `true` with probability `rate`, decided purely by the mixed inputs.
fn decide(rate: f64, seed: u64, fingerprint: u64, attempt: u32, salt: u64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let r = splitmix64(seed ^ fingerprint.rotate_left(17) ^ (u64::from(attempt) << 1) ^ salt);
    (r as f64 / u64::MAX as f64) < rate
}

/// What faults a [`FaultInjector`] injects, and when.
///
/// All knobs compose; the default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the hashed (per query, per attempt) decisions.
    pub seed: u64,
    /// Every distinct query fails its first `n` attempts with a retryable
    /// [`SourceError::Unavailable`] before being served. With a retry
    /// policy allowing more than `n` attempts, a faulted run converges to
    /// exactly the healthy run's answers.
    pub fail_first_attempts: u32,
    /// Probability that any given (query, attempt) fails with a retryable
    /// [`SourceError::Unavailable`].
    pub transient_rate: f64,
    /// Probability that any given (query, attempt) fails with a
    /// [`SourceError::Timeout`].
    pub timeout_rate: f64,
    /// The source is hard-down: every query fails with a non-retryable
    /// [`SourceError::Unavailable`].
    pub permanent: bool,
    /// Queries constraining this attribute always fail with a retryable
    /// [`SourceError::Unavailable`] — a deterministic, order-independent
    /// way to knock out a specific slice of a rewrite plan.
    pub fail_on_attr: Option<AttrId>,
    /// Latency injected before every query is considered (for benches).
    pub latency: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            fail_first_attempts: 0,
            transient_rate: 0.0,
            timeout_rate: 0.0,
            permanent: false,
            fail_on_attr: None,
            latency: Duration::ZERO,
        }
    }
}

impl FaultPlan {
    /// A plan injecting nothing (the default).
    pub fn healthy() -> Self {
        FaultPlan::default()
    }

    /// Overrides the decision seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fails the first `n` attempts of every distinct query.
    pub fn with_fail_first_attempts(mut self, n: u32) -> Self {
        self.fail_first_attempts = n;
        self
    }

    /// Sets the hashed transient-failure probability.
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate;
        self
    }

    /// Sets the hashed timeout probability.
    pub fn with_timeout_rate(mut self, rate: f64) -> Self {
        self.timeout_rate = rate;
        self
    }

    /// Marks the source hard-down for the whole session.
    pub fn with_permanent_outage(mut self) -> Self {
        self.permanent = true;
        self
    }

    /// Fails every query constraining the given attribute.
    pub fn with_fail_on_attr(mut self, attr: AttrId) -> Self {
        self.fail_on_attr = Some(attr);
        self
    }

    /// Injects fixed latency before each query.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }
}

/// Wraps any [`AutonomousSource`] and injects the faults a [`FaultPlan`]
/// describes. Injected failures happen *before* the inner source sees the
/// query, so they consume neither its budget nor its meter.
#[derive(Debug)]
pub struct FaultInjector<S> {
    inner: S,
    plan: FaultPlan,
    /// Per-query-fingerprint attempt counters (content-keyed so decisions
    /// are independent of thread interleaving).
    attempts: Mutex<HashMap<u64, u32>>,
    injected: Mutex<usize>,
}

impl<S: AutonomousSource> FaultInjector<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultInjector { inner, plan, attempts: Mutex::new(HashMap::new()), injected: Mutex::new(0) }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of faults injected so far.
    pub fn injected_faults(&self) -> usize {
        *self.injected.lock()
    }

    fn inject(&self, err: SourceError) -> Result<Vec<Tuple>, SourceError> {
        *self.injected.lock() += 1;
        Err(err)
    }
}

impl<S: AutonomousSource> AutonomousSource for FaultInjector<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn supports(&self, attr: AttrId) -> bool {
        self.inner.supports(attr)
    }

    fn allows_null_binding(&self) -> bool {
        self.inner.allows_null_binding()
    }

    fn has_query_budget(&self) -> bool {
        self.inner.has_query_budget()
    }

    fn query(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError> {
        if !self.plan.latency.is_zero() {
            // Injected latency rides the health module's clock (logical in
            // tests/benches) and accrues on the meter so the hedging
            // layer's slow-source detection sees it.
            crate::health::sleep(self.plan.latency);
            self.inner.note_latency(self.plan.latency);
        }
        if self.plan.permanent {
            return self.inject(SourceError::Unavailable { retryable: false });
        }
        if let Some(attr) = self.plan.fail_on_attr {
            if q.predicates().iter().any(|p| p.attr == attr) {
                return self.inject(SourceError::Unavailable { retryable: true });
            }
        }
        let fp = query_fingerprint(q);
        let attempt = {
            let mut attempts = self.attempts.lock();
            let slot = attempts.entry(fp).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        if attempt < self.plan.fail_first_attempts {
            return self.inject(SourceError::Unavailable { retryable: true });
        }
        if decide(self.plan.transient_rate, self.plan.seed, fp, attempt, 0x51) {
            return self.inject(SourceError::Unavailable { retryable: true });
        }
        if decide(self.plan.timeout_rate, self.plan.seed, fp, attempt, 0x7e) {
            return self.inject(SourceError::Timeout {
                waited_ms: self.plan.latency.as_millis() as u64,
            });
        }
        self.inner.query(q)
    }

    fn meter(&self) -> SourceMeter {
        self.inner.meter()
    }

    fn reset_meter(&self) {
        self.inner.reset_meter();
        self.attempts.lock().clear();
        *self.injected.lock() = 0;
    }

    fn note_retries(&self, n: usize) {
        self.inner.note_retries(n);
    }

    fn note_failure(&self) {
        self.inner.note_failure();
    }

    fn note_degraded(&self) {
        self.inner.note_degraded();
    }

    fn note_quarantined(&self, n: usize) {
        self.inner.note_quarantined(n);
    }

    fn note_hedge(&self) {
        self.inner.note_hedge();
    }

    fn note_breaker_skip(&self) {
        self.inner.note_breaker_skip();
    }

    fn note_shed(&self, n: usize) {
        self.inner.note_shed(n);
    }

    fn note_deadline_refused(&self) {
        self.inner.note_deadline_refused();
    }

    fn note_knowledge_unavailable(&self) {
        self.inner.note_knowledge_unavailable();
    }

    fn note_drift(&self) {
        self.inner.note_drift();
    }

    fn note_refresh(&self) {
        self.inner.note_refresh();
    }

    fn note_refresh_failure(&self) {
        self.inner.note_refresh_failure();
    }

    fn note_latency(&self, d: Duration) {
        self.inner.note_latency(d);
    }

    fn note_plan_cache_hit(&self) {
        self.inner.note_plan_cache_hit();
    }

    fn note_plan_cache_miss(&self) {
        self.inner.note_plan_cache_miss();
    }
}

/// A deterministic *semantic* mutation of live responses: where
/// [`FaultInjector`] makes a source fail, [`SkewPlan`] makes it lie.
///
/// Each returned tuple keeps its shape and still satisfies the issued
/// query — queries constraining the skewed attribute pass through
/// untouched, so response validation keeps the tuples and nothing trips a
/// breaker — but the skewed attribute's value is rewritten with
/// probability `rate`. That is exactly the failure mode drift detection
/// (`qpiad_learn::drift`) exists to catch: a source whose distributions
/// shifted under the mediator's mined knowledge.
///
/// Decisions are content-keyed on the tuple id (same discipline as
/// [`FaultPlan`]): a given tuple is either always skewed or never skewed
/// for a given seed, independent of query order or thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewPlan {
    /// Seed for the per-tuple decisions.
    pub seed: u64,
    /// The attribute whose values drift.
    pub attr: AttrId,
    /// The value drifted tuples report instead of their stored one.
    pub replacement: crate::value::Value,
    /// Probability that any given tuple is skewed.
    pub rate: f64,
}

impl SkewPlan {
    /// Skews `attr` to `replacement` on the given fraction of tuples.
    pub fn new(attr: AttrId, replacement: crate::value::Value, rate: f64, seed: u64) -> Self {
        SkewPlan { seed, attr, replacement, rate }
    }
}

/// Wraps any [`AutonomousSource`] and applies a [`SkewPlan`] to its
/// responses. Exists for drift-detection tests and benches.
#[derive(Debug)]
pub struct SkewInjector<S> {
    inner: S,
    plan: SkewPlan,
    skewed: Mutex<usize>,
}

impl<S: AutonomousSource> SkewInjector<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: SkewPlan) -> Self {
        SkewInjector { inner, plan, skewed: Mutex::new(0) }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The active plan.
    pub fn plan(&self) -> &SkewPlan {
        &self.plan
    }

    /// Number of tuple values skewed so far (counting repeats across
    /// queries).
    pub fn skewed_values(&self) -> usize {
        *self.skewed.lock()
    }
}

impl<S: AutonomousSource> AutonomousSource for SkewInjector<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn supports(&self, attr: AttrId) -> bool {
        self.inner.supports(attr)
    }

    fn allows_null_binding(&self) -> bool {
        self.inner.allows_null_binding()
    }

    fn has_query_budget(&self) -> bool {
        self.inner.has_query_budget()
    }

    fn query(&self, q: &SelectQuery) -> Result<Vec<Tuple>, SourceError> {
        let mut tuples = self.inner.query(q)?;
        // A query constraining the skewed attribute selected on the stored
        // value; rewriting it would violate the query's own predicate and
        // get the response quarantined. Real drift is invisible to such
        // queries too: they only ever see tuples that still match.
        if q.predicates().iter().any(|p| p.attr == self.plan.attr) {
            return Ok(tuples);
        }
        let mut n = 0usize;
        for t in tuples.iter_mut() {
            if self.plan.attr.index() >= t.arity() || t.values()[self.plan.attr.index()].is_null()
            {
                continue; // keep the source's incompleteness intact
            }
            let r = splitmix64(self.plan.seed ^ u64::from(t.id().0).rotate_left(32) ^ 0xd21f);
            if (r as f64 / u64::MAX as f64) < self.plan.rate {
                *t = t.with_value(self.plan.attr, self.plan.replacement.clone());
                n += 1;
            }
        }
        if n > 0 {
            *self.skewed.lock() += n;
        }
        Ok(tuples)
    }

    fn meter(&self) -> SourceMeter {
        self.inner.meter()
    }

    fn reset_meter(&self) {
        self.inner.reset_meter();
        *self.skewed.lock() = 0;
    }

    fn note_retries(&self, n: usize) {
        self.inner.note_retries(n);
    }

    fn note_failure(&self) {
        self.inner.note_failure();
    }

    fn note_degraded(&self) {
        self.inner.note_degraded();
    }

    fn note_quarantined(&self, n: usize) {
        self.inner.note_quarantined(n);
    }

    fn note_hedge(&self) {
        self.inner.note_hedge();
    }

    fn note_breaker_skip(&self) {
        self.inner.note_breaker_skip();
    }

    fn note_shed(&self, n: usize) {
        self.inner.note_shed(n);
    }

    fn note_deadline_refused(&self) {
        self.inner.note_deadline_refused();
    }

    fn note_knowledge_unavailable(&self) {
        self.inner.note_knowledge_unavailable();
    }

    fn note_drift(&self) {
        self.inner.note_drift();
    }

    fn note_refresh(&self) {
        self.inner.note_refresh();
    }

    fn note_refresh_failure(&self) {
        self.inner.note_refresh_failure();
    }

    fn note_latency(&self, d: Duration) {
        self.inner.note_latency(d);
    }

    fn note_plan_cache_hit(&self) {
        self.inner.note_plan_cache_hit();
    }

    fn note_plan_cache_miss(&self) {
        self.inner.note_plan_cache_miss();
    }
}

/// How the mediation layer retries transient source failures.
///
/// The backoff for attempt `i` (0-based) is `base_delay · 2^i`, capped at
/// `max_delay`, plus up to 50 % seeded jitter — deterministic for a given
/// (seed, query, attempt), so parallel runs stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first issue; at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff.
    pub max_delay: Duration,
    /// Seed for the jitter; jitter is skipped when `base_delay` is zero.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts with no sleeping — safe for tests; production
    /// deployments should configure a real backoff via [`Self::with_backoff`].
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: a single attempt, fail-fast.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Overrides the attempt cap (clamped to at least 1).
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Sets the exponential backoff's base and cap.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_delay = base;
        self.max_delay = max;
        self
    }

    /// Overrides the jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The backoff to sleep before retry number `attempt` (0-based) of the
    /// query with the given fingerprint.
    pub fn backoff(&self, fingerprint: u64, attempt: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        let capped = if self.max_delay.is_zero() { exp } else { exp.min(self.max_delay) };
        // Up to +50 % deterministic jitter so co-scheduled retries spread.
        let r = splitmix64(self.jitter_seed ^ fingerprint ^ u64::from(attempt));
        let frac = u128::from(r as u32); // uniform in 0..2^32
        let jitter_nanos = (capped.as_nanos() * frac / (u128::from(u32::MAX) + 1) / 2) as u64;
        capped + Duration::from_nanos(jitter_nanos)
    }
}

/// Issues a query through the retry boundary: transient errors are retried
/// under `policy` with capped, jittered backoff; every failed attempt and
/// every retry is recorded on the source's meter. The final error (if any)
/// is returned unchanged for the caller's degradation logic.
pub fn query_with_retry(
    source: &dyn AutonomousSource,
    q: &SelectQuery,
    policy: &RetryPolicy,
) -> Result<Vec<Tuple>, SourceError> {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        match source.query(q) {
            Ok(tuples) => return Ok(tuples),
            Err(e) => {
                if e.is_failure() {
                    source.note_failure();
                }
                if e.is_transient() && attempt + 1 < max_attempts {
                    source.note_retries(1);
                    let delay = policy.backoff(query_fingerprint(q), attempt);
                    // Backoff rides the injectable clock: logical time in
                    // tests/benches, so par workers never really block.
                    crate::health::sleep(delay);
                    attempt += 1;
                    continue;
                }
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::relation::Relation;
    use crate::schema::{AttrType, Schema};
    use crate::source::WebSource;
    use crate::tuple::TupleId;
    use crate::value::Value;

    fn relation() -> Relation {
        let schema = Schema::of(
            "cars",
            &[
                ("model", AttrType::Categorical),
                ("body", AttrType::Categorical),
            ],
        );
        let rows = [("A4", "Convt"), ("Z4", "Convt"), ("Civic", "Sedan")];
        let tuples = rows
            .iter()
            .enumerate()
            .map(|(i, (m, b))| {
                Tuple::new(TupleId(i as u32), vec![Value::str(*m), Value::str(*b)])
            })
            .collect();
        Relation::new(schema, tuples)
    }

    fn model_query(src: &dyn AutonomousSource) -> SelectQuery {
        let model = src.schema().expect_attr("model");
        SelectQuery::new(vec![Predicate::eq(model, "Z4")])
    }

    #[test]
    fn healthy_plan_is_transparent() {
        let src = FaultInjector::new(WebSource::new("cars", relation()), FaultPlan::healthy());
        let q = model_query(&src);
        assert_eq!(src.query(&q).unwrap().len(), 1);
        assert_eq!(src.injected_faults(), 0);
        assert_eq!(src.meter().queries, 1);
    }

    #[test]
    fn fail_first_attempts_then_serve() {
        let plan = FaultPlan::healthy().with_fail_first_attempts(2);
        let src = FaultInjector::new(WebSource::new("cars", relation()), plan);
        let q = model_query(&src);
        assert_eq!(src.query(&q), Err(SourceError::Unavailable { retryable: true }));
        assert_eq!(src.query(&q), Err(SourceError::Unavailable { retryable: true }));
        assert_eq!(src.query(&q).unwrap().len(), 1);
        assert_eq!(src.injected_faults(), 2);
        // Injected failures never reached the inner source.
        assert_eq!(src.meter().queries, 1);
        assert_eq!(src.meter().rejected, 0);
    }

    #[test]
    fn with_latency_accrues_on_the_meter_per_query() {
        // Injected latency must be visible to the hedging layer via the
        // meter, whether the query succeeds or is failed by the plan.
        let lat = Duration::from_millis(3);
        let plan = FaultPlan::healthy().with_latency(lat).with_fail_first_attempts(1);
        let src = FaultInjector::new(WebSource::new("cars", relation()), plan);
        let q = model_query(&src);
        assert!(src.query(&q).is_err());
        assert!(src.query(&q).is_ok());
        assert_eq!(src.meter().latency_ns, 2 * lat.as_nanos() as u64);
    }

    #[test]
    fn attempt_counters_are_per_query_content() {
        let plan = FaultPlan::healthy().with_fail_first_attempts(1);
        let src = FaultInjector::new(WebSource::new("cars", relation()), plan);
        let body = src.schema().expect_attr("body");
        let q1 = model_query(&src);
        let q2 = SelectQuery::new(vec![Predicate::eq(body, "Sedan")]);
        // Each distinct query fails its own first attempt, regardless of
        // global issue order.
        assert!(src.query(&q1).is_err());
        assert!(src.query(&q2).is_err());
        assert!(src.query(&q1).is_ok());
        assert!(src.query(&q2).is_ok());
    }

    #[test]
    fn permanent_outage_never_recovers() {
        let plan = FaultPlan::healthy().with_permanent_outage();
        let src = FaultInjector::new(WebSource::new("cars", relation()), plan);
        let q = model_query(&src);
        for _ in 0..5 {
            assert_eq!(src.query(&q), Err(SourceError::Unavailable { retryable: false }));
        }
        assert_eq!(src.meter().queries, 0);
    }

    #[test]
    fn fail_on_attr_targets_matching_queries_only() {
        let rel = relation();
        let model = rel.schema().expect_attr("model");
        let body = rel.schema().expect_attr("body");
        let plan = FaultPlan::healthy().with_fail_on_attr(model);
        let src = FaultInjector::new(WebSource::new("cars", rel), plan);
        let on_model = SelectQuery::new(vec![Predicate::eq(model, "Z4")]);
        let on_body = SelectQuery::new(vec![Predicate::eq(body, "Sedan")]);
        assert!(src.query(&on_model).is_err());
        assert!(src.query(&on_body).is_ok());
    }

    #[test]
    fn hashed_rates_are_deterministic() {
        let plan = FaultPlan::healthy().with_seed(7).with_transient_rate(0.5);
        let mk = || FaultInjector::new(WebSource::new("cars", relation()), plan);
        let a = mk();
        let b = mk();
        let q = model_query(&a);
        for _ in 0..20 {
            assert_eq!(a.query(&q).is_ok(), b.query(&q).is_ok());
        }
        assert_eq!(a.injected_faults(), b.injected_faults());
        // A 50 % rate over 20 attempts virtually surely injects something.
        assert!(a.injected_faults() > 0);
    }

    #[test]
    fn retry_recovers_transient_failures_and_meters_them() {
        let plan = FaultPlan::healthy().with_fail_first_attempts(2);
        let src = FaultInjector::new(WebSource::new("cars", relation()), plan);
        let q = model_query(&src);
        let policy = RetryPolicy::default().with_max_attempts(4);
        let tuples = query_with_retry(&src, &q, &policy).unwrap();
        assert_eq!(tuples.len(), 1);
        let m = src.meter();
        assert_eq!(m.retries, 2);
        assert_eq!(m.failures, 2);
        assert_eq!(m.queries, 1);
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let plan = FaultPlan::healthy().with_fail_first_attempts(10);
        let src = FaultInjector::new(WebSource::new("cars", relation()), plan);
        let q = model_query(&src);
        let policy = RetryPolicy::default().with_max_attempts(3);
        assert_eq!(
            query_with_retry(&src, &q, &policy),
            Err(SourceError::Unavailable { retryable: true })
        );
        let m = src.meter();
        assert_eq!(m.retries, 2);
        assert_eq!(m.failures, 3);
    }

    #[test]
    fn retry_does_not_touch_non_transient_errors() {
        let src = WebSource::new("cars", relation());
        let body = src.schema().expect_attr("body");
        let q = SelectQuery::new(vec![Predicate::is_null(body)]);
        let policy = RetryPolicy::default().with_max_attempts(5);
        assert!(matches!(
            query_with_retry(&src, &q, &policy),
            Err(SourceError::NullBindingUnsupported { .. })
        ));
        let m = src.meter();
        assert_eq!(m.retries, 0);
        assert_eq!(m.failures, 0); // a rejection, not a failure
        assert_eq!(m.rejected, 1); // exactly one issue, no retries
    }

    #[test]
    fn backoff_grows_is_capped_and_deterministic() {
        let policy = RetryPolicy::default()
            .with_backoff(Duration::from_millis(10), Duration::from_millis(35));
        let d0 = policy.backoff(42, 0);
        let d1 = policy.backoff(42, 1);
        let d5 = policy.backoff(42, 5);
        assert!(d0 >= Duration::from_millis(10) && d0 <= Duration::from_millis(15));
        assert!(d1 >= Duration::from_millis(20) && d1 <= Duration::from_millis(30));
        // Capped at max_delay (+50 % jitter headroom).
        assert!(d5 >= Duration::from_millis(35) && d5 <= Duration::from_millis(53));
        assert_eq!(policy.backoff(42, 3), policy.backoff(42, 3));
        // Zero base ⇒ no sleeping at all.
        assert_eq!(RetryPolicy::default().backoff(42, 3), Duration::ZERO);
    }

    #[test]
    fn skew_injector_mutates_deterministically_by_tuple_id() {
        let rel = relation();
        let body = rel.schema().expect_attr("body");
        let model = rel.schema().expect_attr("model");
        let plan = SkewPlan::new(body, Value::str("SUV"), 1.0, 11);
        let src = SkewInjector::new(WebSource::new("cars", rel), plan);

        // A query not constraining `body` sees every body skewed...
        let q = SelectQuery::new(vec![Predicate::eq(model, "Z4")]);
        let res = src.query(&q).unwrap();
        assert!(res.iter().all(|t| t.values()[body.index()] == Value::str("SUV")));
        assert_eq!(src.skewed_values(), 1);

        // ...and repeating the query skews the same tuples the same way.
        let again = src.query(&q).unwrap();
        assert_eq!(res, again);
    }

    #[test]
    fn skew_injector_leaves_constrained_attributes_alone() {
        // Queries binding the skewed attribute must see consistent, valid
        // responses — drift models a shifted distribution, not a source
        // that contradicts its own predicate evaluation.
        let rel = relation();
        let body = rel.schema().expect_attr("body");
        let plan = SkewPlan::new(body, Value::str("SUV"), 1.0, 11);
        let src = SkewInjector::new(WebSource::new("cars", rel), plan);
        let q = SelectQuery::new(vec![Predicate::eq(body, "Convt")]);
        let res = src.query(&q).unwrap();
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|t| t.values()[body.index()] == Value::str("Convt")));
        assert_eq!(src.skewed_values(), 0);
    }

    #[test]
    fn skew_rate_partitions_tuples_stably() {
        let rel = relation();
        let body = rel.schema().expect_attr("body");
        let mk = |seed| {
            SkewInjector::new(
                WebSource::new("cars", relation()),
                SkewPlan::new(body, Value::str("SUV"), 0.5, seed),
            )
        };
        let a = mk(3);
        let b = mk(3);
        let q = SelectQuery::all();
        assert_eq!(a.query(&q).unwrap(), b.query(&q).unwrap());
        let _ = rel;
    }

    #[test]
    fn reset_meter_clears_fault_state() {
        let plan = FaultPlan::healthy().with_fail_first_attempts(1);
        let src = FaultInjector::new(WebSource::new("cars", relation()), plan);
        let q = model_query(&src);
        assert!(src.query(&q).is_err());
        assert!(src.query(&q).is_ok());
        src.reset_meter();
        assert_eq!(src.injected_faults(), 0);
        // Attempt history cleared: the first attempt fails again.
        assert!(src.query(&q).is_err());
    }
}
