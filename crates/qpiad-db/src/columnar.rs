//! Interned columnar mirror of a [`Relation`](crate::relation::Relation).
//!
//! A [`ColumnarRelation`] stores one dense `Vec<ValueId>` column per
//! attribute against a single relation-wide [`Dictionary`]. It is built once
//! at relation construction and shared (behind an `Arc`) by every clone of
//! the relation, so selection engines, classifiers, and partition refinement
//! can run over `u32` ids instead of hashing `Arc<str>` values.

use crate::dict::{Dictionary, ValueId};
use crate::schema::AttrId;
use crate::tuple::Tuple;

/// Column-major, dictionary-encoded image of a relation's tuples.
#[derive(Debug)]
pub struct ColumnarRelation {
    dict: Dictionary,
    /// One column per attribute; `columns[a][row]` is the interned value of
    /// attribute `a` in row `row` (relation order).
    columns: Vec<Vec<ValueId>>,
    n_rows: usize,
}

impl ColumnarRelation {
    /// Builds the columnar image of `tuples` over `arity` attributes.
    ///
    /// Values are interned row-major, so id assignment (and therefore every
    /// downstream id-ordered structure) is deterministic.
    pub fn build(arity: usize, tuples: &[Tuple]) -> Self {
        let mut dict = Dictionary::new();
        let mut columns: Vec<Vec<ValueId>> =
            (0..arity).map(|_| Vec::with_capacity(tuples.len())).collect();
        for t in tuples {
            for (col, v) in columns.iter_mut().zip(t.values()) {
                col.push(dict.intern(v));
            }
        }
        ColumnarRelation { dict, columns, n_rows: tuples.len() }
    }

    /// The relation-wide dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The interned column of one attribute, in relation order.
    pub fn column(&self, attr: AttrId) -> &[ValueId] {
        &self.columns[attr.index()]
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The interned value at (`row`, `attr`).
    pub fn vid_at(&self, row: usize, attr: AttrId) -> ValueId {
        self.columns[attr.index()][row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleId;
    use crate::value::Value;

    fn tuples() -> Vec<Tuple> {
        vec![
            Tuple::new(TupleId(0), vec![Value::str("a"), Value::int(1)]),
            Tuple::new(TupleId(1), vec![Value::Null, Value::int(1)]),
            Tuple::new(TupleId(2), vec![Value::str("a"), Value::Null]),
        ]
    }

    #[test]
    fn columns_mirror_rows() {
        let c = ColumnarRelation::build(2, &tuples());
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.arity(), 2);
        // Row-major interning: "a" = 1, 1i64 = 2.
        assert_eq!(c.column(AttrId(0)), &[ValueId(1), ValueId::NULL, ValueId(1)]);
        assert_eq!(c.column(AttrId(1)), &[ValueId(2), ValueId(2), ValueId::NULL]);
        assert_eq!(c.vid_at(2, AttrId(0)), ValueId(1));
    }

    #[test]
    fn every_cell_round_trips_through_the_dictionary() {
        let ts = tuples();
        let c = ColumnarRelation::build(2, &ts);
        for (row, t) in ts.iter().enumerate() {
            for a in 0..2 {
                let vid = c.vid_at(row, AttrId(a));
                assert_eq!(c.dict().resolve(vid), t.value(AttrId(a)));
            }
        }
    }
}
