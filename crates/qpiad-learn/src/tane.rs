//! TANE-style levelwise discovery of AFDs and AKeys (§5.1, [12, 19]).
//!
//! The search enumerates determining sets level by level (size 1, 2, ...,
//! `max_lhs`), computing each set's stripped partition as a product of the
//! previous level's partition with a single-attribute partition. For every
//! candidate `X → A` the confidence is `1 − g3(X → A)`; for every candidate
//! set `X` the AKey confidence is `1 − g3_key(X)`.
//!
//! Two standard reductions keep the output useful:
//!
//! * **Minimality** — since `g3` is monotone (adding lhs attributes never
//!   decreases confidence), unconstrained search would always prefer the
//!   widest determining set. An AFD `X → A` is emitted only if it improves
//!   on every immediate subset by at least `minimality_epsilon`.
//! * **Superkey pruning** — a set whose partition is all singletons is a
//!   key; its supersets determine everything trivially and are never useful
//!   for prediction, so they are not expanded.
//!
//! Within a level every candidate's partition product and `g3` errors are
//! independent, so they are evaluated across the [`qpiad_db::par`] worker
//! pool. Candidate enumeration and all pruning/minimality decisions stay in
//! sequential passes over the index-ordered results, which makes the output
//! byte-identical at any thread count.

use std::collections::HashMap;

use qpiad_db::par;
use qpiad_db::{AttrId, Relation};

use crate::afd::{AKey, Afd};
use crate::partition::StrippedPartition;

/// Parameters of the levelwise search.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TaneConfig {
    /// Minimum confidence β for an AFD to be reported.
    pub min_conf: f64,
    /// Maximum determining-set size.
    pub max_lhs: usize,
    /// Minimum confidence improvement over every immediate subset for a
    /// wider determining set to be reported.
    pub minimality_epsilon: f64,
    /// Minimum confidence for an AKey to be reported.
    pub akey_min_conf: f64,
    /// Near-key suppression: a set whose AKey confidence reaches this
    /// threshold is never used as a determining set and never expanded —
    /// its value combinations are mostly unique, so a classifier built on
    /// it cannot generalize (the in-search form of the §5.1 pruning rule).
    pub near_key_conf: f64,
}

impl Default for TaneConfig {
    fn default() -> Self {
        TaneConfig {
            min_conf: 0.3,
            max_lhs: 3,
            minimality_epsilon: 0.05,
            akey_min_conf: 0.8,
            near_key_conf: 0.5,
        }
    }
}

/// The discovery output.
#[derive(Debug, Clone, Default)]
pub struct TaneResult {
    /// All minimal AFDs with confidence ≥ β.
    pub afds: Vec<Afd>,
    /// All attribute sets (up to `max_lhs`) with AKey confidence ≥ the
    /// configured threshold.
    pub akeys: Vec<AKey>,
    /// AKey confidence of every evaluated attribute set (used by the
    /// pruning rule).
    pub akey_conf: HashMap<Vec<AttrId>, f64>,
}

impl TaneResult {
    /// AKey confidence of a set, falling back to the best evaluated subset
    /// (monotone lower bound) when the exact set was pruned from the search.
    pub fn akey_confidence(&self, attrs: &[AttrId]) -> f64 {
        if let Some(c) = self.akey_conf.get(attrs) {
            return *c;
        }
        // Monotone lower bound over single attributes.
        attrs
            .iter()
            .filter_map(|a| self.akey_conf.get(std::slice::from_ref(a)))
            .fold(0.0, |acc, c| acc.max(*c))
    }
}

/// Runs the levelwise search over a (sampled) relation.
/// One candidate set's parallel evaluation: its product partition, AKey
/// confidence, and (unless near-key-suppressed) each rhs's g3 confidence.
type CandidateEval = (StrippedPartition, f64, Vec<(AttrId, f64)>);

pub fn discover(relation: &Relation, config: &TaneConfig) -> TaneResult {
    let attrs: Vec<AttrId> = relation.schema().attr_ids().collect();
    let n = relation.len();
    let mut result = TaneResult::default();
    if n == 0 || attrs.is_empty() {
        return result;
    }

    // Single-attribute partitions and lookups, reused throughout. Each
    // column's partition is independent work.
    let singles: Vec<StrippedPartition> =
        par::parallel_map(&attrs, |a| StrippedPartition::from_column(relation, *a));
    let lookups: Vec<Vec<u32>> = par::parallel_map(&singles, StrippedPartition::lookup);

    // conf[(lhs, rhs)] for the minimality check.
    let mut conf_map: HashMap<(Vec<AttrId>, AttrId), f64> = HashMap::new();

    // Level-1 g3 errors: one unit of work per (lhs attribute, rhs attribute)
    // pair, evaluated in parallel, consumed in attribute order below.
    let single_confs: Vec<Vec<f64>> = par::parallel_map_indexed(attrs.len(), |i| {
        (0..attrs.len())
            .map(|j| if i == j { 0.0 } else { 1.0 - singles[i].g3_error(&lookups[j]) })
            .collect()
    });

    // Current level: (sorted attr set, partition). Level 1 seeds it.
    let mut level: Vec<(Vec<AttrId>, StrippedPartition)> = Vec::new();
    for (i, a) in attrs.iter().enumerate() {
        let set = vec![*a];
        let key_conf = 1.0 - singles[i].g3_key_error();
        result.akey_conf.insert(set.clone(), key_conf);
        if key_conf >= config.akey_min_conf {
            result.akeys.push(AKey::new(set.clone(), key_conf));
        }
        if key_conf >= config.near_key_conf {
            continue; // near-key attribute: useless determining set
        }
        for (j, rhs) in attrs.iter().enumerate() {
            if i == j {
                continue;
            }
            let conf = single_confs[i][j];
            conf_map.insert((set.clone(), *rhs), conf);
            if conf >= config.min_conf {
                result.afds.push(Afd::new(set.clone(), *rhs, conf));
            }
        }
        if !singles[i].classes().is_empty() {
            level.push((set, singles[i].clone()));
        }
    }

    for _ in 2..=config.max_lhs {
        // Enumerate the level's candidates sequentially (the dedup depends
        // on enumeration order) before any evaluation.
        let mut candidates: Vec<(usize, usize, Vec<AttrId>)> = Vec::new();
        let mut seen: HashMap<Vec<AttrId>, ()> = HashMap::new();
        for (parent, (set, _)) in level.iter().enumerate() {
            let last = *set.last().expect("non-empty set");
            for (k, extend) in attrs.iter().enumerate() {
                // Extend with attributes after the last one to enumerate
                // each combination once.
                if *extend <= last {
                    continue;
                }
                let mut new_set = set.clone();
                new_set.push(*extend);
                if seen.insert(new_set.clone(), ()).is_some() {
                    continue;
                }
                candidates.push((parent, k, new_set));
            }
        }

        // Independent per candidate: the partition product, its AKey
        // confidence, and (unless near-key-suppressed) every rhs's g3
        // confidence.
        let evaluated: Vec<CandidateEval> =
            par::parallel_map(&candidates, |(parent, k, new_set)| {
                let p = level[*parent].1.product(&lookups[*k]);
                let key_conf = 1.0 - p.g3_key_error();
                let rhs_confs = if key_conf >= config.near_key_conf {
                    Vec::new() // pruned below; skip the rhs scans
                } else {
                    attrs
                        .iter()
                        .enumerate()
                        .filter(|(_, rhs)| !new_set.contains(rhs))
                        .map(|(j, rhs)| (*rhs, 1.0 - p.g3_error(&lookups[j])))
                        .collect()
                };
                (p, key_conf, rhs_confs)
            });

        // Emit in enumeration order. Minimality only consults immediate
        // subsets, which are one level down and thus already in conf_map.
        let mut next: Vec<(Vec<AttrId>, StrippedPartition)> = Vec::new();
        for ((_, _, new_set), (p, key_conf, rhs_confs)) in
            candidates.into_iter().zip(evaluated)
        {
            result.akey_conf.insert(new_set.clone(), key_conf);
            if key_conf >= config.akey_min_conf {
                result.akeys.push(AKey::new(new_set.clone(), key_conf));
            }
            if key_conf >= config.near_key_conf {
                continue; // near-key set: neither emit nor expand
            }
            for (rhs, conf) in rhs_confs {
                conf_map.insert((new_set.clone(), rhs), conf);
                if conf < config.min_conf {
                    continue;
                }
                // Minimality: every immediate subset must be beaten by at
                // least epsilon.
                let minimal = immediate_subsets(&new_set).all(|sub| {
                    conf_map
                        .get(&(sub, rhs))
                        .map(|c| conf - c >= config.minimality_epsilon)
                        .unwrap_or(true)
                });
                if minimal {
                    result.afds.push(Afd::new(new_set.clone(), rhs, conf));
                }
            }
            if !p.classes().is_empty() {
                next.push((new_set, p));
            }
        }
        level = next;
        if level.is_empty() {
            break;
        }
    }

    result
}

fn immediate_subsets(set: &[AttrId]) -> impl Iterator<Item = Vec<AttrId>> + '_ {
    (0..set.len()).map(move |skip| {
        set.iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, a)| *a)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_db::{AttrType, Schema, Tuple, TupleId, Value};

    /// Builds a relation where:
    /// * `model → make` holds exactly,
    /// * `model → body` holds with one violation,
    /// * `vin` is a key.
    fn fixture() -> Relation {
        let schema = Schema::of(
            "cars",
            &[
                ("vin", AttrType::Categorical),
                ("make", AttrType::Categorical),
                ("model", AttrType::Categorical),
                ("body", AttrType::Categorical),
            ],
        );
        let rows = [
            ("v1", "Honda", "Civic", "Sedan"),
            ("v2", "Honda", "Civic", "Sedan"),
            ("v3", "Honda", "Civic", "Sedan"),
            ("v4", "Honda", "Civic", "Coupe"), // the violation
            ("v5", "Honda", "Accord", "Sedan"),
            ("v6", "Honda", "Accord", "Sedan"),
            ("v7", "BMW", "Z4", "Convt"),
            ("v8", "BMW", "Z4", "Convt"),
            ("v9", "BMW", "Z4", "Convt"),
            ("v10", "BMW", "Z4", "Convt"),
        ];
        let tuples = rows
            .iter()
            .enumerate()
            .map(|(i, (v, mk, md, b))| {
                Tuple::new(
                    TupleId(i as u32),
                    vec![Value::str(v), Value::str(mk), Value::str(md), Value::str(b)],
                )
            })
            .collect();
        Relation::new(schema, tuples)
    }

    fn find<'a>(afds: &'a [Afd], lhs: &[usize], rhs: usize) -> Option<&'a Afd> {
        let lhs: Vec<AttrId> = lhs.iter().map(|i| AttrId(*i)).collect();
        afds.iter().find(|a| a.lhs == lhs && a.rhs == AttrId(rhs))
    }

    #[test]
    fn finds_exact_and_approximate_dependencies() {
        let r = fixture();
        let res = discover(&r, &TaneConfig::default());
        // model → make exact.
        let afd = find(&res.afds, &[2], 1).expect("model → make");
        assert!((afd.confidence - 1.0).abs() < 1e-12);
        // model → body with one violation out of 10 rows.
        let afd = find(&res.afds, &[2], 3).expect("model → body");
        assert!((afd.confidence - 0.9).abs() < 1e-12);
    }

    #[test]
    fn reports_keys_as_akeys() {
        let r = fixture();
        let res = discover(&r, &TaneConfig::default());
        let vin_key = res
            .akeys
            .iter()
            .find(|k| k.attrs == vec![AttrId(0)])
            .expect("vin AKey");
        assert!((vin_key.confidence - 1.0).abs() < 1e-12);
        assert_eq!(res.akey_confidence(&[AttrId(0)]), 1.0);
    }

    #[test]
    fn akey_confidence_falls_back_to_subsets() {
        let r = fixture();
        let res = discover(&r, &TaneConfig::default());
        // {vin, make} was never expanded (vin is a key) but the fallback
        // still reports a high lower bound.
        assert!(res.akey_confidence(&[AttrId(0), AttrId(1)]) >= 1.0 - 1e-12);
    }

    #[test]
    fn minimality_suppresses_redundant_supersets() {
        let r = fixture();
        let res = discover(&r, &TaneConfig::default());
        // {model, make} → body adds nothing over {model} → body.
        assert!(find(&res.afds, &[1, 2], 3).is_none());
    }

    #[test]
    fn respects_max_lhs() {
        let r = fixture();
        let res = discover(&r, &TaneConfig { max_lhs: 1, ..Default::default() });
        assert!(res.afds.iter().all(|a| a.lhs.len() == 1));
    }

    #[test]
    fn empty_relation_yields_nothing() {
        let schema = Schema::of("e", &[("a", AttrType::Integer)]);
        let r = Relation::empty(schema);
        let res = discover(&r, &TaneConfig::default());
        assert!(res.afds.is_empty());
        assert!(res.akeys.is_empty());
    }

    #[test]
    fn two_attribute_determining_sets_emerge_when_needed() {
        // body is determined only by {make, seats} jointly.
        let schema = Schema::of(
            "t",
            &[
                ("make", AttrType::Categorical),
                ("seats", AttrType::Integer),
                ("body", AttrType::Categorical),
            ],
        );
        let rows: Vec<(&str, i64, &str)> = vec![
            ("Honda", 2, "Coupe"),
            ("Honda", 2, "Coupe"),
            ("Honda", 4, "Sedan"),
            ("Honda", 4, "Sedan"),
            ("BMW", 2, "Convt"),
            ("BMW", 2, "Convt"),
            ("BMW", 4, "Wagon"),
            ("BMW", 4, "Wagon"),
        ];
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, (mk, s, b))| {
                Tuple::new(
                    TupleId(i as u32),
                    vec![Value::str(mk), Value::int(s), Value::str(b)],
                )
            })
            .collect();
        let r = Relation::new(schema, tuples);
        // The tiny fixture's {make, seats} classes are size 2, i.e. AKey
        // confidence 0.5 — relax near-key suppression, which targets
        // realistic samples.
        let res = discover(&r, &TaneConfig { near_key_conf: 0.9, ..Default::default() });
        let afd = find(&res.afds, &[0, 1], 2).expect("{make, seats} → body");
        assert!((afd.confidence - 1.0).abs() < 1e-12);
        // Each single attribute alone reaches confidence 0.5 only.
        let single = find(&res.afds, &[0], 2).unwrap();
        assert!((single.confidence - 0.5).abs() < 1e-12);
    }
}
