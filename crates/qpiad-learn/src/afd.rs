//! Approximate functional dependencies, approximate keys, and the paper's
//! AKey-based pruning rule (§5.1).

use std::collections::HashMap;
use std::fmt;

use qpiad_db::{AttrId, Schema};

/// An approximate functional dependency `X ⇝ A` with confidence
/// `1 − g3(X → A)` (Definition 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Afd {
    /// The determining set `X = dtrSet(A)`, sorted.
    pub lhs: Vec<AttrId>,
    /// The determined attribute `A`.
    pub rhs: AttrId,
    /// `1 − g3`.
    pub confidence: f64,
}

impl Afd {
    /// Creates an AFD, normalizing the determining set order.
    pub fn new(mut lhs: Vec<AttrId>, rhs: AttrId, confidence: f64) -> Self {
        lhs.sort_unstable();
        debug_assert!(!lhs.contains(&rhs), "rhs may not appear in lhs");
        Afd { lhs, rhs, confidence }
    }

    /// Renders the AFD against a schema, e.g. `{Model} ⇝ Body Style (0.88)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Afd, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{{")?;
                for (i, a) in self.0.lhs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    f.write_str(self.1.attr(*a).name())?;
                }
                write!(
                    f,
                    "}} ⇝ {} ({:.3})",
                    self.1.attr(self.0.rhs).name(),
                    self.0.confidence
                )
            }
        }
        D(self, schema)
    }
}

/// An approximate key `X` with confidence `1 − g3_key(X)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AKey {
    /// The key attributes, sorted.
    pub attrs: Vec<AttrId>,
    /// `1 − g3_key`.
    pub confidence: f64,
}

impl AKey {
    /// Creates an AKey, normalizing attribute order.
    pub fn new(mut attrs: Vec<AttrId>, confidence: f64) -> Self {
        attrs.sort_unstable();
        AKey { attrs, confidence }
    }
}

/// The mined AFDs of one source, indexed by determined attribute.
#[derive(Debug, Clone, Default)]
pub struct AfdSet {
    by_rhs: HashMap<AttrId, Vec<Afd>>,
}

impl AfdSet {
    /// Builds the set from a list of AFDs; per attribute, AFDs are kept in
    /// decreasing confidence order (ties broken towards smaller determining
    /// sets).
    pub fn new(afds: Vec<Afd>) -> Self {
        let mut by_rhs: HashMap<AttrId, Vec<Afd>> = HashMap::new();
        for afd in afds {
            by_rhs.entry(afd.rhs).or_default().push(afd);
        }
        for list in by_rhs.values_mut() {
            list.sort_by(|a, b| {
                b.confidence
                    .total_cmp(&a.confidence)
                    .then_with(|| a.lhs.len().cmp(&b.lhs.len()))
            });
        }
        AfdSet { by_rhs }
    }

    /// All AFDs determining `attr`, best first.
    pub fn for_attr(&self, attr: AttrId) -> &[Afd] {
        self.by_rhs.get(&attr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The highest-confidence AFD determining `attr`.
    pub fn best(&self, attr: AttrId) -> Option<&Afd> {
        self.for_attr(attr).first()
    }

    /// Total number of AFDs.
    pub fn len(&self) -> usize {
        self.by_rhs.values().map(Vec::len).sum()
    }

    /// `true` iff no AFDs were mined.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all AFDs.
    pub fn iter(&self) -> impl Iterator<Item = &Afd> {
        self.by_rhs.values().flatten()
    }
}

/// The paper's AKey pruning rule (§5.1): an AFD whose determining set is
/// (a superset of) a high-confidence approximate key is useless for
/// prediction — its determining-set values are mostly unique, so no other
/// tuple shares them. Prune an AFD when `conf(AFD) − conf(AKey(lhs)) < δ`
/// and the determining set is itself an approximate key with confidence at
/// least `akey_min_conf`.
///
/// `akey_conf_of` must return the AKey confidence of an attribute set
/// (`1 − g3_key`); by monotonicity, the best AKey contained in `lhs` is
/// `lhs` itself, so a single lookup suffices.
pub fn prune_afds(
    afds: Vec<Afd>,
    akey_conf_of: impl Fn(&[AttrId]) -> f64,
    delta: f64,
    akey_min_conf: f64,
) -> Vec<Afd> {
    afds.into_iter()
        .filter(|afd| {
            let key_conf = akey_conf_of(&afd.lhs);
            key_conf < akey_min_conf || afd.confidence - key_conf >= delta
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_db::AttrType;

    #[test]
    fn afd_normalizes_lhs() {
        let afd = Afd::new(vec![AttrId(3), AttrId(1)], AttrId(0), 0.9);
        assert_eq!(afd.lhs, vec![AttrId(1), AttrId(3)]);
    }

    #[test]
    fn afd_set_orders_by_confidence_then_size() {
        let set = AfdSet::new(vec![
            Afd::new(vec![AttrId(1)], AttrId(0), 0.8),
            Afd::new(vec![AttrId(2)], AttrId(0), 0.95),
            Afd::new(vec![AttrId(1), AttrId(2)], AttrId(0), 0.95),
            Afd::new(vec![AttrId(3)], AttrId(4), 0.5),
        ]);
        let best = set.best(AttrId(0)).unwrap();
        assert_eq!(best.lhs, vec![AttrId(2)]); // smaller set wins the tie
        assert_eq!(set.for_attr(AttrId(0)).len(), 3);
        assert_eq!(set.for_attr(AttrId(4)).len(), 1);
        assert!(set.for_attr(AttrId(9)).is_empty());
        assert!(set.best(AttrId(9)).is_none());
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn pruning_follows_paper_example() {
        // Paper §5.1: AFD {A1,A2} ⇝ A3 with confidence 0.97 and AKey {A1}
        // with confidence 0.95 → pruned (0.97 − 0.95 = 0.02 < δ = 0.3).
        let afd = Afd::new(vec![AttrId(1), AttrId(2)], AttrId(3), 0.97);
        let keep = Afd::new(vec![AttrId(4)], AttrId(3), 0.90);
        let akey_conf = |lhs: &[AttrId]| {
            if lhs.contains(&AttrId(1)) {
                0.96 // {A1,A2} ⊇ {A1}: at least the subset's confidence
            } else {
                0.10
            }
        };
        let pruned = prune_afds(vec![afd, keep.clone()], akey_conf, 0.3, 0.8);
        assert_eq!(pruned, vec![keep]);
    }

    #[test]
    fn pruning_requires_high_akey_confidence() {
        // Low-confidence "keys" do not trigger pruning even if the
        // difference is small.
        let afd = Afd::new(vec![AttrId(1)], AttrId(2), 0.4);
        let pruned = prune_afds(vec![afd.clone()], |_| 0.3, 0.3, 0.8);
        assert_eq!(pruned, vec![afd]);
    }

    #[test]
    fn display_uses_names() {
        let schema = Schema::of(
            "cars",
            &[
                ("make", AttrType::Categorical),
                ("model", AttrType::Categorical),
                ("body_style", AttrType::Categorical),
            ],
        );
        let afd = Afd::new(
            vec![schema.expect_attr("model")],
            schema.expect_attr("body_style"),
            0.883,
        );
        assert_eq!(afd.display(&schema).to_string(), "{model} ⇝ body_style (0.883)");
    }
}
