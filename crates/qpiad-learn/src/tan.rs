//! Tree-Augmented Naïve Bayes (TAN) — the Bayes-network comparator.
//!
//! §6.5 compares the AFD-enhanced NBC against Bayesian networks learned
//! with WEKA and reports NBC "significantly cheaper to learn … accuracy was
//! competitive". TAN is the standard restricted Bayes network for this
//! comparison: every feature gets at most one feature parent, chosen by a
//! Chow–Liu maximum spanning tree over class-conditional mutual
//! information, so the model captures pairwise feature interactions Naïve
//! Bayes cannot, at quadratic (not exponential) training cost.
//!
//! Missing values: a null feature contributes no evidence; a feature whose
//! *parent* is null (or unseen) falls back to its class-conditional
//! marginal.

use std::collections::HashMap;

use qpiad_db::{AttrId, Relation, Tuple, Value};

/// A trained TAN classifier for one target attribute.
#[derive(Debug, Clone)]
pub struct TanClassifier {
    target: AttrId,
    features: Vec<AttrId>,
    /// `parent[i]` is an index into `features`, or `None` for the tree root
    /// and disconnected features.
    parents: Vec<Option<usize>>,
    classes: Vec<Value>,
    class_counts: Vec<f64>,
    total: f64,
    /// Marginal tables: per feature, value → per-class counts.
    marginal: Vec<HashMap<Value, Vec<f64>>>,
    /// Conditional tables: per feature with a parent,
    /// (feature value, parent value) → per-class counts.
    conditional: Vec<HashMap<(Value, Value), Vec<f64>>>,
    /// Per-(feature, class, parent value) totals for the conditional
    /// m-estimate denominator.
    parent_class_counts: Vec<HashMap<Value, Vec<f64>>>,
    domain_size: Vec<usize>,
    m: f64,
}

/// Class-conditional mutual information `I(Xi; Xj | C)` from counts.
fn conditional_mutual_information(
    sample: &Relation,
    target: AttrId,
    xi: AttrId,
    xj: AttrId,
) -> f64 {
    // counts[(c, vi, vj)] plus the marginals we need.
    let mut joint: HashMap<(&Value, &Value, &Value), f64> = HashMap::new();
    let mut ci: HashMap<(&Value, &Value), f64> = HashMap::new();
    let mut cj: HashMap<(&Value, &Value), f64> = HashMap::new();
    let mut c_only: HashMap<&Value, f64> = HashMap::new();
    let mut n = 0f64;
    for t in sample.tuples() {
        let (c, vi, vj) = (t.value(target), t.value(xi), t.value(xj));
        if c.is_null() || vi.is_null() || vj.is_null() {
            continue;
        }
        *joint.entry((c, vi, vj)).or_default() += 1.0;
        *ci.entry((c, vi)).or_default() += 1.0;
        *cj.entry((c, vj)).or_default() += 1.0;
        *c_only.entry(c).or_default() += 1.0;
        n += 1.0;
    }
    if n == 0.0 {
        return 0.0;
    }
    joint
        .iter()
        .map(|((c, vi, vj), nij)| {
            let p = nij / n;
            let p_given = nij * c_only[*c] / (ci[&(*c, *vi)] * cj[&(*c, *vj)]);
            p * p_given.ln()
        })
        .sum()
}

/// Maximum spanning tree over features weighted by CMI (Prim's algorithm);
/// returns the parent index per feature.
fn chow_liu_parents(weights: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n = weights.len();
    let mut parents = vec![None; n];
    if n <= 1 {
        return parents;
    }
    let mut in_tree = vec![false; n];
    in_tree[0] = true;
    for _ in 1..n {
        let mut best: Option<(f64, usize, usize)> = None; // (w, from-in-tree, to)
        for (i, &inside) in in_tree.iter().enumerate() {
            if !inside {
                continue;
            }
            for (j, inside_j) in in_tree.iter().enumerate() {
                if *inside_j {
                    continue;
                }
                let w = weights[i][j];
                if best.map(|(bw, _, _)| w > bw).unwrap_or(true) {
                    best = Some((w, i, j));
                }
            }
        }
        let (_, from, to) = best.expect("graph is complete");
        parents[to] = Some(from);
        in_tree[to] = true;
    }
    parents
}

impl TanClassifier {
    /// Trains a TAN classifier for `target` over `features`.
    pub fn train(sample: &Relation, target: AttrId, features: Vec<AttrId>, m: f64) -> Self {
        assert!(!features.contains(&target), "target cannot be a feature");
        let n = features.len();

        // Chow–Liu structure.
        let mut weights = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let w = conditional_mutual_information(sample, target, features[i], features[j]);
                weights[i][j] = w;
                weights[j][i] = w;
            }
        }
        let parents = chow_liu_parents(&weights);

        // Parameter tables.
        let mut classes: Vec<Value> = Vec::new();
        let mut class_index: HashMap<Value, usize> = HashMap::new();
        for t in sample.tuples() {
            let v = t.value(target);
            if !v.is_null() && !class_index.contains_key(v) {
                class_index.insert(v.clone(), classes.len());
                classes.push(v.clone());
            }
        }
        let k = classes.len();
        let mut class_counts = vec![0f64; k];
        let mut total = 0f64;
        let mut marginal: Vec<HashMap<Value, Vec<f64>>> = vec![HashMap::new(); n];
        let mut conditional: Vec<HashMap<(Value, Value), Vec<f64>>> = vec![HashMap::new(); n];
        let mut parent_class_counts: Vec<HashMap<Value, Vec<f64>>> = vec![HashMap::new(); n];

        for t in sample.tuples() {
            let Some(&c) = class_index.get(t.value(target)) else { continue };
            total += 1.0;
            class_counts[c] += 1.0;
            for (fi, f) in features.iter().enumerate() {
                let fv = t.value(*f);
                if fv.is_null() {
                    continue;
                }
                marginal[fi]
                    .entry(fv.clone())
                    .or_insert_with(|| vec![0f64; k])[c] += 1.0;
                if let Some(pi) = parents[fi] {
                    let pv = t.value(features[pi]);
                    if !pv.is_null() {
                        conditional[fi]
                            .entry((fv.clone(), pv.clone()))
                            .or_insert_with(|| vec![0f64; k])[c] += 1.0;
                        parent_class_counts[fi]
                            .entry(pv.clone())
                            .or_insert_with(|| vec![0f64; k])[c] += 1.0;
                    }
                }
            }
        }
        let domain_size = marginal.iter().map(|t| t.len().max(1)).collect();
        TanClassifier {
            target,
            features,
            parents,
            classes,
            class_counts,
            total,
            marginal,
            conditional,
            parent_class_counts,
            domain_size,
            m,
        }
    }

    /// The target attribute.
    pub fn target(&self) -> AttrId {
        self.target
    }

    /// The Chow–Liu feature-parent assignment (indices into the feature
    /// list).
    pub fn parents(&self) -> &[Option<usize>] {
        &self.parents
    }

    /// Posterior distribution over the target's classes for a tuple.
    pub fn distribution(&self, tuple: &Tuple) -> Vec<(Value, f64)> {
        let k = self.classes.len();
        if k == 0 {
            return Vec::new();
        }
        if self.total == 0.0 {
            let u = 1.0 / k as f64;
            return self.classes.iter().map(|c| (c.clone(), u)).collect();
        }
        let mut log_scores = vec![0f64; k];
        for (c, score) in log_scores.iter_mut().enumerate() {
            *score = ((self.class_counts[c] + 1.0) / (self.total + k as f64)).ln();
        }
        for (fi, f) in self.features.iter().enumerate() {
            let fv = tuple.value(*f);
            if fv.is_null() {
                continue;
            }
            let p_uniform = 1.0 / self.domain_size[fi] as f64;
            // Conditional table when the parent value is present and seen;
            // otherwise the marginal.
            let parent_value = self.parents[fi].map(|pi| tuple.value(self.features[pi]));
            let used_conditional = match parent_value {
                Some(pv) if !pv.is_null() => {
                    let denom = self.parent_class_counts[fi].get(pv);
                    match denom {
                        Some(denoms) => {
                            let counts =
                                self.conditional[fi].get(&(fv.clone(), pv.clone()));
                            for (c, score) in log_scores.iter_mut().enumerate() {
                                let n_xc = counts.map(|v| v[c]).unwrap_or(0.0);
                                let p = (n_xc + self.m * p_uniform) / (denoms[c] + self.m);
                                *score += p.max(1e-300).ln();
                            }
                            true
                        }
                        None => false,
                    }
                }
                _ => false,
            };
            if !used_conditional {
                let counts = self.marginal[fi].get(fv);
                for (c, score) in log_scores.iter_mut().enumerate() {
                    let n_xc = counts.map(|v| v[c]).unwrap_or(0.0);
                    let p = (n_xc + self.m * p_uniform) / (self.class_counts[c] + self.m);
                    *score += p.max(1e-300).ln();
                }
            }
        }
        let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut exp: Vec<f64> = log_scores.iter().map(|s| (s - max).exp()).collect();
        let sum: f64 = exp.iter().sum();
        for e in &mut exp {
            *e /= sum;
        }
        self.classes.iter().cloned().zip(exp).collect()
    }

    /// The most likely class with its probability.
    pub fn predict(&self, tuple: &Tuple) -> Option<(Value, f64)> {
        self.distribution(tuple)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_db::{AttrType, Schema, TupleId};

    /// Class depends on the *pair* (a, b): class = "same" iff a == b, with
    /// a third noise feature. NBC's independence assumption is blind to
    /// this; TAN links a–b.
    fn xor_relation(n: usize) -> Relation {
        let schema = Schema::of(
            "xor",
            &[
                ("a", AttrType::Categorical),
                ("b", AttrType::Categorical),
                ("noise", AttrType::Categorical),
                ("class", AttrType::Categorical),
            ],
        );
        let tuples = (0..n)
            .map(|i| {
                let a = if i % 2 == 0 { "0" } else { "1" };
                let b = if (i / 2) % 2 == 0 { "0" } else { "1" };
                let noise = if (i / 4) % 3 == 0 { "x" } else { "y" };
                let class = if a == b { "same" } else { "diff" };
                Tuple::new(
                    TupleId(i as u32),
                    vec![
                        Value::str(a),
                        Value::str(b),
                        Value::str(noise),
                        Value::str(class),
                    ],
                )
            })
            .collect();
        Relation::new(schema, tuples)
    }

    fn probe(a: &str, b: &str) -> Tuple {
        Tuple::new(
            TupleId(99),
            vec![Value::str(a), Value::str(b), Value::str("x"), Value::Null],
        )
    }

    #[test]
    fn tan_solves_xor_where_nbc_cannot() {
        let r = xor_relation(96);
        let features = vec![AttrId(0), AttrId(1), AttrId(2)];
        let tan = TanClassifier::train(&r, AttrId(3), features.clone(), 1.0);
        let nbc = crate::nbc::NaiveBayes::train(&r, AttrId(3), features, 1.0);
        let cases = [("0", "0", "same"), ("0", "1", "diff"), ("1", "0", "diff"), ("1", "1", "same")];
        let mut tan_hits = 0;
        let mut nbc_hits = 0;
        for (a, b, want) in cases {
            if tan.predict(&probe(a, b)).unwrap().0 == Value::str(want) {
                tan_hits += 1;
            }
            if nbc.predict(&probe(a, b)).unwrap().0 == Value::str(want) {
                nbc_hits += 1;
            }
        }
        assert_eq!(tan_hits, 4, "TAN must capture the a–b interaction");
        assert!(nbc_hits < 4, "NBC should miss XOR ({nbc_hits}/4)");
    }

    #[test]
    fn chow_liu_links_the_interacting_features() {
        let r = xor_relation(96);
        let tan = TanClassifier::train(&r, AttrId(3), vec![AttrId(0), AttrId(1), AttrId(2)], 1.0);
        // a (index 0) is the root; b (index 1) must be a's child, not the
        // noise feature's.
        assert_eq!(tan.parents()[0], None);
        assert_eq!(tan.parents()[1], Some(0));
    }

    #[test]
    fn distribution_is_normalized_and_null_tolerant() {
        let r = xor_relation(48);
        let tan = TanClassifier::train(&r, AttrId(3), vec![AttrId(0), AttrId(1), AttrId(2)], 1.0);
        for t in [
            probe("0", "1"),
            Tuple::new(TupleId(99), vec![Value::Null, Value::str("1"), Value::Null, Value::Null]),
            Tuple::new(TupleId(99), vec![Value::str("0"), Value::Null, Value::Null, Value::Null]),
            Tuple::new(TupleId(99), vec![Value::str("weird"), Value::str("unseen"), Value::Null, Value::Null]),
        ] {
            let d = tan.distribution(&t);
            let sum: f64 = d.iter().map(|(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    fn single_feature_degenerates_to_nbc() {
        let r = xor_relation(48);
        let tan = TanClassifier::train(&r, AttrId(3), vec![AttrId(0)], 1.0);
        let nbc = crate::nbc::NaiveBayes::train(&r, AttrId(3), vec![AttrId(0)], 1.0);
        let t = probe("0", "1");
        let dt = tan.distribution(&t);
        let dn = nbc.distribution(&t);
        for (a, b) in dt.iter().zip(&dn) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn competitive_on_cars() {
        use qpiad_data::cars::CarsConfig;
        use qpiad_data::corrupt::{corrupt, CorruptionConfig};
        use qpiad_data::sample::uniform_sample;
        let ground = CarsConfig::default().with_rows(6_000).generate(23);
        let (ed, prov) = corrupt(&ground, &CorruptionConfig::default());
        let sample = uniform_sample(&ed, 0.10, 1);
        let body = ed.schema().expect_attr("body_style");
        let features: Vec<AttrId> =
            ed.schema().attr_ids().filter(|a| *a != body).collect();
        let tan = TanClassifier::train(&sample, body, features, 1.0);
        let (mut hits, mut n) = (0usize, 0usize);
        for (id, truth) in prov.corrupted_on(body) {
            let t = ed.by_id(id).unwrap();
            if let Some((pred, _)) = tan.predict(t) {
                n += 1;
                hits += usize::from(&pred == truth);
            }
        }
        let acc = hits as f64 / n.max(1) as f64;
        assert!(acc > 0.55, "TAN accuracy {acc} over {n} cells");
    }
}
