//! Epoch-swapped handles for a member's mined knowledge.
//!
//! A serving mediator must be able to *replace* a member's knowledge
//! (AFDs, classifiers, selectivity) while queries keep flowing. The
//! hazard is a torn read: a pass that plans against the old statistics
//! and rescores against the new ones, or a plan-cache key paired with
//! the wrong knowledge generation. This module removes that hazard
//! RCU-style:
//!
//! * [`MemberKnowledge`] is an immutable value: statistics plus their
//!   provenance flags (stale snapshot, unavailable, load error) and the
//!   **epoch** they were published at. Once built it never changes.
//! * [`KnowledgeCell`] is the one mutable slot, holding an
//!   `Arc<MemberKnowledge>` behind a reader-writer lock. Readers
//!   [`pin`](KnowledgeCell::pin) the current `Arc` once at pass
//!   admission and use that pinned view for the whole pass; a
//!   publisher swaps in a fully built replacement with
//!   [`publish`](KnowledgeCell::publish), which stamps the next epoch
//!   atomically with the swap.
//!
//! Because the epoch lives *inside* the published `Arc`, a pinned view
//! can never pair statistics from one generation with the version
//! number of another — the pair travels as one pointer. Old epochs stay
//! alive exactly as long as some in-flight pass still holds the `Arc`,
//! then drop; publication never blocks readers beyond the swap itself.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::knowledge::SourceStats;
use crate::persist::PersistError;

/// How a published knowledge generation was produced by maintenance —
/// surfaced in EXPLAIN and the serve metrics so operators can tell cheap
/// incremental folds from full re-mines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshKind {
    /// A full re-probe and re-mine (TANE, pruning, classifier training
    /// from scratch).
    Full,
    /// An incremental fold of streamed validated rows into the retained
    /// sample (delta count updates, no TANE re-run).
    Incremental,
}

impl std::fmt::Display for RefreshKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefreshKind::Full => write!(f, "full re-mine"),
            RefreshKind::Incremental => write!(f, "incremental fold"),
        }
    }
}

/// One immutable generation of a member's mined knowledge.
///
/// `epoch` is stamped by [`KnowledgeCell::publish`]; constructors leave
/// it at 0 (the generation a member is registered with).
#[derive(Debug, Clone)]
pub struct MemberKnowledge {
    /// Mined statistics; `None` degrades the member to certain answers
    /// only.
    pub stats: Option<SourceStats>,
    /// The statistics were restored from a durable snapshot rather than
    /// mined live (tagged on answers as stale knowledge).
    pub stale: bool,
    /// No usable statistics exist (a load failure was contained).
    pub unavailable: bool,
    /// The classified load failure, when `unavailable`.
    pub error: Option<PersistError>,
    /// Monotonic generation counter; bumped by every publication.
    pub epoch: u64,
    /// The maintenance pass that published this generation, when it was
    /// produced by a scheduled refresh (surfaced in EXPLAIN).
    pub refreshed_at_pass: Option<u64>,
    /// Whether a maintenance refresh produced this generation as a full
    /// re-mine or an incremental fold (None for registration-time
    /// knowledge).
    pub refresh_kind: Option<RefreshKind>,
}

impl MemberKnowledge {
    /// Knowledge mined live at registration.
    pub fn mined(stats: SourceStats) -> Self {
        MemberKnowledge {
            stats: Some(stats),
            stale: false,
            unavailable: false,
            error: None,
            epoch: 0,
            refreshed_at_pass: None,
            refresh_kind: None,
        }
    }

    /// Knowledge restored from a durable snapshot (stale until re-mined).
    pub fn restored(stats: SourceStats) -> Self {
        MemberKnowledge { stale: true, ..MemberKnowledge::mined(stats) }
    }

    /// A contained load failure: the member serves certain answers only.
    pub fn unavailable(error: PersistError) -> Self {
        MemberKnowledge {
            stats: None,
            stale: false,
            unavailable: true,
            error: Some(error),
            epoch: 0,
            refreshed_at_pass: None,
            refresh_kind: None,
        }
    }

    /// A deficient member registered without statistics (answered through
    /// a correlated supporting member, not a failure).
    pub fn absent() -> Self {
        MemberKnowledge {
            stats: None,
            stale: false,
            unavailable: false,
            error: None,
            epoch: 0,
            refreshed_at_pass: None,
            refresh_kind: None,
        }
    }
}

/// The epoch-swapped slot one member's knowledge lives behind.
///
/// Readers pin, publishers swap; the lock is held only for the pointer
/// clone or the pointer swap, never across mining or persistence.
#[derive(Debug)]
pub struct KnowledgeCell {
    current: RwLock<Arc<MemberKnowledge>>,
}

impl KnowledgeCell {
    /// Seeds the cell with a member's registration-time knowledge.
    pub fn new(initial: MemberKnowledge) -> Self {
        KnowledgeCell { current: RwLock::new(Arc::new(initial)) }
    }

    /// Pins the current generation. The returned `Arc` stays valid (and
    /// internally consistent, epoch included) for as long as the caller
    /// holds it, regardless of how many publications happen meanwhile.
    pub fn pin(&self) -> Arc<MemberKnowledge> {
        Arc::clone(&self.current.read())
    }

    /// Atomically replaces the current generation, stamping
    /// `next.epoch = current.epoch + 1`. Returns the published epoch.
    ///
    /// Callers must finish all fallible work (mining, persisting) *before*
    /// publishing: a publication is irrevocable for passes admitted after
    /// it.
    pub fn publish(&self, mut next: MemberKnowledge) -> u64 {
        let mut slot = self.current.write();
        next.epoch = slot.epoch + 1;
        let epoch = next.epoch;
        *slot = Arc::new(next);
        epoch
    }

    /// The current generation's epoch (0 until the first publication).
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_views_survive_publication_with_their_epoch() {
        let cell = KnowledgeCell::new(MemberKnowledge::absent());
        let pinned = cell.pin();
        assert_eq!(pinned.epoch, 0);

        let mut next = MemberKnowledge::absent();
        next.refreshed_at_pass = Some(7);
        assert_eq!(cell.publish(next), 1);

        // The old pin still reads its own generation...
        assert_eq!(pinned.epoch, 0);
        assert_eq!(pinned.refreshed_at_pass, None);
        // ...while new pins see the published one, epoch stamped.
        let fresh = cell.pin();
        assert_eq!(fresh.epoch, 1);
        assert_eq!(fresh.refreshed_at_pass, Some(7));
        assert_eq!(cell.epoch(), 1);
    }

    #[test]
    fn publish_stamps_monotonic_epochs_regardless_of_input() {
        let cell = KnowledgeCell::new(MemberKnowledge::absent());
        let mut forged = MemberKnowledge::absent();
        forged.epoch = 99; // ignored: the cell owns the counter
        assert_eq!(cell.publish(forged), 1);
        assert_eq!(cell.publish(MemberKnowledge::absent()), 2);
        assert_eq!(cell.pin().epoch, 2);
    }
}
