//! Statistics mining for QPIAD (paper §5).
//!
//! QPIAD needs three kinds of learned knowledge per autonomous source, all
//! mined off-line from a small probed sample:
//!
//! 1. **Attribute correlations** as Approximate Functional Dependencies —
//!    [`tane`] implements a TANE-style levelwise search over stripped
//!    partitions ([`partition`]) using the `g3` error measure of Kivinen &
//!    Mannila, and [`afd`] implements the paper's AKey-based pruning rule
//!    (§5.1).
//! 2. **Value distributions** as AFD-enhanced Naïve Bayes classifiers —
//!    [`nbc`] implements NBC with m-estimate smoothing, and [`strategy`]
//!    implements the feature-selection strategies of §5.3 (Best-AFD,
//!    Hybrid One-AFD, Ensemble, All-Attributes).
//! 3. **Query selectivity** — [`selectivity`] implements the
//!    `SmplSel · SmplRatio · PerInc` estimator of §5.4.
//!
//! [`persist`] snapshots mined knowledge as JSON (the knowledge-mining
//! module runs offline; a deployed mediator caches its artifacts), and the
//! knowledge-lifecycle layer keeps those artifacts honest over a long-
//! running mediator's lifetime: [`store`] is the durable on-disk snapshot
//! store (versioned header, per-snapshot checksum, atomic writes, and a
//! load path that classifies failures so a corrupt file degrades one
//! source instead of the mediator), [`drift`] accumulates a deterministic
//! divergence statistic between live validated responses and the mined
//! sample and emits a [`drift::DriftVerdict`] when a source's knowledge
//! goes stale, and [`knowledge::SourceStats::refresh`] re-mines
//! incrementally so the mediator can swap in fresh knowledge atomically.
//! [`epoch`] supplies the swap primitive itself: an epoch-stamped
//! [`epoch::KnowledgeCell`] that readers pin once per mediation pass and
//! a maintenance pass publishes into atomically, so a hot refresh can
//! never produce a torn read.
//! [`assoc`] provides the association-rule imputation baseline the paper
//! compares classifiers against (§6.5), [`tree`] adds an ID3-style decision
//! tree and [`tan`] a Chow–Liu tree-augmented Naïve Bayes (the restricted
//! Bayes network the paper benchmarked via WEKA) as further comparators, and [`knowledge`] bundles everything
//! into the [`knowledge::SourceStats`] artifact the mediator holds per
//! source.
//!
//! Mining and classification are parallel where the work is independent:
//! [`tane`] evaluates each level's candidate partitions and [`strategy`]
//! trains per-attribute classifiers across the [`par`] worker pool
//! (re-exported from `qpiad-db`), with byte-identical output at any thread
//! count. [`cache`] adds the per-query memo of classifier posteriors the
//! mediator uses so each determining-set combination is classified once
//! per query instead of once per retrieved tuple.

pub mod afd;
pub mod assoc;
pub mod cache;
pub mod drift;
pub mod epoch;
pub mod knowledge;
pub mod nbc;
pub mod partition;
pub mod persist;
pub mod selectivity;
pub mod store;
pub mod strategy;
pub mod stream;
pub mod tan;
pub mod tane;
pub mod tree;

pub use afd::{AKey, Afd, AfdSet};
pub use cache::PredictionCache;
pub use drift::{DriftConfig, DriftDetector, DriftProbe, DriftRegistry, DriftVerdict};
pub use epoch::{KnowledgeCell, MemberKnowledge, RefreshKind};
pub use knowledge::{FoldOutcome, MiningConfig, RefreshError, SourceStats};
pub use persist::{PersistError, StatsSnapshot};
pub use qpiad_db::par;
pub use nbc::{NaiveBayes, RowScorer};
pub use selectivity::SelectivityEstimator;
pub use store::{KnowledgeStore, PersistFault};
pub use strategy::{FeatureStrategy, RowMatcher, ValuePredictor};
pub use stream::{SampleStream, StreamStats};
