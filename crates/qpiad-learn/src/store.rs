//! Durable, checksummed on-disk storage for mined knowledge.
//!
//! A long-running mediator cannot afford to re-probe every source at
//! startup, so snapshots ([`StatsSnapshot`]) live on disk between runs —
//! one file per source under a store root. Disk is hostile: files get
//! truncated by full volumes, half-written by crashes, edited by hand, or
//! left behind by older builds. The store therefore wraps every payload in
//! a versioned header with an FNV-1a 64 checksum, writes atomically
//! (journal marker + temp file + `rename`), and classifies every load
//! failure as a [`PersistError`] so the caller can degrade the affected
//! source instead of aborting (see
//! `MediatorNetwork::add_supporting_from_store`).
//!
//! ## Crash safety
//!
//! [`KnowledgeStore::save`] follows a journaled protocol: write a
//! `<source>.qks.journal` marker, write the payload to
//! `<source>.qks.tmp`, `rename` the temp file over the final path, then
//! remove the marker. A process killed at *any* point leaves the final
//! path either untouched (the prior snapshot, still loadable) or fully
//! replaced — never partial — and at most two pieces of debris that
//! [`KnowledgeStore::recover`] (run automatically by
//! [`KnowledgeStore::open`]) sweeps away. Failures mid-write clean up
//! after themselves and classify: a full volume is
//! [`PersistError::DiskFull`], an unwritable root is
//! [`PersistError::PermissionDenied`], anything else
//! [`PersistError::Io`]. For chaos tests,
//! [`KnowledgeStore::inject_persist_fault`] arms a one-shot
//! [`PersistFault`] per source — including a simulated
//! kill-before-rename that deliberately leaves the debris a real crash
//! would.
//!
//! ## File format
//!
//! ```text
//! QPIAD-KNOWLEDGE v1 fnv1a64=b7e151628aed2a6a
//! {"relation":"cars","attributes":[...],...}
//! ```
//!
//! Line 1 is the header: a magic string, the format version, and the
//! checksum of every byte after the first newline. The rest is the
//! snapshot JSON. Header checks run in a fixed order — magic, version,
//! checksum, payload shape — so a future-format file reports
//! `VersionMismatch` rather than `Corrupt` even if the payload encoding
//! changed entirely.

use std::collections::BTreeMap;
use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use qpiad_db::Schema;

use crate::persist::{PersistError, StatsSnapshot};

/// The snapshot format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "QPIAD-KNOWLEDGE";

/// FNV-1a 64-bit over the payload bytes. Not cryptographic — the threat
/// model is truncation and bit rot, not adversaries — but it is stable
/// across platforms and needs no dependency.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes a snapshot into the store's on-disk text format.
pub fn encode_snapshot(snapshot: &StatsSnapshot) -> String {
    let payload = snapshot.to_json();
    let checksum = fnv1a64(payload.as_bytes());
    format!("{MAGIC} v{FORMAT_VERSION} fnv1a64={checksum:016x}\n{payload}")
}

/// Decodes store-format text back into a snapshot, classifying every
/// failure: a garbled or missing header is `Corrupt`, an unknown format
/// version is `VersionMismatch`, a checksum failure is `Corrupt`, and a
/// payload that checksums correctly but does not parse is `Malformed`.
pub fn decode_snapshot(text: &str) -> Result<StatsSnapshot, PersistError> {
    let (header, payload) = text
        .split_once('\n')
        .ok_or_else(|| PersistError::Corrupt("missing header line".into()))?;
    let rest = header
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix(" v"))
        .ok_or_else(|| PersistError::Corrupt("bad magic in header".into()))?;
    let (version_text, checksum_field) = rest
        .split_once(' ')
        .ok_or_else(|| PersistError::Corrupt("truncated header".into()))?;
    let found = version_text
        .parse::<u32>()
        .map_err(|_| PersistError::Corrupt(format!("unreadable version `{version_text}`")))?;
    if found != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch { found, expected: FORMAT_VERSION });
    }
    let checksum_hex = checksum_field
        .strip_prefix("fnv1a64=")
        .ok_or_else(|| PersistError::Corrupt("missing checksum field".into()))?;
    let expected = u64::from_str_radix(checksum_hex.trim(), 16)
        .map_err(|_| PersistError::Corrupt(format!("unreadable checksum `{checksum_hex}`")))?;
    let actual = fnv1a64(payload.as_bytes());
    if actual != expected {
        return Err(PersistError::Corrupt(format!(
            "checksum mismatch: header says {expected:016x}, payload hashes to {actual:016x}"
        )));
    }
    StatsSnapshot::from_json(payload)
}

/// Checks a decoded snapshot against the schema of the source it was
/// loaded for: attribute names, order, and types must all agree.
fn check_schema(snapshot: &StatsSnapshot, schema: &Schema) -> Result<(), PersistError> {
    let declared: Vec<(String, bool)> = schema
        .attributes()
        .iter()
        .map(|a| (a.name().to_string(), a.ty() == qpiad_db::AttrType::Integer))
        .collect();
    if snapshot.attributes != declared {
        return Err(PersistError::SchemaMismatch(format!(
            "snapshot attributes {:?} != source attributes {:?}",
            snapshot.attributes, declared
        )));
    }
    Ok(())
}

/// Classifies a filesystem error: a full volume and an unwritable path
/// get their own [`PersistError`] kinds so maintenance can react (keep
/// the old epoch, back off) instead of treating the store as broken.
fn classify_io(e: &std::io::Error) -> PersistError {
    // ENOSPC by raw code: `ErrorKind::StorageFull` is not stable on every
    // toolchain this builds with.
    if e.raw_os_error() == Some(28) {
        return PersistError::DiskFull(e.to_string());
    }
    if e.kind() == ErrorKind::PermissionDenied {
        return PersistError::PermissionDenied(e.to_string());
    }
    PersistError::Io(e.to_string())
}

/// A one-shot injected persistence failure, armed per source via
/// [`KnowledgeStore::inject_persist_fault`]. Exists for chaos and
/// lifecycle tests: each variant exercises one rung of the save
/// protocol's failure ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistFault {
    /// The save is refused before any filesystem work — a classified
    /// [`PersistError::Io`], zero debris.
    Refused,
    /// The volume "fills" after the temp write: classified
    /// [`PersistError::DiskFull`], debris cleaned up by the save itself.
    DiskFull,
    /// The process "dies" after writing journal + temp, before the
    /// rename: the prior snapshot stays loadable and the debris is left
    /// on disk exactly as a real kill would leave it, for
    /// [`KnowledgeStore::recover`] to sweep.
    CrashBeforeRename,
}

/// A directory of per-source knowledge snapshots with atomic writes and
/// classified loads.
///
/// Clones share the store root *and* the armed fault set, so a test can
/// hold one handle while the system under test holds another.
#[derive(Debug, Clone)]
pub struct KnowledgeStore {
    root: PathBuf,
    faults: Arc<Mutex<BTreeMap<String, PersistFault>>>,
}

impl KnowledgeStore {
    /// Opens (creating if necessary) a store rooted at `root`, sweeping
    /// any debris a previous crash-mid-persist left behind
    /// ([`KnowledgeStore::recover`]).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| classify_io(&e))?;
        let store = KnowledgeStore { root, faults: Arc::default() };
        store.recover()?;
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file a source's snapshot lives in. Source names pass through a
    /// conservative sanitizer so `cars.com` and friends stay filesystem-safe.
    pub fn path_for(&self, source: &str) -> PathBuf {
        let safe: String = source
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        self.root.join(format!("{safe}.qks"))
    }

    /// Whether a snapshot file exists for `source` (it may still fail to
    /// load — existence says nothing about integrity).
    pub fn contains(&self, source: &str) -> bool {
        self.path_for(source).is_file()
    }

    /// Arms a one-shot [`PersistFault`] for the next
    /// [`KnowledgeStore::save`] of `source` (chaos/lifecycle tests only;
    /// re-arming replaces any pending fault).
    pub fn inject_persist_fault(&self, source: &str, fault: PersistFault) {
        self.faults.lock().insert(source.to_string(), fault);
    }

    /// Persists a snapshot atomically under the journaled protocol:
    /// journal marker, temp-sibling write, `rename` over the final path,
    /// journal removal. Readers see either the old complete file or the
    /// new complete file, never a partial write; every failure path
    /// cleans up its own debris and returns a classified error
    /// ([`PersistError::DiskFull`] / [`PersistError::PermissionDenied`] /
    /// [`PersistError::Io`]).
    pub fn save(&self, source: &str, snapshot: &StatsSnapshot) -> Result<PathBuf, PersistError> {
        let fault = self.faults.lock().remove(source);
        if fault == Some(PersistFault::Refused) {
            return Err(PersistError::Io(format!(
                "injected fault: persist refused for `{source}`"
            )));
        }
        let path = self.path_for(source);
        let tmp = path.with_extension("qks.tmp");
        let journal = path.with_extension("qks.journal");
        let text = encode_snapshot(snapshot);
        // 1. Journal marker: a replacement write is in flight. A crash from
        //    here on leaves at most this marker plus the temp sibling —
        //    never a damaged final file.
        fs::write(&journal, format!("pending {source}\n")).map_err(|e| classify_io(&e))?;
        // 2. Full payload to the temp sibling.
        if let Err(e) = fs::write(&tmp, text.as_bytes()) {
            let _ = fs::remove_file(&tmp);
            let _ = fs::remove_file(&journal);
            return Err(classify_io(&e));
        }
        match fault {
            Some(PersistFault::DiskFull) => {
                let _ = fs::remove_file(&tmp);
                let _ = fs::remove_file(&journal);
                return Err(PersistError::DiskFull(format!(
                    "injected fault: volume full while persisting `{source}`"
                )));
            }
            Some(PersistFault::CrashBeforeRename) => {
                // Simulated kill: journal + temp stay on disk, the prior
                // snapshot stays loadable; recover() sweeps the debris.
                return Err(PersistError::Io(format!(
                    "injected fault: crashed before rename for `{source}`"
                )));
            }
            _ => {}
        }
        // 3. Atomic swap.
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            let _ = fs::remove_file(&journal);
            return Err(classify_io(&e));
        }
        // 4. Retire the journal. Best-effort: a marker that outlives a
        //    completed swap is harmless and recover() removes it.
        let _ = fs::remove_file(&journal);
        Ok(path)
    }

    /// Sweeps debris from interrupted saves: every `*.qks.tmp` and
    /// `*.qks.journal` under the root is removed (final `*.qks` files are
    /// never touched). Returns the removed paths in sorted order. Run
    /// automatically by [`KnowledgeStore::open`]; safe to run any time no
    /// save is concurrently in flight.
    pub fn recover(&self) -> Result<Vec<PathBuf>, PersistError> {
        let mut removed = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| classify_io(&e))?;
        for entry in entries {
            let entry = entry.map_err(|e| classify_io(&e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".qks.tmp") || name.ends_with(".qks.journal") {
                let path = entry.path();
                fs::remove_file(&path).map_err(|e| classify_io(&e))?;
                removed.push(path);
            }
        }
        removed.sort();
        Ok(removed)
    }

    /// Loads and fully classifies a source's snapshot.
    pub fn load(&self, source: &str) -> Result<StatsSnapshot, PersistError> {
        let path = self.path_for(source);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == ErrorKind::NotFound => return Err(PersistError::Missing),
            Err(e) => return Err(PersistError::Io(e.to_string())),
        };
        decode_snapshot(&text)
    }

    /// Like [`KnowledgeStore::load`], additionally rejecting snapshots
    /// whose attributes disagree with `schema` as `SchemaMismatch` — the
    /// classification used when a source evolved its export schema under a
    /// store that still holds the old shape.
    pub fn load_for(&self, source: &str, schema: &Schema) -> Result<StatsSnapshot, PersistError> {
        let snapshot = self.load(source)?;
        check_schema(&snapshot, schema)?;
        Ok(snapshot)
    }

    /// Removes a source's snapshot; removing a missing snapshot is not an
    /// error.
    pub fn remove(&self, source: &str) -> Result<(), PersistError> {
        match fs::remove_file(self.path_for(source)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
            Err(e) => Err(PersistError::Io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::{MiningConfig, SourceStats};
    use qpiad_data::cars::CarsConfig;
    use qpiad_data::corrupt::{corrupt, CorruptionConfig};
    use qpiad_data::sample::uniform_sample;

    fn mined() -> (SourceStats, MiningConfig) {
        let ground = CarsConfig::default().with_rows(2_000).generate(17);
        let (ed, _) = corrupt(&ground, &CorruptionConfig::default());
        let sample = uniform_sample(&ed, 0.15, 3);
        let config = MiningConfig::default();
        let stats = SourceStats::mine(&sample, ed.len(), &config);
        (stats, config)
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-knowledge-store")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let (stats, config) = mined();
        let store = KnowledgeStore::open(scratch("round-trip")).unwrap();
        let snapshot = StatsSnapshot::capture(&stats, &config);
        store.save("cars.com", &snapshot).unwrap();
        assert!(store.contains("cars.com"));
        let loaded = store.load("cars.com").unwrap();
        assert_eq!(loaded.sample().tuples(), snapshot.sample().tuples());
        assert!((loaded.smpl_ratio - snapshot.smpl_ratio).abs() < 1e-15);
        let schema = stats.schema().clone();
        assert!(store.load_for("cars.com", &schema).is_ok());
    }

    #[test]
    fn missing_snapshot_classifies_as_missing() {
        let store = KnowledgeStore::open(scratch("missing")).unwrap();
        assert_eq!(store.load("nobody").unwrap_err(), PersistError::Missing);
        assert!(!store.contains("nobody"));
        store.remove("nobody").unwrap();
    }

    #[test]
    fn truncation_classifies_as_corrupt() {
        let (stats, config) = mined();
        let store = KnowledgeStore::open(scratch("truncated")).unwrap();
        let snapshot = StatsSnapshot::capture(&stats, &config);
        let path = store.save("cars.com", &snapshot).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(store.load("cars.com"), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn payload_bit_flip_classifies_as_corrupt() {
        let (stats, config) = mined();
        let snapshot = StatsSnapshot::capture(&stats, &config);
        let mut bytes = encode_snapshot(&snapshot).into_bytes();
        // Replace one payload byte with a different printable character.
        let flip = bytes.len() - 10;
        bytes[flip] = if bytes[flip] == b'x' { b'y' } else { b'x' };
        let text = String::from_utf8(bytes).unwrap();
        assert!(matches!(decode_snapshot(&text), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn future_version_classifies_as_version_mismatch() {
        let (stats, config) = mined();
        let snapshot = StatsSnapshot::capture(&stats, &config);
        let text = encode_snapshot(&snapshot);
        let bumped = text.replacen(&format!("v{FORMAT_VERSION} "), "v99 ", 1);
        assert_eq!(
            decode_snapshot(&bumped).unwrap_err(),
            PersistError::VersionMismatch { found: 99, expected: FORMAT_VERSION }
        );
    }

    #[test]
    fn wrong_schema_classifies_as_schema_mismatch() {
        let (stats, config) = mined();
        let store = KnowledgeStore::open(scratch("schema")).unwrap();
        store.save("cars.com", &StatsSnapshot::capture(&stats, &config)).unwrap();
        // Load the cars snapshot for a source that dropped an attribute.
        let keep: Vec<_> = stats
            .schema()
            .attr_ids()
            .filter(|a| stats.schema().attr(*a).name() != "body_style")
            .collect();
        let narrow = stats.selectivity().sample().project_to("narrow", &keep);
        assert!(matches!(
            store.load_for("cars.com", narrow.schema()),
            Err(PersistError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn garbled_header_classifies_as_corrupt() {
        for text in ["", "no newline here", "WRONG-MAGIC v1 fnv1a64=0\n{}", "QPIAD-KNOWLEDGE vX fnv1a64=0\n{}", "QPIAD-KNOWLEDGE v1 crc=0\n{}", "QPIAD-KNOWLEDGE v1 fnv1a64=zz\n{}"] {
            assert!(
                matches!(decode_snapshot(text), Err(PersistError::Corrupt(_))),
                "{text:?} must classify as corrupt"
            );
        }
    }

    #[test]
    fn atomic_save_replaces_existing_snapshot() {
        let (stats, config) = mined();
        let store = KnowledgeStore::open(scratch("replace")).unwrap();
        let snapshot = StatsSnapshot::capture(&stats, &config);
        let path = store.save("cars.com", &snapshot).unwrap();
        // Corrupt the file, then save again: the rename must fully repair it.
        fs::write(&path, "garbage").unwrap();
        store.save("cars.com", &snapshot).unwrap();
        assert!(store.load("cars.com").is_ok());
        assert!(!path.with_extension("qks.tmp").exists(), "temp file must not linger");
        assert!(!path.with_extension("qks.journal").exists(), "journal must not linger");
    }

    #[test]
    fn classify_io_separates_disk_full_and_permission_failures() {
        use std::io;
        assert!(matches!(
            classify_io(&io::Error::from_raw_os_error(28)),
            PersistError::DiskFull(_)
        ));
        assert!(matches!(
            classify_io(&io::Error::new(ErrorKind::PermissionDenied, "nope")),
            PersistError::PermissionDenied(_)
        ));
        assert!(matches!(
            classify_io(&io::Error::new(ErrorKind::UnexpectedEof, "eof")),
            PersistError::Io(_)
        ));
    }

    #[test]
    fn injected_disk_full_classifies_and_leaves_no_debris() {
        let (stats, config) = mined();
        let store = KnowledgeStore::open(scratch("disk-full")).unwrap();
        let snapshot = StatsSnapshot::capture(&stats, &config);
        let path = store.save("cars.com", &snapshot).unwrap();
        let before = fs::read_to_string(&path).unwrap();

        store.inject_persist_fault("cars.com", PersistFault::DiskFull);
        let err = store.save("cars.com", &snapshot).unwrap_err();
        assert_eq!(err.kind(), "disk-full");
        assert!(!path.with_extension("qks.tmp").exists());
        assert!(!path.with_extension("qks.journal").exists());
        // The prior snapshot is untouched and the fault was one-shot.
        assert_eq!(fs::read_to_string(&path).unwrap(), before);
        store.save("cars.com", &snapshot).unwrap();
    }

    #[test]
    fn crash_before_rename_keeps_prior_version_and_recover_sweeps_debris() {
        let (stats, config) = mined();
        let store = KnowledgeStore::open(scratch("crash-mid-persist")).unwrap();
        let snapshot = StatsSnapshot::capture(&stats, &config);
        let path = store.save("cars.com", &snapshot).unwrap();
        let before = fs::read_to_string(&path).unwrap();

        store.inject_persist_fault("cars.com", PersistFault::CrashBeforeRename);
        assert_eq!(store.save("cars.com", &snapshot).unwrap_err().kind(), "io");
        // The kill left real debris behind, but the prior version loads.
        assert!(path.with_extension("qks.tmp").exists());
        assert!(path.with_extension("qks.journal").exists());
        assert_eq!(fs::read_to_string(&path).unwrap(), before);
        assert!(store.load("cars.com").is_ok());

        // Re-opening the store (the restart path) sweeps the debris.
        let reopened = KnowledgeStore::open(store.root()).unwrap();
        assert!(!path.with_extension("qks.tmp").exists());
        assert!(!path.with_extension("qks.journal").exists());
        assert!(reopened.load("cars.com").is_ok());
        assert!(reopened.recover().unwrap().is_empty(), "nothing left to sweep");
    }

    #[test]
    fn refused_fault_is_one_shot_and_touches_nothing() {
        let (stats, config) = mined();
        let store = KnowledgeStore::open(scratch("refused")).unwrap();
        let snapshot = StatsSnapshot::capture(&stats, &config);
        store.inject_persist_fault("cars.com", PersistFault::Refused);
        assert_eq!(store.save("cars.com", &snapshot).unwrap_err().kind(), "io");
        assert!(!store.contains("cars.com"));
        let path = store.path_for("cars.com");
        assert!(!path.with_extension("qks.tmp").exists());
        assert!(!path.with_extension("qks.journal").exists());
        // One-shot: the next save goes through.
        store.save("cars.com", &snapshot).unwrap();
        assert!(store.load("cars.com").is_ok());
    }
}
