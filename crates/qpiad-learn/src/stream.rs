//! Incremental knowledge maintenance: the validated-response sample
//! stream and the delta-maintained count state behind
//! [`SourceStats::fold`](crate::knowledge::SourceStats::fold).
//!
//! A long-running mediator keeps seeing *validated live responses* — the
//! very rows the drift detector pairs against the mined sample. Until
//! now those rows were used once for the drift statistic and discarded;
//! re-mining then re-probed the source and re-ran the whole §5 pipeline
//! from scratch. This module keeps them:
//!
//! * [`SampleStream`] queues validated rows per source (deduplicated by
//!   tuple id, weighted by how often an id re-appears, capacity-bounded)
//!   until a maintenance pass folds them into the mined sample.
//! * `FoldState` is the crate-internal count state that makes the mined
//!   artifacts *delta-maintainable*: per-AFD determining-set group counts
//!   (exactly the integers behind the `g3` error), per-AKey valuation
//!   counts, and per-attribute NBC co-occurrence counts. Folding a probe
//!   subtracts the replaced rows' contributions and adds the new ones —
//!   `O(probe)` integer updates instead of an `O(sample × candidates)`
//!   TANE re-run.
//!
//! ## Exactness
//!
//! The count-based confidences are *bit-identical* to recomputing the
//! stripped-partition `g3` measures over the merged sample:
//!
//! * Grouping rows by their complete determining-set valuation (rows with
//!   a null on any lhs attribute excluded) reproduces `Π_X` exactly;
//!   singleton groups contribute `len − keep = 0` removals, which is why
//!   stripping them from the partition never changed the error.
//! * A target value that is globally unique maps to `NO_CLASS` in the
//!   stripped target lookup and is counted as a removal there; counting
//!   it by value gives it an in-group majority of 1 — and `keep =
//!   max(majority, 1)` in both formulations, so the removal totals agree
//!   integer-for-integer (see `counts_match_partition_g3` below).
//! * The final confidence is computed with the same float expression in
//!   the same order (`1.0 − removals as f64 / n_rows as f64`).
//!
//! All state lives in `BTreeMap`s keyed by values, so shard-parallel
//! accumulation merged in shard order is canonical: byte-identical at any
//! `QPIAD_THREADS`.

use std::collections::BTreeMap;

use qpiad_db::{AttrId, Relation, Tuple, TupleId, Value};

use crate::afd::{AKey, Afd, AfdSet};

/// Rows per shard for the parallel initial count build. Fixed (not a
/// function of the thread count) so the shard boundaries — and therefore
/// the merge order — are identical at any `QPIAD_THREADS`.
const SHARD_ROWS: usize = 4096;

// ---------------------------------------------------------------------------
// SampleStream
// ---------------------------------------------------------------------------

/// One queued validated row.
#[derive(Debug, Clone)]
struct StreamedRow {
    tuple: Tuple,
    /// How many times this id was pushed (re-observations replace the
    /// stored tuple and raise the weight).
    weight: u64,
    /// Arrival order of the id's *first* observation — the fold merges
    /// rows in this order, mirroring probe order in `SourceStats::refresh`.
    seq: u64,
    /// Sequence of the most recent push for this id; a row replaced after
    /// a fold snapshot was taken survives `clear_through`.
    touched: u64,
}

/// A capacity-bounded queue of validated live rows awaiting a fold,
/// deduplicated by tuple id.
///
/// Pushing an id already queued replaces the stored tuple (latest
/// observation wins, exactly like the probe merge in
/// [`SourceStats::refresh`](crate::knowledge::SourceStats::refresh)) and
/// raises its weight; the weight is diagnostic — a folded row enters the
/// sample once regardless of how often it was re-observed.
#[derive(Debug)]
pub struct SampleStream {
    rows: BTreeMap<TupleId, StreamedRow>,
    next_seq: u64,
    capacity: usize,
    collected: u64,
    salvaged: u64,
    dropped: u64,
    folded: u64,
    superseded: u64,
}

/// Counter snapshot of one stream (or an aggregate over streams).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Rows currently queued awaiting a fold.
    pub pending: usize,
    /// Rows ever accepted into the stream (including re-observations).
    pub collected: u64,
    /// Accepted rows that arrived on probes outlived by a refresh — rows
    /// whose drift statistic was dropped as stale but whose validated
    /// content was still worth keeping.
    pub salvaged: u64,
    /// Rows refused because the stream was at capacity.
    pub dropped: u64,
    /// Rows consumed by an incremental fold.
    pub folded: u64,
    /// Rows discarded because a full re-mine superseded them.
    pub superseded: u64,
}

impl StreamStats {
    /// Element-wise sum, for aggregating per-source streams.
    pub fn merge(&mut self, other: &StreamStats) {
        self.pending += other.pending;
        self.collected += other.collected;
        self.salvaged += other.salvaged;
        self.dropped += other.dropped;
        self.folded += other.folded;
        self.superseded += other.superseded;
    }
}

impl SampleStream {
    /// An empty stream holding at most `capacity` distinct tuple ids.
    pub fn new(capacity: usize) -> Self {
        SampleStream {
            rows: BTreeMap::new(),
            next_seq: 0,
            capacity,
            collected: 0,
            salvaged: 0,
            dropped: 0,
            folded: 0,
            superseded: 0,
        }
    }

    /// Queues one validated row; `salvaged` marks rows recovered from a
    /// refresh-outlived probe. Returns whether the row was accepted.
    pub fn push(&mut self, tuple: Tuple, salvaged: bool) -> bool {
        if let Some(row) = self.rows.get_mut(&tuple.id()) {
            row.tuple = tuple;
            row.weight += 1;
            row.touched = self.next_seq;
            self.next_seq += 1;
        } else if self.rows.len() < self.capacity {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.rows.insert(tuple.id(), StreamedRow { tuple, weight: 1, seq, touched: seq });
        } else {
            self.dropped += 1;
            return false;
        }
        self.collected += 1;
        if salvaged {
            self.salvaged += 1;
        }
        true
    }

    /// Rows currently queued.
    pub fn pending(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The queued rows in arrival order plus the watermark to pass back to
    /// [`SampleStream::clear_through`] once they have been folded.
    pub fn snapshot(&self) -> (Vec<Tuple>, u64) {
        let mut rows: Vec<(u64, &Tuple)> =
            self.rows.values().map(|r| (r.seq, &r.tuple)).collect();
        rows.sort_unstable_by_key(|(seq, _)| *seq);
        (rows.into_iter().map(|(_, t)| t.clone()).collect(), self.next_seq)
    }

    /// Drops rows whose latest push happened before the `through`
    /// watermark of a [`SampleStream::snapshot`] — they are in the folded
    /// sample now. A row re-pushed *after* the snapshot stays queued for
    /// the next fold.
    pub fn clear_through(&mut self, through: u64) {
        let before = self.rows.len();
        self.rows.retain(|_, r| r.touched >= through);
        self.folded += (before - self.rows.len()) as u64;
    }

    /// Drops everything queued: a full re-mine re-probed the source, so
    /// the queued rows are superseded by fresher knowledge.
    pub fn discard(&mut self) {
        self.superseded += self.rows.len() as u64;
        self.rows.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            pending: self.rows.len(),
            collected: self.collected,
            salvaged: self.salvaged,
            dropped: self.dropped,
            folded: self.folded,
            superseded: self.superseded,
        }
    }
}

// ---------------------------------------------------------------------------
// Count state
// ---------------------------------------------------------------------------

fn inc(map: &mut BTreeMap<Value, u64>, key: &Value) {
    *map.entry(key.clone()).or_insert(0) += 1;
}

fn dec(map: &mut BTreeMap<Value, u64>, key: &Value) {
    if let Some(n) = map.get_mut(key) {
        *n -= 1;
        if *n == 0 {
            map.remove(key);
        }
    } else {
        debug_assert!(false, "removed a row that was never counted");
    }
}

fn merge_counts(dst: &mut BTreeMap<Value, u64>, src: BTreeMap<Value, u64>) {
    for (v, n) in src {
        *dst.entry(v).or_insert(0) += n;
    }
}

/// The rows of one determining-set valuation, counted by rhs value.
#[derive(Debug, Clone, Default)]
struct AfdGroup {
    by_value: BTreeMap<Value, u64>,
    null_rhs: u64,
}

impl AfdGroup {
    fn len(&self) -> u64 {
        self.by_value.values().sum::<u64>() + self.null_rhs
    }

    fn is_empty(&self) -> bool {
        self.by_value.is_empty() && self.null_rhs == 0
    }
}

/// Count state of one mined AFD `lhs ⇝ rhs`.
#[derive(Debug, Clone)]
pub(crate) struct AfdCounts {
    pub(crate) lhs: Vec<AttrId>,
    pub(crate) rhs: AttrId,
    /// Confidence at the last full TANE run — the anchor the re-mine
    /// bound compares folded confidences against.
    pub(crate) base_confidence: f64,
    groups: BTreeMap<Vec<Value>, AfdGroup>,
}

impl AfdCounts {
    fn shaped(afd: &Afd) -> Self {
        AfdCounts {
            lhs: afd.lhs.clone(),
            rhs: afd.rhs,
            base_confidence: afd.confidence,
            groups: BTreeMap::new(),
        }
    }

    fn key_of(&self, t: &Tuple) -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(self.lhs.len());
        for a in &self.lhs {
            let v = t.value(*a);
            if v.is_null() {
                return None; // stripped: a null matches nothing
            }
            key.push(v.clone());
        }
        Some(key)
    }

    fn add_row(&mut self, t: &Tuple) {
        let Some(key) = self.key_of(t) else { return };
        let group = self.groups.entry(key).or_default();
        let rhs = t.value(self.rhs);
        if rhs.is_null() {
            group.null_rhs += 1;
        } else {
            inc(&mut group.by_value, rhs);
        }
    }

    fn remove_row(&mut self, t: &Tuple) {
        let Some(key) = self.key_of(t) else { return };
        let Some(group) = self.groups.get_mut(&key) else {
            debug_assert!(false, "removed a row that was never grouped");
            return;
        };
        let rhs = t.value(self.rhs);
        if rhs.is_null() {
            group.null_rhs -= 1;
        } else {
            dec(&mut group.by_value, rhs);
        }
        if group.is_empty() {
            self.groups.remove(&key);
        }
    }

    fn merge(&mut self, src: AfdCounts) {
        for (key, group) in src.groups {
            let dst = self.groups.entry(key).or_default();
            dst.null_rhs += group.null_rhs;
            merge_counts(&mut dst.by_value, group.by_value);
        }
    }

    /// `1 − g3(lhs → rhs)` over the counted rows — bit-identical to
    /// [`StrippedPartition::g3_error`](crate::partition::StrippedPartition::g3_error)
    /// on the same relation (see the module docs for why).
    pub(crate) fn confidence(&self, n_rows: u64) -> f64 {
        if n_rows == 0 {
            return 1.0;
        }
        let mut removals = 0u64;
        for group in self.groups.values() {
            let majority = group.by_value.values().copied().max().unwrap_or(0);
            let keep = majority.max(u64::from(group.null_rhs > 0 && majority == 0));
            removals += group.len() - keep;
        }
        1.0 - removals as f64 / n_rows as f64
    }
}

/// Count state of one mined approximate key.
#[derive(Debug, Clone)]
pub(crate) struct KeyCounts {
    pub(crate) attrs: Vec<AttrId>,
    pub(crate) base_confidence: f64,
    groups: BTreeMap<Vec<Value>, u64>,
}

impl KeyCounts {
    fn shaped(akey: &AKey) -> Self {
        KeyCounts {
            attrs: akey.attrs.clone(),
            base_confidence: akey.confidence,
            groups: BTreeMap::new(),
        }
    }

    fn key_of(&self, t: &Tuple) -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(self.attrs.len());
        for a in &self.attrs {
            let v = t.value(*a);
            if v.is_null() {
                return None;
            }
            key.push(v.clone());
        }
        Some(key)
    }

    fn add_row(&mut self, t: &Tuple) {
        if let Some(key) = self.key_of(t) {
            *self.groups.entry(key).or_insert(0) += 1;
        }
    }

    fn remove_row(&mut self, t: &Tuple) {
        if let Some(key) = self.key_of(t) {
            if let Some(n) = self.groups.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    self.groups.remove(&key);
                }
            } else {
                debug_assert!(false, "removed a row that was never keyed");
            }
        }
    }

    fn merge(&mut self, src: KeyCounts) {
        for (key, n) in src.groups {
            *self.groups.entry(key).or_insert(0) += n;
        }
    }

    /// `1 − g3_key(attrs)` over the counted rows — bit-identical to
    /// [`StrippedPartition::g3_key_error`](crate::partition::StrippedPartition::g3_key_error).
    pub(crate) fn confidence(&self, n_rows: u64) -> f64 {
        if n_rows == 0 {
            return 1.0;
        }
        let dups: u64 = self.groups.values().map(|c| c - 1).sum();
        1.0 - dups as f64 / n_rows as f64
    }
}

/// Batch-training tables derived from delta counts: classes in
/// first-appearance order, their counts, and per-feature conditional
/// rows keyed by feature value — the inputs
/// [`NaiveBayes::from_counts`](crate::nbc::NaiveBayes::from_counts)
/// takes.
pub(crate) type NbcTables = (Vec<Value>, Vec<f64>, Vec<Vec<(Value, Vec<f64>)>>);

/// Count state of one attribute's single-NBC classifier: exactly the
/// integer counts [`NaiveBayes::train`](crate::nbc::NaiveBayes::train)
/// accumulates, kept updatable.
#[derive(Debug, Clone)]
pub(crate) struct NbcCounts {
    pub(crate) target: AttrId,
    pub(crate) features: Vec<AttrId>,
    /// Non-null target occurrences per class value.
    class_counts: BTreeMap<Value, u64>,
    /// Per feature: feature value → class value → co-occurrence count.
    /// An entry exists iff the pair co-occurred at least once — the same
    /// membership rule batch training uses, which is what keeps the
    /// smoothing domain size identical.
    cond: Vec<BTreeMap<Value, BTreeMap<Value, u64>>>,
}

impl NbcCounts {
    fn shaped(target: AttrId, features: Vec<AttrId>) -> Self {
        let cond = features.iter().map(|_| BTreeMap::new()).collect();
        NbcCounts { target, features, class_counts: BTreeMap::new(), cond }
    }

    fn add_row(&mut self, t: &Tuple) {
        let tv = t.value(self.target);
        if tv.is_null() {
            return; // null target: not a training example
        }
        inc(&mut self.class_counts, tv);
        for (fi, f) in self.features.iter().enumerate() {
            let fv = t.value(*f);
            if !fv.is_null() {
                inc(self.cond[fi].entry(fv.clone()).or_default(), tv);
            }
        }
    }

    fn remove_row(&mut self, t: &Tuple) {
        let tv = t.value(self.target);
        if tv.is_null() {
            return;
        }
        dec(&mut self.class_counts, tv);
        for (fi, f) in self.features.iter().enumerate() {
            let fv = t.value(*f);
            if fv.is_null() {
                continue;
            }
            if let Some(classes) = self.cond[fi].get_mut(fv) {
                dec(classes, tv);
                if classes.is_empty() {
                    self.cond[fi].remove(fv);
                }
            } else {
                debug_assert!(false, "removed a co-occurrence that was never counted");
            }
        }
    }

    fn merge(&mut self, src: NbcCounts) {
        merge_counts(&mut self.class_counts, src.class_counts);
        for (dst, src) in self.cond.iter_mut().zip(src.cond) {
            for (fv, classes) in src {
                merge_counts(dst.entry(fv).or_default(), classes);
            }
        }
    }

    /// Builds counts over a whole sample in one pass (used when a fold
    /// changes an attribute's feature set and the delta state must be
    /// re-seeded from the merged sample).
    pub(crate) fn count(sample: &Relation, target: AttrId, features: Vec<AttrId>) -> Self {
        let mut counts = NbcCounts::shaped(target, features);
        for t in sample.tuples() {
            counts.add_row(t);
        }
        counts
    }

    /// Classes in first-appearance order over `sample`'s target column —
    /// the order batch training assigns — paired with their counts, plus
    /// the per-feature conditional tables in that class order. Feed these
    /// to [`NaiveBayes::from_counts`](crate::nbc::NaiveBayes::from_counts).
    pub(crate) fn tables(&self, sample: &Relation) -> NbcTables {
        let mut classes: Vec<Value> = Vec::new();
        let mut index: BTreeMap<&Value, usize> = BTreeMap::new();
        for t in sample.tuples() {
            let tv = t.value(self.target);
            if !tv.is_null() && !index.contains_key(tv) {
                classes.push(tv.clone());
            }
            if !tv.is_null() {
                let next = classes.len() - 1;
                index.entry(tv).or_insert(next);
            }
        }
        debug_assert_eq!(
            classes.len(),
            self.class_counts.len(),
            "delta class set must match the merged sample's"
        );
        let class_counts: Vec<f64> = classes
            .iter()
            .map(|c| self.class_counts.get(c).copied().unwrap_or(0) as f64)
            .collect();
        let k = classes.len();
        let idx_of = |v: &Value| index.get(v).copied();
        let cond: Vec<Vec<(Value, Vec<f64>)>> = self
            .cond
            .iter()
            .map(|per_value| {
                per_value
                    .iter()
                    .map(|(fv, by_class)| {
                        let mut row = vec![0f64; k];
                        for (cv, n) in by_class {
                            if let Some(c) = idx_of(cv) {
                                row[c] = *n as f64;
                            }
                        }
                        (fv.clone(), row)
                    })
                    .collect()
            })
            .collect();
        (classes, class_counts, cond)
    }
}

/// The full delta-maintainable count state of one mined bundle.
#[derive(Debug, Clone)]
pub(crate) struct FoldState {
    /// Rows in the retained sample — the `g3` denominator.
    n_rows: u64,
    /// One count state per mined AFD, sorted by `(rhs, lhs)` so the fold
    /// path never iterates the `AfdSet`'s hash map.
    pub(crate) afds: Vec<AfdCounts>,
    /// One count state per mined AKey, sorted by attribute set.
    pub(crate) akeys: Vec<KeyCounts>,
    /// One count state per attribute trained as a single NBC, sorted by
    /// target (ensemble attributes retrain from the merged sample).
    pub(crate) nbc: Vec<NbcCounts>,
}

impl FoldState {
    /// An empty state shaped like the mined artifacts.
    fn shaped(afds: &AfdSet, akeys: &[AKey], nbc_specs: &[(AttrId, Vec<AttrId>)]) -> Self {
        let mut afd_list: Vec<&Afd> = afds.iter().collect();
        afd_list.sort_by(|a, b| a.rhs.cmp(&b.rhs).then_with(|| a.lhs.cmp(&b.lhs)));
        let mut key_list: Vec<&AKey> = akeys.iter().collect();
        key_list.sort_by(|a, b| a.attrs.cmp(&b.attrs));
        let mut specs: Vec<&(AttrId, Vec<AttrId>)> = nbc_specs.iter().collect();
        specs.sort_by_key(|(target, _)| *target);
        FoldState {
            n_rows: 0,
            afds: afd_list.into_iter().map(AfdCounts::shaped).collect(),
            akeys: key_list.into_iter().map(KeyCounts::shaped).collect(),
            nbc: specs
                .into_iter()
                .map(|(target, features)| NbcCounts::shaped(*target, features.clone()))
                .collect(),
        }
    }

    fn accumulate(&mut self, rows: &[Tuple]) {
        for t in rows {
            self.add_row(t);
        }
    }

    fn merge(&mut self, src: FoldState) {
        self.n_rows += src.n_rows;
        for (dst, src) in self.afds.iter_mut().zip(src.afds) {
            dst.merge(src);
        }
        for (dst, src) in self.akeys.iter_mut().zip(src.akeys) {
            dst.merge(src);
        }
        for (dst, src) in self.nbc.iter_mut().zip(src.nbc) {
            dst.merge(src);
        }
    }

    /// Builds the count state over a sample, shard-parallel: fixed-size
    /// row shards accumulate partial counts across the [`crate::par`]
    /// worker pool and merge sequentially in shard order. Integer adds
    /// into ordered maps commute, so the result is byte-identical at any
    /// thread count.
    pub(crate) fn build(
        sample: &Relation,
        afds: &AfdSet,
        akeys: &[AKey],
        nbc_specs: &[(AttrId, Vec<AttrId>)],
    ) -> Self {
        let template = FoldState::shaped(afds, akeys, nbc_specs);
        let rows = sample.tuples();
        if rows.len() <= SHARD_ROWS {
            let mut state = template;
            state.accumulate(rows);
            return state;
        }
        let shards: Vec<&[Tuple]> = rows.chunks(SHARD_ROWS).collect();
        let partials = crate::par::parallel_map(&shards, |shard| {
            let mut partial = template.clone();
            partial.accumulate(shard);
            partial
        });
        let mut state = FoldState::shaped(afds, akeys, nbc_specs);
        for partial in partials {
            state.merge(partial);
        }
        state
    }

    /// Builds the post-delta count state without mutating `self`: every
    /// count structure clones itself and replays the delta independently
    /// across the [`crate::par`] worker pool — `replaced` rows swap old
    /// for new in place, `appended` rows are new ids. The structures are
    /// disjoint and the replay order within each is fixed, so the result
    /// is byte-identical to a sequential clone-then-replay at any thread
    /// count. Replaced pairs whose tuples are identical are exact no-ops
    /// on every structure (a remove immediately undone by the same add)
    /// and are filtered out first — live refreshes mostly re-deliver
    /// unchanged rows, so this skips the bulk of the replay.
    pub(crate) fn applied(&self, replaced: &[(Tuple, Tuple)], appended: &[Tuple]) -> FoldState {
        let changed: Vec<&(Tuple, Tuple)> = replaced.iter().filter(|(o, n)| o != n).collect();
        let replay_afd = |counts: &AfdCounts| {
            let mut counts = counts.clone();
            for (old, new) in &changed {
                counts.remove_row(old);
                counts.add_row(new);
            }
            for t in appended {
                counts.add_row(t);
            }
            counts
        };
        let replay_key = |counts: &KeyCounts| {
            let mut counts = counts.clone();
            for (old, new) in &changed {
                counts.remove_row(old);
                counts.add_row(new);
            }
            for t in appended {
                counts.add_row(t);
            }
            counts
        };
        let replay_nbc = |counts: &NbcCounts| {
            let mut counts = counts.clone();
            for (old, new) in &changed {
                counts.remove_row(old);
                counts.add_row(new);
            }
            for t in appended {
                counts.add_row(t);
            }
            counts
        };
        FoldState {
            n_rows: self.n_rows + appended.len() as u64,
            afds: crate::par::parallel_map(&self.afds, replay_afd),
            akeys: crate::par::parallel_map(&self.akeys, replay_key),
            nbc: crate::par::parallel_map(&self.nbc, replay_nbc),
        }
    }

    /// The worst absolute confidence drift of any AFD or AKey from its
    /// last full TANE run — the quantity the re-mine bound gates on.
    pub(crate) fn max_confidence_delta(&self) -> f64 {
        let mut worst = 0.0f64;
        for afd in &self.afds {
            worst = worst.max((afd.confidence(self.n_rows) - afd.base_confidence).abs());
        }
        for akey in &self.akeys {
            worst = worst.max((akey.confidence(self.n_rows) - akey.base_confidence).abs());
        }
        worst
    }

    /// Replaces the count state of `target`'s classifier (the fold path
    /// re-seeds it when the attribute's feature set changed).
    pub(crate) fn replace_nbc(&mut self, counts: NbcCounts) {
        match self.nbc.binary_search_by_key(&counts.target, |c| c.target) {
            Ok(i) => self.nbc[i] = counts,
            Err(i) => self.nbc.insert(i, counts),
        }
    }

    /// Drops the count state of `target`'s classifier (the attribute is
    /// now trained as an ensemble, which always retrains in full).
    pub(crate) fn drop_nbc(&mut self, target: AttrId) {
        if let Ok(i) = self.nbc.binary_search_by_key(&target, |c| c.target) {
            self.nbc.remove(i);
        }
    }

    /// The count state of `target`'s classifier, if delta-maintained.
    pub(crate) fn nbc_for(&self, target: AttrId) -> Option<&NbcCounts> {
        self.nbc
            .binary_search_by_key(&target, |c| c.target)
            .ok()
            .map(|i| &self.nbc[i])
    }

    fn add_row(&mut self, t: &Tuple) {
        self.n_rows += 1;
        for afd in &mut self.afds {
            afd.add_row(t);
        }
        for akey in &mut self.akeys {
            akey.add_row(t);
        }
        for nbc in &mut self.nbc {
            nbc.add_row(t);
        }
    }

    pub(crate) fn n_rows(&self) -> u64 {
        self.n_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::StrippedPartition;
    use qpiad_db::{AttrType, Schema, TupleId};

    fn relation(rows: &[(&str, &str)]) -> Relation {
        let schema = Schema::of(
            "t",
            &[("x", AttrType::Categorical), ("y", AttrType::Categorical)],
        );
        let mk = |s: &str| if s == "-" { Value::Null } else { Value::str(s) };
        let tuples = rows
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Tuple::new(TupleId(i as u32), vec![mk(x), mk(y)]))
            .collect();
        Relation::new(schema, tuples)
    }

    #[test]
    fn counts_match_partition_g3() {
        // Nulls on both sides, globally unique target values, all-null
        // groups: every case the stripped-partition measure handles.
        let r = relation(&[
            ("a", "1"),
            ("a", "1"),
            ("a", "2"),
            ("a", "-"),
            ("b", "uniq"),
            ("b", "-"),
            ("-", "1"),
            ("c", "-"),
            ("c", "-"),
            ("d", "3"),
        ]);
        let afd = Afd::new(vec![AttrId(0)], AttrId(1), 0.0);
        let set = AfdSet::new(vec![afd]);
        let state = FoldState::build(&r, &set, &[], &[]);
        let px = StrippedPartition::from_column(&r, AttrId(0));
        let py = StrippedPartition::from_column(&r, AttrId(1));
        let expect = 1.0 - px.g3_error(&py.lookup());
        let got = state.afds[0].confidence(state.n_rows());
        assert_eq!(got.to_bits(), expect.to_bits());
    }

    #[test]
    fn key_counts_match_partition_g3_key() {
        let r = relation(&[("a", "1"), ("a", "1"), ("b", "2"), ("-", "3"), ("c", "4")]);
        let akey = AKey::new(vec![AttrId(0)], 0.0);
        let state = FoldState::build(&r, &AfdSet::default(), &[akey], &[]);
        let p = StrippedPartition::from_column(&r, AttrId(0));
        let expect = 1.0 - p.g3_key_error();
        assert_eq!(state.akeys[0].confidence(state.n_rows()).to_bits(), expect.to_bits());
    }

    #[test]
    fn delta_updates_equal_rebuild() {
        let base = relation(&[("a", "1"), ("a", "1"), ("b", "2"), ("b", "2"), ("c", "3")]);
        let afd = Afd::new(vec![AttrId(0)], AttrId(1), 0.0);
        let set = AfdSet::new(vec![afd]);
        let specs = vec![(AttrId(1), vec![AttrId(0)])];
        let built = FoldState::build(&base, &set, &[], &specs);

        // Replace row 1's target and append two rows.
        let old = base.tuples()[1].clone();
        let new = Tuple::new(TupleId(1), vec![Value::str("a"), Value::str("9")]);
        let appended = vec![
            Tuple::new(TupleId(7), vec![Value::str("a"), Value::str("1")]),
            Tuple::new(TupleId(8), vec![Value::Null, Value::str("1")]),
        ];
        let state = built.applied(&[(old, new.clone())], &appended);

        let mut merged: Vec<Tuple> = base.tuples().to_vec();
        merged[1] = new;
        merged.extend(appended);
        let merged = Relation::new(base.schema().clone(), merged);
        let rebuilt = FoldState::build(&merged, &set, &[], &specs);

        assert_eq!(state.n_rows(), rebuilt.n_rows());
        assert_eq!(
            state.afds[0].confidence(state.n_rows()).to_bits(),
            rebuilt.afds[0].confidence(rebuilt.n_rows()).to_bits()
        );
        let (ca, na, conda) = state.nbc[0].tables(&merged);
        let (cb, nb, condb) = rebuilt.nbc[0].tables(&merged);
        assert_eq!(ca, cb);
        assert_eq!(na, nb);
        assert_eq!(conda, condb);
    }

    #[test]
    fn stream_dedups_by_id_and_tracks_counters() {
        let mut stream = SampleStream::new(2);
        let t0 = Tuple::new(TupleId(0), vec![Value::str("a")]);
        let t0b = Tuple::new(TupleId(0), vec![Value::str("b")]);
        let t1 = Tuple::new(TupleId(1), vec![Value::str("c")]);
        let t2 = Tuple::new(TupleId(2), vec![Value::str("d")]);
        assert!(stream.push(t0, false));
        assert!(stream.push(t0b.clone(), true));
        assert!(stream.push(t1, false));
        assert!(!stream.push(t2, false)); // over capacity
        let s = stream.stats();
        assert_eq!(s.pending, 2);
        assert_eq!(s.collected, 3);
        assert_eq!(s.salvaged, 1);
        assert_eq!(s.dropped, 1);
        // Latest observation wins for a duplicated id.
        let (rows, through) = stream.snapshot();
        assert_eq!(rows[0].value(AttrId(0)), t0b.value(AttrId(0)));
        stream.clear_through(through);
        assert!(stream.is_empty());
        assert_eq!(stream.stats().folded, 2);
    }

    #[test]
    fn rows_touched_after_a_snapshot_survive_the_clear() {
        let mut stream = SampleStream::new(8);
        stream.push(Tuple::new(TupleId(0), vec![Value::str("a")]), false);
        let (_, through) = stream.snapshot();
        // Re-observed after the snapshot: must stay queued for the next
        // fold, or the newer observation would be lost.
        stream.push(Tuple::new(TupleId(0), vec![Value::str("b")]), false);
        stream.clear_through(through);
        assert_eq!(stream.pending(), 1);
    }

    #[test]
    fn discard_counts_superseded_rows() {
        let mut stream = SampleStream::new(8);
        stream.push(Tuple::new(TupleId(0), vec![Value::str("a")]), false);
        stream.push(Tuple::new(TupleId(1), vec![Value::str("b")]), false);
        stream.discard();
        assert!(stream.is_empty());
        assert_eq!(stream.stats().superseded, 2);
        assert_eq!(stream.stats().folded, 0);
    }
}
