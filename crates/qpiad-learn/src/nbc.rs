//! Naïve Bayes classification with m-estimate smoothing (§5.2).
//!
//! Given a tuple with a null on attribute `Am` and the values `x` of a
//! feature set (typically `dtrSet(Am)` from the best AFD), the classifier
//! estimates `P(Am = v | x) ∝ P(Am = v) · Π_i P(x_i | Am = v)` with
//! per-feature m-estimates `P(x|c) = (n_xc + m·p) / (n_c + m)`, `p = 1/|V|`
//! (Mitchell \[23\]). Null feature values are skipped at prediction time —
//! they carry no evidence.

use std::collections::HashMap;

use qpiad_db::{AttrId, PredOp, Relation, Tuple, Value};

/// A trained Naïve Bayes classifier for one target attribute.
///
/// ```
/// use qpiad_db::{AttrType, Relation, Schema, Tuple, TupleId, Value};
/// use qpiad_learn::nbc::NaiveBayes;
///
/// let schema = Schema::of("cars", &[
///     ("model", AttrType::Categorical),
///     ("body", AttrType::Categorical),
/// ]);
/// let model = schema.expect_attr("model");
/// let body = schema.expect_attr("body");
/// let rows = [("Z4", "Convt"), ("Z4", "Convt"), ("A4", "Sedan")];
/// let tuples = rows.iter().enumerate().map(|(i, (m, b))| {
///     Tuple::new(TupleId(i as u32), vec![Value::str(*m), Value::str(*b)])
/// }).collect();
/// let sample = Relation::new(schema, tuples);
///
/// let nbc = NaiveBayes::train(&sample, body, vec![model], 1.0);
/// let probe = Tuple::new(TupleId(9), vec![Value::str("Z4"), Value::Null]);
/// let (value, p) = nbc.predict(&probe).unwrap();
/// assert_eq!(value, Value::str("Convt"));
/// assert!(p > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    target: AttrId,
    features: Vec<AttrId>,
    /// Class values, in a stable order.
    classes: Vec<Value>,
    class_index: HashMap<Value, usize>,
    /// `n_c` per class.
    class_counts: Vec<f64>,
    total: f64,
    /// Per feature: value → per-class counts `n_xc`.
    cond: Vec<HashMap<Value, Vec<f64>>>,
    /// Per feature: observed domain size `|V|`.
    domain_size: Vec<usize>,
    /// The m-estimate weight.
    m: f64,
}

impl NaiveBayes {
    /// Trains a classifier for `target` using `features`, from all sample
    /// tuples whose target value is non-null.
    pub fn train(sample: &Relation, target: AttrId, features: Vec<AttrId>, m: f64) -> Self {
        assert!(m >= 0.0, "m-estimate weight must be non-negative");
        assert!(!features.contains(&target), "target cannot be a feature");

        let mut classes: Vec<Value> = Vec::new();
        let mut class_index: HashMap<Value, usize> = HashMap::new();
        for t in sample.tuples() {
            let v = t.value(target);
            if !v.is_null() && !class_index.contains_key(v) {
                class_index.insert(v.clone(), classes.len());
                classes.push(v.clone());
            }
        }

        let mut class_counts = vec![0f64; classes.len()];
        let mut cond: Vec<HashMap<Value, Vec<f64>>> =
            features.iter().map(|_| HashMap::new()).collect();
        let mut total = 0f64;
        for t in sample.tuples() {
            let target_v = t.value(target);
            let Some(&c) = class_index.get(target_v) else {
                continue; // null target: not a training example
            };
            total += 1.0;
            class_counts[c] += 1.0;
            for (fi, f) in features.iter().enumerate() {
                let fv = t.value(*f);
                if fv.is_null() {
                    continue;
                }
                cond[fi]
                    .entry(fv.clone())
                    .or_insert_with(|| vec![0f64; classes.len()])[c] += 1.0;
            }
        }
        let domain_size = cond.iter().map(|map| map.len().max(1)).collect();
        NaiveBayes {
            target,
            features,
            classes,
            class_index,
            class_counts,
            total,
            cond,
            domain_size,
            m,
        }
    }

    /// The target attribute.
    pub fn target(&self) -> AttrId {
        self.target
    }

    /// The feature attributes.
    pub fn features(&self) -> &[AttrId] {
        &self.features
    }

    /// The class values (the target's observed domain).
    pub fn classes(&self) -> &[Value] {
        &self.classes
    }

    /// Posterior distribution over the target's classes given a tuple;
    /// null features are skipped. The result sums to 1 (uniform when the
    /// classifier saw no training data).
    pub fn distribution(&self, tuple: &Tuple) -> Vec<(Value, f64)> {
        let feature_values: Vec<&Value> =
            self.features.iter().map(|f| tuple.value(*f)).collect();
        self.distribution_of(&feature_values)
    }

    /// Posterior distribution from explicit feature values (in the order of
    /// [`Self::features`]).
    pub fn distribution_of(&self, feature_values: &[&Value]) -> Vec<(Value, f64)> {
        assert_eq!(feature_values.len(), self.features.len());
        let k = self.classes.len();
        if k == 0 {
            return Vec::new();
        }
        if self.total == 0.0 {
            let u = 1.0 / k as f64;
            return self.classes.iter().map(|c| (c.clone(), u)).collect();
        }

        let mut log_scores = vec![0f64; k];
        for (c, score) in log_scores.iter_mut().enumerate() {
            // Smoothed prior.
            *score = ((self.class_counts[c] + 1.0) / (self.total + k as f64)).ln();
        }
        for (fi, fv) in feature_values.iter().enumerate() {
            if fv.is_null() {
                continue;
            }
            let p_uniform = 1.0 / self.domain_size[fi] as f64;
            let counts = self.cond[fi].get(*fv);
            for (c, score) in log_scores.iter_mut().enumerate() {
                let n_xc = counts.map(|v| v[c]).unwrap_or(0.0);
                let p = (n_xc + self.m * p_uniform) / (self.class_counts[c] + self.m);
                // With m = 0 and unseen pairs the likelihood is 0; clamp to
                // keep log-space finite and let normalization handle it.
                *score += p.max(1e-300).ln();
            }
        }
        // Normalize via log-sum-exp.
        let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut exp: Vec<f64> = log_scores.iter().map(|s| (s - max).exp()).collect();
        let sum: f64 = exp.iter().sum();
        for e in &mut exp {
            *e /= sum;
        }
        self.classes
            .iter()
            .cloned()
            .zip(exp)
            .collect()
    }

    /// The most likely class for a tuple, with its probability.
    pub fn predict(&self, tuple: &Tuple) -> Option<(Value, f64)> {
        self.distribution(tuple)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Probability that the (missing) target value satisfies the given
    /// predicate operator: `Σ_{v ⊨ op} P(Am = v | tuple)`.
    pub fn prob_matching(&self, tuple: &Tuple, op: &PredOp) -> f64 {
        self.distribution(tuple)
            .into_iter()
            .filter(|(v, _)| op.matches(v))
            .map(|(_, p)| p)
            .sum()
    }

    /// `P(Am = value | tuple)` (0 for classes never observed).
    pub fn prob_of(&self, tuple: &Tuple, value: &Value) -> f64 {
        match self.class_index.get(value) {
            Some(_) => self
                .distribution(tuple)
                .into_iter()
                .find(|(v, _)| v == value)
                .map(|(_, p)| p)
                .unwrap_or(0.0),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpiad_db::{AttrType, Schema, TupleId};

    /// model → body fixture: Z4 is usually Convt, A4 usually Sedan.
    fn sample() -> Relation {
        let schema = Schema::of(
            "cars",
            &[("model", AttrType::Categorical), ("body", AttrType::Categorical)],
        );
        let rows = [
            ("Z4", "Convt"),
            ("Z4", "Convt"),
            ("Z4", "Convt"),
            ("Z4", "Coupe"),
            ("A4", "Sedan"),
            ("A4", "Sedan"),
            ("A4", "Convt"),
            ("A4", "Sedan"),
        ];
        let tuples = rows
            .iter()
            .enumerate()
            .map(|(i, (m, b))| {
                Tuple::new(TupleId(i as u32), vec![Value::str(m), Value::str(b)])
            })
            .collect();
        Relation::new(schema, tuples)
    }

    fn probe(model: &str) -> Tuple {
        Tuple::new(TupleId(99), vec![Value::str(model), Value::Null])
    }

    #[test]
    fn distribution_sums_to_one() {
        let r = sample();
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 1.0);
        let d = nbc.distribution(&probe("Z4"));
        let sum: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(d.len(), 3); // Convt, Coupe, Sedan
    }

    #[test]
    fn matches_hand_computed_bayes() {
        // Without smoothing (m = 0), P(Convt | Z4) by Bayes:
        // P(Z4|Convt) = 3/4, P(Convt) prior smoothed... use m=0 and raw
        // prior verified through ratios instead: posterior odds
        // Convt:Coupe:Sedan for Z4 = P(Z4|c)·P(c).
        let r = sample();
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 0.0);
        let d = nbc.distribution(&probe("Z4"));
        let get = |name: &str| {
            d.iter()
                .find(|(v, _)| v == &Value::str(name))
                .map(|(_, p)| *p)
                .unwrap()
        };
        // Raw counts: Convt: n=4, Z4∧Convt=3 → P(Z4|Convt)=3/4.
        // Coupe: n=1, Z4∧Coupe=1 → 1. Sedan: n=3, Z4∧Sedan=0 → 0.
        // Smoothed priors (Laplace on classes, total=8, k=3):
        // Convt (4+1)/11, Coupe (1+1)/11, Sedan (3+1)/11.
        // Scores: Convt 5/11·3/4 = 15/44, Coupe 2/11·1 = 8/44, Sedan 0.
        let expect_convt = 15.0 / 23.0;
        let expect_coupe = 8.0 / 23.0;
        assert!((get("Convt") - expect_convt).abs() < 1e-9, "{}", get("Convt"));
        assert!((get("Coupe") - expect_coupe).abs() < 1e-9);
        assert!(get("Sedan") < 1e-12);
    }

    #[test]
    fn smoothing_avoids_zero_probabilities() {
        let r = sample();
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 1.0);
        let d = nbc.distribution(&probe("Z4"));
        assert!(d.iter().all(|(_, p)| *p > 0.0));
    }

    #[test]
    fn predicts_dominant_class() {
        let r = sample();
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 1.0);
        assert_eq!(nbc.predict(&probe("Z4")).unwrap().0, Value::str("Convt"));
        assert_eq!(nbc.predict(&probe("A4")).unwrap().0, Value::str("Sedan"));
    }

    #[test]
    fn null_features_carry_no_evidence() {
        let r = sample();
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 1.0);
        let no_evidence = Tuple::new(TupleId(0), vec![Value::Null, Value::Null]);
        let d = nbc.distribution(&no_evidence);
        // Falls back to the (smoothed) prior: Convt most common.
        let best = d.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(best.0, Value::str("Convt"));
    }

    #[test]
    fn unseen_feature_value_falls_back_to_prior_shape() {
        let r = sample();
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 1.0);
        let d = nbc.distribution(&probe("Boxster"));
        let sum: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|(_, p)| *p > 0.0));
    }

    #[test]
    fn prob_matching_sums_over_range() {
        let schema = Schema::of(
            "t",
            &[("x", AttrType::Categorical), ("y", AttrType::Integer)],
        );
        let rows = [("a", 1i64), ("a", 2), ("a", 3), ("b", 9)];
        let tuples = rows
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Tuple::new(TupleId(i as u32), vec![Value::str(x), Value::int(*y)]))
            .collect();
        let r = Relation::new(schema, tuples);
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 0.0);
        let probe = Tuple::new(TupleId(9), vec![Value::str("a"), Value::Null]);
        let p_range = nbc.prob_matching(&probe, &PredOp::Between(Value::int(1), Value::int(3)));
        let p_eq: f64 = [1i64, 2, 3]
            .iter()
            .map(|v| nbc.prob_of(&probe, &Value::int(*v)))
            .sum();
        assert!((p_range - p_eq).abs() < 1e-9);
        assert!(p_range > 0.9);
    }

    #[test]
    fn prob_of_unknown_class_is_zero() {
        let r = sample();
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 1.0);
        assert_eq!(nbc.prob_of(&probe("Z4"), &Value::str("Spaceship")), 0.0);
    }

    #[test]
    fn empty_training_gives_empty_or_uniform() {
        let schema = Schema::of(
            "t",
            &[("x", AttrType::Categorical), ("y", AttrType::Categorical)],
        );
        let r = Relation::empty(schema);
        let nbc = NaiveBayes::train(&r, AttrId(1), vec![AttrId(0)], 1.0);
        assert!(nbc.distribution(&probe("Z4")).is_empty());
        assert!(nbc.predict(&probe("Z4")).is_none());
    }
}
